"""Tests for the reference and vectorized walk engines.

The key scientific checks: walks respect model constraints, engines agree
with each other statistically, and per-sampler behaviour (acceptance,
table counts, first-step handling) matches the design.
"""

import numpy as np
import pytest

from repro.errors import WalkError
from repro.walks.engine import ReferenceWalkEngine
from repro.walks.models import make_model
from repro.walks.vectorized import EagerStateAliasTables, VectorizedWalkEngine


def transition_counts(corpus, num_nodes):
    """(src, dst) transition count matrix over a corpus."""
    counts = np.zeros((num_nodes, num_nodes))
    for walk in corpus.iter_walks():
        if walk.size > 1:
            np.add.at(counts, (walk[:-1], walk[1:]), 1)
    return counts


def tv_rows(a, b):
    """Mean TV distance between corresponding normalised rows."""
    tvs = []
    for row_a, row_b in zip(a, b):
        sa, sb = row_a.sum(), row_b.sum()
        if sa < 50 or sb < 50:
            continue
        tvs.append(0.5 * np.abs(row_a / sa - row_b / sb).sum())
    return float(np.mean(tvs))


class TestReferenceEngine:
    def test_walk_lengths(self, small_unweighted_graph):
        eng = ReferenceWalkEngine(small_unweighted_graph, "deepwalk", seed=1)
        corpus = eng.generate(num_walks=2, walk_length=15)
        assert corpus.num_walks == 2 * small_unweighted_graph.num_nodes
        assert corpus.lengths.max() <= 15

    def test_walks_follow_edges(self, small_unweighted_graph):
        g = small_unweighted_graph
        eng = ReferenceWalkEngine(g, "deepwalk", seed=2)
        corpus = eng.generate(num_walks=1, walk_length=10)
        for walk in list(corpus.iter_walks())[:50]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert g.has_edge(int(a), int(b))

    def test_start_nodes_respected(self, small_unweighted_graph):
        eng = ReferenceWalkEngine(small_unweighted_graph, "deepwalk", seed=3)
        corpus = eng.generate(num_walks=3, walk_length=5, start_nodes=[7, 9])
        starts = corpus.walks[:, 0]
        assert set(starts.tolist()) == {7, 9}

    def test_invalid_sampler_name(self, small_unweighted_graph):
        with pytest.raises(WalkError):
            ReferenceWalkEngine(small_unweighted_graph, "deepwalk", sampler="bogus")

    def test_memory_aware_needs_budget(self, small_unweighted_graph):
        with pytest.raises(WalkError):
            ReferenceWalkEngine(small_unweighted_graph, "deepwalk", sampler="memory-aware")

    def test_dead_end_terminates_walk(self):
        from repro.graph.builder import from_edge_arrays

        g = from_edge_arrays([0], [1], num_nodes=2, directed=True)
        eng = ReferenceWalkEngine(g, "deepwalk", seed=4)
        walk = eng.walk(0, 10)
        assert walk == [0, 1]


class TestVectorizedEngine:
    @pytest.mark.parametrize("sampler", ["mh", "direct", "rejection", "knightking", "alias"])
    def test_all_samplers_produce_valid_walks(self, small_power_law_graph, sampler):
        g = small_power_law_graph
        eng = VectorizedWalkEngine(g, "node2vec", sampler=sampler, p=0.5, q=2.0, seed=5)
        corpus = eng.generate(num_walks=1, walk_length=12)
        assert corpus.num_walks == g.num_nodes
        for walk in list(corpus.iter_walks())[:30]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert g.has_edge(int(a), int(b))

    def test_alias_first_order_restricted_to_static(self, small_power_law_graph):
        with pytest.raises(WalkError):
            VectorizedWalkEngine(
                small_power_law_graph, "node2vec", sampler="alias-first-order"
            )

    def test_deepwalk_alias_resolves_to_first_order(self, small_power_law_graph):
        eng = VectorizedWalkEngine(small_power_law_graph, "deepwalk", sampler="alias")
        assert eng.stepper.name == "alias-first-order"

    def test_memory_aware_requires_budget(self, small_power_law_graph):
        with pytest.raises(WalkError):
            VectorizedWalkEngine(small_power_law_graph, "node2vec", sampler="memory-aware")

    def test_stats_exposed(self, small_power_law_graph):
        eng = VectorizedWalkEngine(
            small_power_law_graph, "node2vec", sampler="rejection", p=0.25, q=1.0, seed=6
        )
        eng.generate(num_walks=1, walk_length=10)
        stats = eng.stats()
        assert 0 < stats["acceptance_ratio"] <= 1.0
        assert stats["setup_seconds"] >= 0.0

    def test_mh_chains_persist_across_waves(self, small_power_law_graph):
        eng = VectorizedWalkEngine(small_power_law_graph, "node2vec", sampler="mh", seed=7)
        eng.generate(num_walks=1, walk_length=10)
        first = eng.stepper.chains.num_initialized
        eng.generate(num_walks=1, walk_length=10)
        assert eng.stepper.chains.num_initialized >= first

    def test_empty_start_set_rejected(self, academic):
        graph, __ = academic
        eng = VectorizedWalkEngine(graph, "metapath2vec", metapath="APA", seed=8)
        with pytest.raises(WalkError):
            eng.generate(num_walks=1, walk_length=5, start_nodes=np.array([], dtype=np.int64))

    def test_metapath_walks_respect_types(self, academic):
        graph, __ = academic
        eng = VectorizedWalkEngine(graph, "metapath2vec", metapath="APVPA", seed=9)
        corpus = eng.generate(num_walks=1, walk_length=9)
        pattern = [0, 1, 2, 1, 0, 1, 2, 1, 0]
        for walk in list(corpus.iter_walks())[:40]:
            types = graph.node_types[walk]
            assert types.tolist() == pattern[: walk.size]

    def test_fairwalk_group_balance(self):
        """Fairwalk must equalise visits across neighbour groups."""
        from repro.graph.builder import from_edge_arrays

        # node 0: nine type-1 neighbours, one type-2 neighbour
        src = np.zeros(10, dtype=np.int64)
        dst = np.arange(1, 11)
        g = from_edge_arrays(src, dst, num_nodes=11)
        types = np.zeros(11, dtype=np.int16)
        types[1:10] = 1
        types[10] = 2
        typed = g.with_node_types(types)
        eng = VectorizedWalkEngine(typed, "fairwalk", sampler="direct", p=1, q=1, seed=10)
        corpus = eng.generate(num_walks=400, walk_length=2, start_nodes=[0])
        seconds = corpus.walks[:, 1]
        frac_type2 = float((seconds == 10).mean())
        assert abs(frac_type2 - 0.5) < 0.06  # two groups -> ~half each

    @pytest.mark.parametrize("initializer", ["random", "high-weight", "burn-in"])
    def test_mh_initializers_run(self, small_power_law_graph, initializer):
        eng = VectorizedWalkEngine(
            small_power_law_graph,
            "node2vec",
            sampler="mh",
            initializer=initializer,
            p=0.5,
            q=2.0,
            seed=11,
        )
        corpus = eng.generate(num_walks=1, walk_length=8)
        assert corpus.token_count > 0
        assert eng.stats()["init_seconds"] >= 0.0

    def test_unknown_initializer(self, small_power_law_graph):
        with pytest.raises(WalkError):
            VectorizedWalkEngine(small_power_law_graph, "node2vec", initializer="bogus")


class TestEngineAgreement:
    """Vectorized and reference engines must sample the same walk law."""

    @pytest.mark.parametrize(
        "model_name,params,samplers",
        [
            ("deepwalk", {}, ["mh", "direct", "alias"]),
            ("node2vec", {"p": 0.25, "q": 4.0}, ["mh", "direct", "rejection"]),
        ],
    )
    def test_transition_statistics_match(self, tiny_weighted_graph, model_name, params, samplers):
        g = tiny_weighted_graph
        reference = ReferenceWalkEngine(g, model_name, sampler="direct", seed=1, **params)
        ref_counts = transition_counts(
            reference.generate(num_walks=250, walk_length=12), g.num_nodes
        )
        for sampler in samplers:
            eng = VectorizedWalkEngine(g, model_name, sampler=sampler, seed=2, **params)
            vec_counts = transition_counts(
                eng.generate(num_walks=250, walk_length=12), g.num_nodes
            )
            # M-H draws are *dependent* (one chain per state), so its
            # empirical rows carry autocorrelation-inflated variance;
            # exact samplers get a tight bound.
            tolerance = 0.09 if sampler == "mh" else 0.05
            assert tv_rows(ref_counts, vec_counts) < tolerance, sampler

    def test_metapath_engines_agree(self, academic):
        graph, __ = academic
        ref = ReferenceWalkEngine(graph, "metapath2vec", sampler="direct", metapath="APA", seed=3)
        vec = VectorizedWalkEngine(graph, "metapath2vec", sampler="mh", metapath="APA", seed=4)
        ref_counts = transition_counts(ref.generate(num_walks=20, walk_length=9), graph.num_nodes)
        vec_counts = transition_counts(vec.generate(num_walks=20, walk_length=9), graph.num_nodes)
        assert tv_rows(ref_counts, vec_counts) < 0.12


class TestEagerStateAliasTables:
    def test_tables_built_for_valid_states(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        tables = EagerStateAliasTables(g, model)
        assert tables.num_tables == g.num_edge_entries
        assert tables.memory_bytes() == model.alias_entries(g) * 16

    def test_mask_restricts_tables(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        mask = np.zeros(g.num_edge_entries, dtype=bool)
        mask[:4] = True
        tables = EagerStateAliasTables(g, model, state_mask=mask)
        assert tables.num_tables <= 4

    def test_draw_distribution(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        tables = EagerStateAliasTables(g, model)
        idx = g.edge_index(3, 0)  # state (3 -> 0)
        from repro.walks.state import WalkerState

        state = WalkerState(current=0, previous=3, prev_edge_offset=idx, step=1)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        lo, __ = g.edge_range(0)
        draws = tables.draw(
            np.full(40000, idx), np.zeros(40000, dtype=np.int64), rng
        )
        counts = np.bincount(draws - lo, minlength=g.degree(0))
        assert 0.5 * np.abs(counts / counts.sum() - exact).sum() < 0.02
