"""Dynamic-graph API tests: GraphDelta, DynamicGraph, sampler on_delta,
UniNet.update / refresh_embeddings, and the serving write path.

The property-style tests are randomized with fixed seeds (hypothesis
style without the dependency): every case is deterministic, and failures
print the seed that produced them.
"""

import json

import numpy as np
import pytest

from repro.errors import DeltaError, ServingError, TrainingError
from repro.graph import CSRGraph, DynamicGraph, GraphDelta, apply_delta, load_deltas, save_deltas
from repro.graph.builder import from_edge_arrays
from repro.graph.delta import DeltaPlan
from repro.graph.generators import erdos_renyi
from repro.walks.models import make_model
from repro.walks.vectorized import VectorizedWalkEngine


def graphs_equal(a: CSRGraph, b: CSRGraph) -> bool:
    """Bitwise CSR equality, None-aware for the optional arrays."""
    if not (np.array_equal(a.offsets, b.offsets) and np.array_equal(a.targets, b.targets)):
        return False
    for x, y in ((a.weights, b.weights), (a.node_types, b.node_types), (a.edge_types, b.edge_types)):
        if (x is None) != (y is None):
            return False
        if x is not None and not np.array_equal(x, y):
            return False
    return True


def random_graph(seed: int, n: int = 30, weighted: bool = True) -> CSRGraph:
    """Connected-ish random test graph; weights avoid exactly 1.0."""
    rng = np.random.default_rng(seed)
    src = list(range(n - 1))
    dst = list(range(1, n))
    for a, b in rng.integers(0, n, size=(2 * n, 2)):
        if a != b:
            src.append(int(a))
            dst.append(int(b))
    w = rng.uniform(0.5, 2.0, size=len(src)) if weighted else None
    return from_edge_arrays(
        np.array(src), np.array(dst), w, num_nodes=n, duplicate_policy="first"
    )


def random_delta(graph: CSRGraph, rng, *, add_nodes: int = 0) -> GraphDelta:
    """A random valid delta: removes, reweights, and absent-pair adds."""
    m = graph.num_edge_entries
    n = graph.num_nodes
    src_all = graph.edge_sources()
    k = max(1, m // 10)
    picks = rng.choice(m, size=min(2 * k, m), replace=False)
    rem, rw = picks[:k], picks[k:]
    add_src, add_dst = [], []
    seen = set()
    for __ in range(3 * k):
        u, v = int(rng.integers(0, n + add_nodes)), int(rng.integers(0, n))
        if u == v or (u, v) in seen:
            continue
        if u < n and graph.has_edge(u, v):
            continue
        seen.add((u, v))
        add_src.append(u)
        add_dst.append(v)
        if len(add_src) == k:
            break
    return GraphDelta(
        add_src=add_src,
        add_dst=add_dst,
        add_weights=rng.uniform(0.5, 2.0, size=len(add_src)),
        remove_src=src_all[rem],
        remove_dst=graph.targets[rem],
        reweight_src=src_all[rw],
        reweight_dst=graph.targets[rw],
        reweight_weights=rng.uniform(0.5, 2.0, size=rw.size),
        add_nodes=add_nodes,
    )


# ----------------------------------------------------------------------
# GraphDelta validation and algebra
# ----------------------------------------------------------------------
class TestGraphDeltaValidation:
    def test_misaligned_arrays_raise(self):
        with pytest.raises(DeltaError, match="align"):
            GraphDelta(add_src=[0, 1], add_dst=[2])
        with pytest.raises(DeltaError, match="align"):
            GraphDelta(reweight_src=[0], reweight_dst=[1], reweight_weights=[1.0, 2.0])

    def test_duplicate_pairs_raise(self):
        with pytest.raises(DeltaError, match="duplicate"):
            GraphDelta(add_src=[0, 0], add_dst=[1, 1])

    def test_overlapping_ops_raise(self):
        with pytest.raises(DeltaError, match="overlap"):
            GraphDelta(add_src=[0], add_dst=[1], remove_src=[0], remove_dst=[1])
        with pytest.raises(DeltaError, match="overlap"):
            GraphDelta(
                remove_src=[0], remove_dst=[1],
                reweight_src=[0], reweight_dst=[1], reweight_weights=[2.0],
            )

    def test_bad_weights_raise(self):
        with pytest.raises(DeltaError, match="finite"):
            GraphDelta(add_src=[0], add_dst=[1], add_weights=[-1.0])
        with pytest.raises(DeltaError, match="finite"):
            GraphDelta(add_src=[0], add_dst=[1], add_weights=[np.inf])

    def test_symmetric_self_loop_raises(self):
        with pytest.raises(DeltaError, match="self-loop"):
            GraphDelta.add_edges([3], [3])

    def test_node_type_shape_enforced(self):
        with pytest.raises(DeltaError, match="one entry per added node"):
            GraphDelta(add_nodes=2, add_node_types=[0])

    def test_apply_missing_remove_raises(self):
        g = random_graph(0)
        missing = GraphDelta(remove_src=[0], remove_dst=[0])
        with pytest.raises(DeltaError, match="not present"):
            g.apply_delta(missing)

    def test_apply_existing_add_raises(self):
        g = random_graph(0)
        s, d = int(g.edge_sources()[0]), int(g.targets[0])
        with pytest.raises(DeltaError, match="already present"):
            g.apply_delta(GraphDelta(add_src=[s], add_dst=[d]))

    def test_apply_out_of_range_raises(self):
        g = random_graph(0)
        with pytest.raises(DeltaError, match="outside"):
            g.apply_delta(GraphDelta(add_src=[g.num_nodes + 5], add_dst=[0]))

    def test_remove_last_nodes_requires_isolated(self):
        g = random_graph(0)
        with pytest.raises(DeltaError, match="still carry edges"):
            g.apply_delta(GraphDelta(remove_last_nodes=1))


class TestApplyDelta:
    def test_add_remove_reweight_semantics(self):
        g = from_edge_arrays([0, 1, 2], [1, 2, 3], [2.0, 3.0, 4.0], num_nodes=5)
        delta = GraphDelta(
            add_src=[0], add_dst=[3], add_weights=[1.5],
            remove_src=[1], remove_dst=[2],
            reweight_src=[2], reweight_dst=[3], reweight_weights=[9.0],
        )
        g2 = g.apply_delta(delta)
        assert g2.has_edge(0, 3) and not g2.has_edge(1, 2)
        assert g2.weights[g2.edge_index(0, 3)] == 1.5
        assert g2.weights[g2.edge_index(2, 3)] == 9.0
        assert g2.has_edge(2, 1)  # the reverse entry survives
        # the original graph is untouched
        assert g.has_edge(1, 2) and not g.has_edge(0, 3)

    def test_matches_cold_rebuild(self):
        for seed in range(6):
            g = random_graph(seed, weighted=seed % 2 == 0)
            rng = np.random.default_rng(seed + 100)
            delta = random_delta(g, rng, add_nodes=seed % 3)
            g2 = g.apply_delta(delta)
            # rebuild cold from the resulting edge list
            src, dst, w = g2.edge_list()
            cold = from_edge_arrays(
                src, dst, w if g2.weights is not None else None,
                num_nodes=g2.num_nodes, directed=True,
            )
            assert graphs_equal(g2, cold), f"seed {seed}"

    def test_unit_weights_canonicalise_to_none(self):
        g = from_edge_arrays([0, 1], [1, 2], None, num_nodes=3)
        g2 = g.apply_delta(GraphDelta(add_src=[0], add_dst=[2], add_weights=[2.0]))
        assert g2.is_weighted
        g3 = g2.apply_delta(GraphDelta(remove_src=[0], remove_dst=[2]))
        assert not g3.is_weighted  # all-ones array demoted to None

    def test_node_and_edge_types_preserved(self):
        g = from_edge_arrays(
            [0, 1], [1, 2], [2.0, 3.0], num_nodes=3,
            node_types=[0, 1, 0], edge_types=[1, 2],
        )
        delta = GraphDelta(
            add_nodes=1, add_node_types=[1],
            add_src=[3], add_dst=[0], add_weights=[1.5], add_edge_types=[2],
        )
        g2 = g.apply_delta(delta)
        assert g2.node_types.tolist() == [0, 1, 0, 1]
        assert g2.edge_types[g2.edge_index(3, 0)] == 2
        assert g2.num_edge_types == 3

    def test_grow_and_shrink(self):
        g = random_graph(1)
        n = g.num_nodes
        g2 = g.apply_delta(GraphDelta.grow(3))
        assert g2.num_nodes == n + 3 and g2.degree(n + 2) == 0
        g3 = g2.apply_delta(GraphDelta(remove_last_nodes=3))
        assert graphs_equal(g3, g)


class TestDeltaAlgebra:
    @pytest.mark.parametrize("seed", range(8))
    def test_apply_inverse_roundtrips_bitwise(self, seed):
        g = random_graph(seed, weighted=seed % 2 == 0)
        rng = np.random.default_rng(seed + 50)
        delta = random_delta(g, rng, add_nodes=seed % 2)
        g2 = g.apply_delta(delta)
        back = g2.apply_delta(delta.inverse(g))
        assert graphs_equal(back, g), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(5))
    def test_compose_equals_sequential_apply(self, seed):
        g = random_graph(seed)
        rng = np.random.default_rng(seed + 77)
        d1 = random_delta(g, rng)
        g1 = g.apply_delta(d1)
        d2 = random_delta(g1, rng)
        sequential = g1.apply_delta(d2)
        squashed = g.apply_delta(d1.compose(d2))
        assert graphs_equal(sequential, squashed), f"seed {seed}"

    def test_compose_cancels_add_then_remove(self):
        d1 = GraphDelta(add_src=[0], add_dst=[9])
        d2 = GraphDelta(remove_src=[0], remove_dst=[9])
        net = d1.compose(d2)
        assert net.is_empty()

    def test_dict_roundtrip_and_io(self, tmp_path):
        d = GraphDelta(
            add_src=[0], add_dst=[1], add_weights=[2.5],
            remove_src=[2], remove_dst=[3],
            reweight_src=[4], reweight_dst=[5], reweight_weights=[0.5],
            add_nodes=2,
        )
        d2 = GraphDelta.from_dict(d.to_dict())
        assert np.array_equal(d2.add_weights, d.add_weights)
        assert d2.add_nodes == 2
        path = tmp_path / "stream.jsonl"
        save_deltas([d, GraphDelta.remove_edges([1], [2])], path)
        loaded = load_deltas(path)
        assert len(loaded) == 2 and loaded[1].remove_src.size == 2

    def test_npz_delta_file(self, tmp_path):
        path = tmp_path / "delta.npz"
        np.savez(path, add_src=[0], add_dst=[2], add_weights=[1.5], add_nodes=1)
        (d,) = load_deltas(path)
        assert d.add_src.tolist() == [0] and d.add_nodes == 1

    def test_bad_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"add": [[0]]}\n')
        with pytest.raises(DeltaError, match="fields"):
            load_deltas(path)


# ----------------------------------------------------------------------
# DynamicGraph overlay
# ----------------------------------------------------------------------
class TestDynamicGraph:
    @pytest.mark.parametrize("seed", range(6))
    def test_overlay_matches_compacted_for_all_accessors(self, seed):
        g = random_graph(seed, weighted=seed % 2 == 0)
        rng = np.random.default_rng(seed + 9)
        dyn = DynamicGraph(g)
        reference = g
        for step in range(3):
            delta = random_delta(reference, rng, add_nodes=step % 2)
            dyn.apply(delta)
            reference = reference.apply_delta(delta)
            # overlay answers must match the reference CSR *without* compacting
            assert dyn.num_nodes == reference.num_nodes
            assert dyn.num_edge_entries == reference.num_edge_entries
            assert np.array_equal(dyn.degrees(), reference.degrees())
            for v in range(reference.num_nodes):
                assert np.array_equal(dyn.neighbors(v), reference.neighbors(v)), (seed, step, v)
                assert np.allclose(dyn.neighbor_weights(v), reference.neighbor_weights(v))
                assert dyn.degree(v) == reference.degree(v)
                for u in reference.neighbors(v):
                    off = dyn.edge_index(v, int(u))
                    assert off >= 0
                    assert dyn.edge_weight_at(off) == pytest.approx(
                        float(reference.edge_weight_at(reference.edge_index(v, int(u))))
                    )
        compacted = dyn.compact()
        assert graphs_equal(compacted, reference), f"seed {seed}"
        assert dyn.num_pending_ops == 0

    def test_validates_against_effective_graph(self):
        g = random_graph(3)
        dyn = DynamicGraph(g)
        s, d = int(g.edge_sources()[0]), int(g.targets[0])
        dyn.apply(GraphDelta(remove_src=[s], remove_dst=[d]))
        # removed in the overlay: a second removal must fail, a re-add succeed
        with pytest.raises(DeltaError, match="not present"):
            dyn.apply(GraphDelta(remove_src=[s], remove_dst=[d]))
        dyn.apply(GraphDelta(add_src=[s], add_dst=[d], add_weights=[0.75]))
        assert dyn.edge_weight_at(dyn.edge_index(s, d)) == 0.75
        with pytest.raises(DeltaError, match="already present"):
            dyn.apply(GraphDelta(add_src=[s], add_dst=[d]))

    def test_walks_after_compact_match_cold_built_graph(self):
        g = random_graph(11)
        dyn = DynamicGraph(g)
        # apply a schedule, then compare walks on compact() vs cold rebuild
        dyn.apply(random_delta(g, np.random.default_rng(21)))
        compacted = dyn.compact()
        src, dst, w = compacted.edge_list()
        cold = from_edge_arrays(
            src, dst, w if compacted.weights is not None else None,
            num_nodes=compacted.num_nodes, directed=True,
        )
        assert graphs_equal(compacted, cold)
        for model_name, params in [("deepwalk", {}), ("node2vec", {"p": 0.5, "q": 2.0})]:
            e1 = VectorizedWalkEngine(compacted, model_name, sampler="mh", seed=9, **params)
            e2 = VectorizedWalkEngine(cold, model_name, sampler="mh", seed=9, **params)
            c1 = e1.generate(num_walks=2, walk_length=12)
            c2 = e2.generate(num_walks=2, walk_length=12)
            assert np.array_equal(c1.walks, c2.walks)
            assert np.array_equal(c1.lengths, c2.lengths)

    def test_embeddings_after_compact_match_cold_built_graph(self):
        from repro.embedding.word2vec import Word2Vec

        g = random_graph(13)
        dyn = DynamicGraph(g)
        dyn.apply(random_delta(g, np.random.default_rng(31)))
        compacted = dyn.compact()
        src, dst, w = compacted.edge_list()
        cold = from_edge_arrays(
            src, dst, w if compacted.weights is not None else None,
            num_nodes=compacted.num_nodes, directed=True,
        )
        vecs = []
        for graph in (compacted, cold):
            engine = VectorizedWalkEngine(graph, "deepwalk", sampler="mh", seed=4)
            corpus = engine.generate(num_walks=2, walk_length=10)
            kv = Word2Vec(8, seed=3, negative_sharing=True).fit(corpus, num_nodes=graph.num_nodes)
            vecs.append(kv)
        assert np.array_equal(vecs[0].vectors, vecs[1].vectors)


# ----------------------------------------------------------------------
# DeltaPlan / sampler refresh
# ----------------------------------------------------------------------
class TestDeltaPlan:
    @pytest.mark.parametrize("seed", range(4))
    def test_edge_remap_agrees_with_new_graph_search(self, seed):
        g = random_graph(seed)
        delta = random_delta(g, np.random.default_rng(seed + 3))
        plan = DeltaPlan.build(g, delta)
        remap = plan.edge_remap()
        src = g.edge_sources()
        removed = set(map(tuple, np.stack([delta.remove_src, delta.remove_dst], axis=1).tolist()))
        for o in range(g.num_edge_entries):
            pair = (int(src[o]), int(g.targets[o]))
            if pair in removed:
                assert remap[o] == -1
            else:
                assert remap[o] == plan.new_graph.edge_index(*pair), (seed, o)


class TestSamplerOnDelta:
    @pytest.fixture
    def setting(self):
        g = erdos_renyi(150, 6.0, seed=2, weight_mode="uniform")
        delta = random_delta(g, np.random.default_rng(8))
        return g, delta, DeltaPlan.build(g, delta)

    @pytest.mark.parametrize(
        "sampler", ["mh", "direct", "alias", "rejection", "knightking"]
    )
    def test_engine_apply_delta_walks_stay_valid(self, setting, sampler):
        g, delta, plan = setting
        model = make_model("node2vec", g, p=0.5, q=2.0)
        engine = VectorizedWalkEngine(g, model, sampler=sampler, seed=6)
        engine.generate(num_walks=1, walk_length=10)
        new_g = engine.apply_delta(DeltaPlan(g, plan.new_graph, delta))
        corpus = engine.generate(num_walks=1, walk_length=10)
        # every consecutive pair in every walk is an edge of the new graph
        for row, ln in zip(corpus.walks, corpus.lengths):
            for a, b in zip(row[: ln - 1], row[1:ln]):
                assert new_g.has_edge(int(a), int(b)), (sampler, a, b)
        stats = engine.stats()
        assert stats["delta_seconds"] >= 0.0
        if sampler == "alias":
            assert stats["rebuilt_nodes"] > 0 and stats["rebuild_cost_bytes"] > 0
        if sampler == "mh":
            assert stats["rebuild_cost_bytes"] == 0

    def test_eager_alias_on_delta_matches_fresh_build(self, setting):
        from repro.walks.vectorized import EagerStateAliasTables

        g, delta, plan = setting
        model = make_model("node2vec", g, p=0.5, q=2.0)
        tables = EagerStateAliasTables(g, model)
        tables.on_delta(plan, model.rebind(plan.new_graph))
        fresh = EagerStateAliasTables(
            plan.new_graph, make_model("node2vec", plan.new_graph, p=0.5, q=2.0)
        )
        assert np.array_equal(tables.base, fresh.base)
        assert np.array_equal(tables.has_table, fresh.has_table)
        assert np.allclose(tables.threshold, fresh.threshold)
        assert np.array_equal(tables.alias_local, fresh.alias_local)

    def test_first_order_store_on_delta_matches_fresh_build(self, setting):
        from repro.sampling.alias import FirstOrderAliasStore

        g, delta, plan = setting
        store = FirstOrderAliasStore(g)
        info = store.on_delta(plan)
        fresh = FirstOrderAliasStore(plan.new_graph)
        assert np.allclose(store.threshold, fresh.threshold)
        assert np.array_equal(store.alias, fresh.alias)
        # affected-only: no more rows rebuilt than the delta touched
        assert 0 < info["rebuilt_nodes"] <= plan.touched_nodes().size

    def test_on_delta_survives_trailing_node_removal(self):
        from repro.sampling.alias import FirstOrderAliasStore
        from repro.sampling.knightking import KnightKingSampler

        g = from_edge_arrays([0, 1, 0], [1, 2, 2], [2.0, 3.0, 4.0], num_nodes=3)
        # strip node 2 of its edges, then drop it entirely
        delta = GraphDelta(
            remove_src=[0, 1, 2, 2], remove_dst=[2, 2, 0, 1], remove_last_nodes=1
        )
        plan = DeltaPlan.build(g, delta)
        assert plan.new_graph.num_nodes == 2
        store = FirstOrderAliasStore(g)
        store.on_delta(plan)  # touched node 2 no longer exists: must not crash
        fresh = FirstOrderAliasStore(plan.new_graph)
        if store.uniform:
            assert fresh.uniform
        else:
            assert np.allclose(store.threshold, fresh.threshold)
        kk = KnightKingSampler(g)
        model = make_model("node2vec", g, p=0.5, q=2.0).rebind(plan.new_graph)
        kk.on_delta(plan, model=model)
        assert kk._row_weight_totals.size == 2

    def test_mh_chain_remap_only_touches_affected(self, setting):
        g, __, ___ = setting
        # a genuinely small delta: one removed entry, one added entry
        s, d = int(g.edge_sources()[0]), int(g.targets[0])
        u = 0
        while g.has_edge(10, u) or u == 10:
            u += 1
        delta = GraphDelta(remove_src=[s], remove_dst=[d], add_src=[10], add_dst=[u])
        plan = DeltaPlan.build(g, delta)
        model = make_model("node2vec", g, p=0.5, q=2.0)
        engine = VectorizedWalkEngine(g, model, sampler="mh", seed=3)
        engine.generate(num_walks=2, walk_length=20)
        chains = engine.stepper.chains
        before = chains.last.copy()
        initialized_before = int((before != -1).sum())
        engine.apply_delta(DeltaPlan(g, plan.new_graph, delta))
        after = chains.last
        new_g = plan.new_graph
        assert after.size == new_g.num_edge_entries
        # every surviving resident edge is a valid out-edge of its state's node
        live = np.flatnonzero(after != -1)
        resident = after[live]
        cur = new_g.targets[live]  # state = edge (s -> v); draws come from N(v)
        lo = new_g.offsets[cur]
        hi = new_g.offsets[cur + 1]
        assert np.all((resident >= lo) & (resident < hi))
        # a single-edge delta touches almost nothing
        survived = int((after != -1).sum())
        assert survived > 0.95 * initialized_before
        invalidated = engine.stats()["invalidated_states"]
        assert invalidated < 0.05 * initialized_before

    def test_scalar_samplers_on_delta(self, setting):
        from repro.sampling.alias import SecondOrderAliasSampler
        from repro.sampling.direct import DirectSampler
        from repro.sampling.knightking import KnightKingSampler
        from repro.sampling.metropolis import MetropolisHastingsSampler
        from repro.sampling.rejection import RejectionSampler
        from repro.walks.state import WalkerState

        g, delta, plan = setting
        model = make_model("node2vec", g, p=0.5, q=2.0)
        rng = np.random.default_rng(0)

        def warm(sampler):
            state = model.initial_state(0)
            off = g.edge_index(0, int(g.neighbors(0)[0]))
            state = model.update_state(state, off)
            for __ in range(20):
                sampler.sample(g, model, state, rng)
            return sampler

        samplers = [
            warm(MetropolisHastingsSampler(g, model, initializer="random")),
            warm(SecondOrderAliasSampler(g, model)),
            warm(DirectSampler()),
            warm(RejectionSampler(g)),
            warm(KnightKingSampler(g)),
        ]
        model.rebind(plan.new_graph)
        for sampler in samplers:
            info = sampler.on_delta(plan, model=model)
            assert set(info) >= {"rebuilt_nodes", "rebuild_cost_bytes", "invalidated_states"}
            assert sampler.stats.extra["rebuilt_nodes"] == info["rebuilt_nodes"]
        # all still sample valid edges on the new graph
        new_g = plan.new_graph
        state = model.initial_state(0)
        off = new_g.edge_index(0, int(new_g.neighbors(0)[0]))
        state = model.update_state(state, off)
        for sampler in samplers:
            out = sampler.sample(new_g, model, state, rng)
            if out != -1:
                lo, hi = new_g.edge_range(state.current)
                assert lo <= out < hi
        model.rebind(g)

    def test_fairwalk_rebind_refreshes_type_counts(self):
        g = random_graph(4, weighted=False)
        types = np.arange(g.num_nodes, dtype=np.int16) % 2
        g = g.with_node_types(types)
        model = make_model("fairwalk", g, p=1.0, q=1.0)
        delta = GraphDelta(add_nodes=1, add_node_types=[1], add_src=[g.num_nodes], add_dst=[0])
        g2 = g.apply_delta(delta)
        model.rebind(g2)
        assert model.type_counts.shape[0] == g2.num_nodes
        fresh = make_model("fairwalk", g2, p=1.0, q=1.0)
        assert np.array_equal(model.type_counts, fresh.type_counts)


# ----------------------------------------------------------------------
# UniNet facade lifecycle
# ----------------------------------------------------------------------
class TestUniNetDynamic:
    @pytest.fixture
    def net(self):
        from repro import UniNet

        g = erdos_renyi(120, 5.0, seed=4)
        net = UniNet(g, model="deepwalk", seed=7)
        net.train(num_walks=2, walk_length=10, dimensions=8, negative_sharing=True)
        return net

    def test_serve_raises_when_stale_and_recovers(self, net):
        net.serve()  # fresh: fine
        net.update(GraphDelta.add_edges([0], [100]))
        assert net.embeddings_stale
        with pytest.raises(ServingError, match="stale"):
            net.serve()
        # explicit embeddings bypass the guard
        net.serve(embeddings=net.last_embeddings)
        net.refresh_embeddings(num_walks=1, walk_length=8)
        assert not net.embeddings_stale
        net.serve()

    def test_update_returns_affected_and_retrains(self, net):
        n = net.graph.num_nodes
        result = net.update(
            GraphDelta(add_nodes=2, add_src=[n, n + 1], add_dst=[0, 1],
                       add_weights=[1.0, 1.0]),
            retrain=True, num_walks=1, walk_length=6,
        )
        assert {n, n + 1} <= set(result.affected_nodes.tolist())
        assert result.retrain is not None
        # the new nodes got embedded
        assert n in net.last_embeddings and (n + 1) in net.last_embeddings
        assert net.graph.num_nodes == n + 2

    def test_refresh_without_train_raises(self):
        from repro import UniNet

        net = UniNet(erdos_renyi(30, 4.0, seed=1), model="deepwalk", seed=0)
        net.update(GraphDelta.add_edges([0], [20]))
        with pytest.raises(TrainingError, match="prior train"):
            net.refresh_embeddings()

    def test_affected_start_nodes_horizon(self, net):
        net.update(GraphDelta.add_edges([3], [50]))
        one_hop = net.affected_start_nodes(2)
        deep = net.affected_start_nodes(20)
        assert {3, 50} <= set(one_hop.tolist())
        assert one_hop.size <= deep.size
        expected_one_hop = set(net.graph.neighbors(3).tolist()) | set(
            net.graph.neighbors(50).tolist()
        ) | {3, 50}
        assert set(one_hop.tolist()) == expected_one_hop

    def test_update_accepts_dict_and_invalid_refresh_raises(self, net):
        net.update({"add": [[0, 101], [101, 0]]})
        assert net.graph.has_edge(0, 101)
        with pytest.raises(DeltaError, match="refresh"):
            net.update(GraphDelta.remove_edges([0], [101]), refresh="later")

    def test_chains_persist_across_refreshes(self, net):
        net.refresh_embeddings(num_walks=1, walk_length=6, start_nodes=np.arange(50))
        assert net._chain_store is not None
        touched_before = net._chain_store.num_initialized
        assert touched_before > 0
        ur = net.update(GraphDelta.add_edges([0], [110]))
        # remap happened on the live store (counts reported)
        assert "invalidated_states" in ur.sampler_refresh
        assert net._chain_store.num_initialized > 0


# ----------------------------------------------------------------------
# serving write path
# ----------------------------------------------------------------------
class TestServingDynamic:
    def test_upsert_updates_and_inserts(self):
        from repro.serving import EmbeddingStore, QueryService

        rng = np.random.default_rng(3)
        store = EmbeddingStore(np.arange(10), rng.normal(size=(10, 4)).astype(np.float32))
        service = QueryService(store, index="bruteforce", cache_size=8)
        service.most_similar_batch([0, 1], topn=3)
        replacement = rng.normal(size=4).astype(np.float32)
        info = store.upsert([4, 99], np.stack([replacement, replacement]))
        assert info == {"updated": 1, "inserted": 1}
        assert 99 in store and np.allclose(store.vector(4), replacement)
        assert store.norms[store.rows_for(99)[0]] == pytest.approx(
            float(np.linalg.norm(replacement))
        )
        service.refresh()
        # the two identical vectors must now be each other's top neighbour
        (top,) = service.most_similar_batch([99], topn=1)
        assert top[0][0] == 4 and top[0][1] == pytest.approx(1.0, abs=1e-5)
        assert service.stats()["refreshes"] == 1

    def test_upsert_shape_and_duplicate_checks(self):
        from repro.serving import EmbeddingStore

        store = EmbeddingStore(np.arange(4), np.eye(4, dtype=np.float32))
        with pytest.raises(ServingError, match="must be"):
            store.upsert([0], np.zeros((1, 3), np.float32))
        with pytest.raises(ServingError, match="unique"):
            store.upsert([1, 1], np.zeros((2, 4), np.float32))

    def test_readonly_mmap_upsert_raises(self, tmp_path):
        from repro.serving import EmbeddingStore

        store = EmbeddingStore(np.arange(4), np.eye(4, dtype=np.float32))
        path = tmp_path / "s.embstore"
        store.save(path)
        opened = EmbeddingStore.open(path)
        with pytest.raises(ServingError, match="read-only"):
            opened.upsert([0], np.zeros((1, 4), np.float32))
        # the documented escape hatch works
        writable = EmbeddingStore.open(path, mmap=False)
        writable.upsert([0], np.ones((1, 4), np.float32))
        writable.save(path)
        assert np.allclose(EmbeddingStore.open(path).vector(0), 1.0)

    def test_refresh_with_replacement_store(self):
        from repro.serving import EmbeddingStore, QueryService

        a = EmbeddingStore(np.arange(5), np.eye(5, dtype=np.float32))
        b = EmbeddingStore(np.arange(7), np.eye(7, dtype=np.float32))
        service = QueryService(a, index="bruteforce", cache_size=4)
        service.refresh(b)
        assert service.stats()["store_count"] == 7


# ----------------------------------------------------------------------
# declarative + CLI surface
# ----------------------------------------------------------------------
class TestUpdatesSpec:
    def base_spec(self):
        return {
            "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
            "walk": {"num_walks": 1, "walk_length": 8},
            "train": {"dimensions": 8, "negative_sharing": True},
            "updates": {
                "steps": [{"add": [[0, 40]]}, {"remove": [[0, 40]]}],
                "symmetric": True,
                "num_walks": 1,
                "walk_length": 6,
            },
        }

    def test_roundtrip_and_validation(self):
        from repro import RunSpec
        from repro.errors import SpecError

        spec = RunSpec.from_dict(self.base_spec())
        again = RunSpec.from_dict(spec.to_dict())
        assert again.updates.steps == spec.updates.steps
        spec.validate()
        bad = self.base_spec()
        bad["updates"]["refresh"] = "sometimes"
        with pytest.raises(SpecError, match="refresh"):
            RunSpec.from_dict(bad).validate()
        bad = self.base_spec()
        bad["updates"]["steps"] = [{"add": [[0]]}]
        with pytest.raises(SpecError, match="invalid updates step"):
            RunSpec.from_dict(bad).validate()
        bad = self.base_spec()
        bad["train"] = None
        with pytest.raises(SpecError, match="train"):
            RunSpec.from_dict(bad).validate()
        # retrain=false + serving would silently serve stale vectors
        bad = self.base_spec()
        bad["updates"]["retrain"] = False
        bad["serving"] = {"probe_queries": 4}
        with pytest.raises(SpecError, match="stale"):
            RunSpec.from_dict(bad).validate()

    def test_run_replays_schedule(self):
        from repro import run

        report = run(self.base_spec())
        rows = report.metrics["updates"]
        assert len(rows) == 2
        assert rows[0]["added"] == 2 and rows[1]["removed"] == 2
        assert all("update_s" in row and "refresh_s" in row for row in rows)
        assert report.embeddings is not None

    def test_cli_update_verb(self, tmp_path, capsys):
        from repro.cli import main

        deltas = tmp_path / "d.jsonl"
        deltas.write_text(
            json.dumps({"add": [[0, 50]], "symmetric": True}) + "\n"
            + json.dumps({"remove": [[0, 50]], "symmetric": True}) + "\n"
        )
        out = tmp_path / "v.npz"
        code = main([
            "update", "--dataset", "amazon", "--scale", "0.05", "--seed", "2",
            "--num-walks", "1", "--walk-length", "8", "--dimensions", "8",
            "--deltas", str(deltas), "--update-num-walks", "1",
            "--output", str(out),
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "replayed 2 delta(s)" in captured

    def test_cli_update_missing_deltas(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "update", "--dataset", "amazon", "--scale", "0.05",
            "--deltas", str(tmp_path / "absent.jsonl"),
        ])
        assert code == 2
        assert "cannot load deltas" in capsys.readouterr().err
