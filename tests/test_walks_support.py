"""Tests for walk-support machinery: state, segments, manager, corpus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WalkError
from repro.walks._segments import concat_ranges, segment_argmax, segment_sample, segment_sums
from repro.walks.corpus import WalkCorpus
from repro.walks.manager import ChainStore
from repro.walks.models import make_model
from repro.walks.state import NO_PREVIOUS, WalkerState


class TestWalkerState:
    def test_initial_state(self):
        state = WalkerState(current=4)
        assert state.at_start
        assert state.previous == NO_PREVIOUS

    def test_advanced(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        off = g.edge_index(0, 2)
        state = WalkerState(current=0).advanced(g, off)
        assert state.current == 2
        assert state.previous == 0
        assert state.prev_edge_offset == off
        assert state.step == 1
        assert not state.at_start


class TestSegments:
    def test_concat_ranges_basic(self):
        flat, seg = concat_ranges(np.array([5, 20]), np.array([3, 2]))
        assert flat.tolist() == [5, 6, 7, 20, 21]
        assert seg.tolist() == [0, 0, 0, 1, 1]

    def test_concat_ranges_with_empty_segment(self):
        flat, seg = concat_ranges(np.array([5, 9, 30]), np.array([2, 0, 1]))
        assert flat.tolist() == [5, 6, 30]
        assert seg.tolist() == [0, 0, 2]

    def test_concat_ranges_all_empty(self):
        flat, seg = concat_ranges(np.array([1, 2]), np.array([0, 0]))
        assert flat.size == 0 and seg.size == 0

    def test_segment_sums(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        sums = segment_sums(values, np.array([2, 0, 2]))
        assert sums.tolist() == [3.0, 0.0, 7.0]

    def test_segment_sample_exact(self, rng):
        values = np.tile([1.0, 3.0], 1)  # one segment of [1, 3]
        counts = np.zeros(2)
        for __ in range(20000):
            pos = segment_sample(np.array([1.0, 3.0]), np.array([2]), rng)
            counts[pos[0]] += 1
        assert abs(counts[1] / counts.sum() - 0.75) < 0.02

    def test_segment_sample_skips_zero_weights(self, rng):
        for __ in range(200):
            pos = segment_sample(np.array([0.0, 1.0, 0.0]), np.array([3]), rng)
            assert pos[0] == 1

    def test_segment_sample_zero_and_empty_segments(self, rng):
        values = np.array([0.0, 0.0, 5.0])
        pos = segment_sample(values, np.array([2, 0, 1]), rng)
        assert pos.tolist() == [-1, -1, 0]

    def test_segment_argmax(self):
        values = np.array([1.0, 9.0, 2.0, 7.0, 3.0])
        pos = segment_argmax(values, np.array([3, 0, 2]))
        assert pos.tolist() == [1, -1, 0]

    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(st.integers(0, 6), min_size=1, max_size=8),
        seed=st.integers(0, 1000),
    )
    def test_property_segment_ops_match_loops(self, lengths, seed):
        rng = np.random.default_rng(seed)
        lengths = np.array(lengths)
        values = rng.random(int(lengths.sum()))
        sums = segment_sums(values, lengths)
        arg = segment_argmax(values, lengths)
        cursor = 0
        for i, ln in enumerate(lengths):
            chunk = values[cursor : cursor + ln]
            cursor += ln
            if ln == 0:
                assert arg[i] == -1
                assert sums[i] == pytest.approx(0.0)
            else:
                assert sums[i] == pytest.approx(chunk.sum())
                assert chunk[arg[i]] == pytest.approx(chunk.max())


class TestChainStore:
    def test_size_and_reset(self, small_unweighted_graph):
        g = small_unweighted_graph
        model = make_model("node2vec", g)
        store = ChainStore(g, model)
        assert store.size == g.num_edge_entries
        assert store.num_initialized == 0
        store.last[5] = 7
        assert store.num_initialized == 1
        store.reset()
        assert store.num_initialized == 0

    def test_memory_matches_paper_formula(self, small_unweighted_graph):
        # one int64 LAST_x plus one float64 cached w'(LAST_x) per state
        g = small_unweighted_graph
        model = make_model("node2vec", g)
        assert ChainStore(g, model).memory_bytes() == 16 * g.num_edge_entries

    def test_decompose_second_order(self, small_unweighted_graph):
        g = small_unweighted_graph
        model = make_model("node2vec", g)
        store = ChainStore(g, model)
        for off in (0, 17, g.num_edge_entries - 1):
            position, affixture = store.decompose(off)
            lo, hi = g.edge_range(position)
            assert lo <= off < hi
            assert affixture == off - lo

    def test_decompose_first_order(self, small_unweighted_graph):
        g = small_unweighted_graph
        model = make_model("deepwalk", g)
        store = ChainStore(g, model)
        assert store.decompose(3) == (3, 0)

    def test_decompose_metapath(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        store = ChainStore(graph, model)
        num_types = graph.num_node_types
        assert store.decompose(7 * num_types + 2) == (7, 2)


class TestWalkCorpus:
    def test_from_lists(self):
        corpus = WalkCorpus.from_lists([[1, 2, 3], [4, 5]])
        assert corpus.num_walks == 2
        assert corpus.token_count == 5
        walks = list(corpus.iter_walks())
        assert walks[0].tolist() == [1, 2, 3]
        assert walks[1].tolist() == [4, 5]

    def test_empty(self):
        corpus = WalkCorpus.from_lists([])
        assert corpus.num_walks == 0
        assert corpus.token_count == 0

    def test_validation(self):
        with pytest.raises(WalkError):
            WalkCorpus(np.array([1, 2, 3]), np.array([3]))
        with pytest.raises(WalkError):
            WalkCorpus(np.array([[1, 2]]), np.array([5]))

    def test_node_frequencies(self):
        corpus = WalkCorpus.from_lists([[0, 1, 1], [2]])
        freq = corpus.node_frequencies(4)
        assert freq.tolist() == [1, 2, 1, 0]

    def test_nodes_visited(self):
        corpus = WalkCorpus.from_lists([[3, 1], [1, 5]])
        assert corpus.nodes_visited().tolist() == [1, 3, 5]

    def test_merge(self):
        a = WalkCorpus.from_lists([[0, 1, 2]])
        b = WalkCorpus.from_lists([[3]])
        merged = WalkCorpus.merge([a, b])
        assert merged.num_walks == 2
        assert merged.token_count == 4
        assert list(merged.iter_walks())[1].tolist() == [3]

    def test_merge_empty(self):
        assert WalkCorpus.merge([]).num_walks == 0

    def test_save_load(self, tmp_path):
        corpus = WalkCorpus.from_lists([[0, 1], [2, 3, 4]])
        path = tmp_path / "c.npz"
        corpus.save_npz(path)
        back = WalkCorpus.load_npz(path)
        assert np.array_equal(back.walks, corpus.walks)
        assert np.array_equal(back.lengths, corpus.lengths)

    def test_len_and_repr(self):
        corpus = WalkCorpus.from_lists([[0, 1]])
        assert len(corpus) == 1
        assert "tokens=2" in repr(corpus)

    def test_text_round_trip(self, tmp_path):
        corpus = WalkCorpus.from_lists([[0, 1, 2], [5], [3, 4]])
        path = tmp_path / "walks.txt"
        corpus.save_text(path)
        back = WalkCorpus.load_text(path)
        assert [w.tolist() for w in back.iter_walks()] == [[0, 1, 2], [5], [3, 4]]

    def test_statistics(self):
        corpus = WalkCorpus.from_lists([[0, 1, 2], [3, 4]])
        stats = corpus.statistics()
        assert stats["num_walks"] == 2
        assert stats["mean_length"] == 2.5
        assert stats["truncated_walks"] == 1
        assert stats["distinct_nodes"] == 5

    def test_statistics_empty(self):
        assert WalkCorpus.from_lists([]).statistics()["num_walks"] == 0
