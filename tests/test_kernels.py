"""Compiled walk kernels: parity, fallback and transport guarantees.

The contract under test is strict *bitwise* parity: every RNG draw stays
in the Python driver in a fixed order, so a compiled backend must emit
the identical corpus (and identical M-H chain state) as the NumPy
reference for every sampler, model and seed — the gate that lets the
engine swap hot loops without changing any published number.
"""

import numpy as np
import pytest

from repro.core.config import WalkConfig
from repro.core.pipeline import generate_walk_result
from repro.errors import ConfigError, WalkError
from repro.graph import generators
from repro.sampling.base import NO_EDGE
from repro.walks import parallel as par
from repro.walks.kernels import (
    KERNEL_REGISTRY,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.walks.models import make_model
from repro.walks.models.node2vec import Node2Vec
from repro.walks.vectorized import VectorizedWalkEngine

AVAILABLE = available_backends()
COMPILED = sorted(name for name, ok in AVAILABLE.items() if ok and name != "numpy")

SAMPLERS = (
    "mh", "direct", "alias", "alias-first-order",
    "rejection", "knightking", "memory-aware",
)

needs_compiled = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel backend available"
)


@pytest.fixture(scope="module")
def weighted_graph():
    return generators.chung_lu_power_law(150, 6.0, seed=11, weight_mode="uniform")


@pytest.fixture(scope="module")
def unweighted_graph():
    return generators.chung_lu_power_law(150, 6.0, seed=11)


def generate(graph, model, sampler, backend, seed, **model_params):
    if sampler == "memory-aware":
        # a partial budget so both the table path and the rejection
        # fallback rounds run inside one corpus
        model_params["table_budget_bytes"] = 20_000
    try:
        engine = VectorizedWalkEngine(
            graph, model, sampler=sampler, seed=seed, backend=backend,
            **model_params,
        )
    except WalkError as err:
        pytest.skip(f"{sampler} x {model}: {err}")
    corpus = engine.generate(num_walks=2, walk_length=12)
    return engine, corpus


# ---------------------------------------------------------------------------
# bitwise parity: compiled backends vs the NumPy reference
# ---------------------------------------------------------------------------

@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("seed", [0, 123])
@pytest.mark.parametrize("model", ["deepwalk", "node2vec"])
@pytest.mark.parametrize("sampler", SAMPLERS)
def test_weighted_parity(weighted_graph, sampler, model, seed, backend):
    params = {"p": 0.25, "q": 4.0} if model == "node2vec" else {}
    __, ref = generate(weighted_graph, model, sampler, "numpy", seed, **params)
    __, got = generate(weighted_graph, model, sampler, backend, seed, **params)
    np.testing.assert_array_equal(ref.walks, got.walks)
    np.testing.assert_array_equal(ref.lengths, got.lengths)


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("model", ["deepwalk", "node2vec"])
@pytest.mark.parametrize("sampler", SAMPLERS)
def test_unweighted_parity(unweighted_graph, sampler, model, backend):
    params = {"p": 2.0, "q": 0.5} if model == "node2vec" else {}
    __, ref = generate(unweighted_graph, model, sampler, "numpy", 7, **params)
    __, got = generate(unweighted_graph, model, sampler, backend, 7, **params)
    np.testing.assert_array_equal(ref.walks, got.walks)
    np.testing.assert_array_equal(ref.lengths, got.lengths)


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
def test_mh_chain_state_parity(weighted_graph, backend):
    """The persisted chains (LAST_x and the weight cache) match too."""
    ref_eng, __ = generate(weighted_graph, "node2vec", "mh", "numpy", 3,
                           p=0.5, q=2.0)
    got_eng, __ = generate(weighted_graph, "node2vec", "mh", backend, 3,
                           p=0.5, q=2.0)
    ref_c, got_c = ref_eng.stepper.chains, got_eng.stepper.chains
    np.testing.assert_array_equal(ref_c.last, got_c.last)
    np.testing.assert_array_equal(ref_c.last_w, got_c.last_w)


# ---------------------------------------------------------------------------
# backend selection, fallback and error surfaces
# ---------------------------------------------------------------------------

def test_registry_names_and_aliases():
    assert KERNEL_REGISTRY.canonical("np") == "numpy"
    assert KERNEL_REGISTRY.canonical("jit") == "numba"
    assert KERNEL_REGISTRY.canonical("c") == "cnative"
    assert default_backend().name == "numpy"
    assert AVAILABLE["numpy"] is True


def test_unknown_backend_is_a_walk_error(weighted_graph):
    with pytest.raises(WalkError):
        VectorizedWalkEngine(weighted_graph, "deepwalk", backend="fortran")
    with pytest.raises(WalkError):
        WalkConfig(backend="fortran")


def test_unavailable_backend_is_a_config_error(weighted_graph):
    """A missing *dependency* is ConfigError (not ImportError), and only
    at engine-build time — authoring the config still works."""
    missing = [name for name, ok in AVAILABLE.items() if not ok]
    if not missing:
        pytest.skip("every backend is available here")
    cfg = WalkConfig(backend=missing[0])  # config-time: fine
    assert cfg.backend == missing[0]
    with pytest.raises(ConfigError):
        VectorizedWalkEngine(weighted_graph, "deepwalk", backend=missing[0])
    with pytest.raises(ConfigError):
        resolve_backend(missing[0])


@needs_compiled
def test_generic_model_falls_back_to_numpy(weighted_graph):
    """A model with no compiled weight rule silently demotes the engine
    to NumPy — and the corpus equals the plain compiled run, because the
    weights are the same function either way."""

    class OpaqueNode2Vec(Node2Vec):
        def kernel_spec(self):
            return {"kind": "generic"}

    backend = COMPILED[0]
    opaque = OpaqueNode2Vec(weighted_graph, p=0.25, q=4.0)
    eng = VectorizedWalkEngine(weighted_graph, opaque, sampler="rejection",
                               seed=9, backend=backend)
    assert eng.backend == "numpy"
    assert eng.requested_backend == backend
    got = eng.generate(num_walks=2, walk_length=12)

    plain = make_model("node2vec", weighted_graph, p=0.25, q=4.0)
    ref = VectorizedWalkEngine(weighted_graph, plain, sampler="rejection",
                               seed=9, backend=backend).generate(
        num_walks=2, walk_length=12)
    np.testing.assert_array_equal(ref.walks, got.walks)


def test_stats_report_backend_and_compile_seconds(weighted_graph):
    eng, __ = generate(weighted_graph, "deepwalk", "mh", "numpy", 1)
    stats = eng.stats()
    assert stats["backend"] == "numpy"
    assert stats["requested_backend"] == "numpy"
    assert stats["compile_seconds"] == 0.0

    if COMPILED:
        eng2, __ = generate(weighted_graph, "deepwalk", "mh", COMPILED[0], 1)
        s2 = eng2.stats()
        assert s2["backend"] == COMPILED[0]
        assert s2["compile_seconds"] >= 0.0
        assert s2["compile_seconds"] <= eng2.setup_seconds


def test_walk_result_stats_carry_backend(weighted_graph):
    result = generate_walk_result(
        weighted_graph, make_model("deepwalk", weighted_graph),
        WalkConfig(num_walks=1, walk_length=8, sampler="alias"), seed=2,
    )
    assert result.stats["backend"] == "numpy"
    assert "compile_seconds" in result.stats


# ---------------------------------------------------------------------------
# M-H weight cache consistency
# ---------------------------------------------------------------------------

def test_mh_last_w_cache_matches_static_weights(weighted_graph):
    """Cached w'(LAST_x) entries are either the NaN sentinel or exactly
    the model's weight for the cached edge (static model: the edge
    weight itself)."""
    eng, __ = generate(weighted_graph, "deepwalk", "mh", "numpy", 4)
    chains = eng.stepper.chains
    live = chains.last != NO_EDGE
    cached = live & ~np.isnan(chains.last_w)
    assert cached.any()
    np.testing.assert_array_equal(
        chains.last_w[cached], weighted_graph.weights[chains.last[cached]]
    )
    # never a cached weight without a cached edge
    assert np.isnan(chains.last_w[~live]).all()


# ---------------------------------------------------------------------------
# shared-memory parallel transport
# ---------------------------------------------------------------------------

def test_parallel_worker_count_invariance(weighted_graph):
    corpora = [
        par.parallel_generate(
            weighted_graph, "deepwalk", num_walks=2, walk_length=10,
            sampler="alias", seed=5, num_workers=k, shard_walks=64,
        )
        for k in (1, 2, 4)
    ]
    for other in corpora[1:]:
        np.testing.assert_array_equal(corpora[0].walks, other.walks)
        np.testing.assert_array_equal(corpora[0].lengths, other.lengths)


@needs_compiled
def test_parallel_compiled_backend_matches_numpy(weighted_graph):
    ref = par.parallel_generate(
        weighted_graph, "node2vec", num_walks=2, walk_length=10,
        sampler="rejection", seed=6, num_workers=1, p=0.25, q=4.0,
    )
    got = par.parallel_generate(
        weighted_graph, "node2vec", num_walks=2, walk_length=10,
        sampler="rejection", seed=6, num_workers=2, p=0.25, q=4.0,
        engine_kwargs={"backend": COMPILED[0]},
    )
    np.testing.assert_array_equal(ref.walks, got.walks)


def test_parallel_pickle_fallback_when_shm_unavailable(weighted_graph, monkeypatch):
    def broken(segments, graph):
        raise OSError("no /dev/shm here")

    monkeypatch.setattr(par, "_export_shared_graph", broken)
    got = par.parallel_generate(
        weighted_graph, "deepwalk", num_walks=2, walk_length=10,
        sampler="alias", seed=5, num_workers=2, shard_walks=64,
    )
    ref = par.parallel_generate(
        weighted_graph, "deepwalk", num_walks=2, walk_length=10,
        sampler="alias", seed=5, num_workers=1, shard_walks=64,
    )
    np.testing.assert_array_equal(ref.walks, got.walks)


def test_shared_graph_round_trip(weighted_graph):
    """Export + attach reproduces the CSR arrays bit for bit, zero-copy."""
    segments = []
    try:
        payload = par._export_shared_graph(segments, weighted_graph)
        assert payload[0] == "shm"
        graph, worker_segments = par._attach_shared_graph(payload[1], payload[2])
        try:
            np.testing.assert_array_equal(graph.offsets, weighted_graph.offsets)
            np.testing.assert_array_equal(graph.targets, weighted_graph.targets)
            np.testing.assert_array_equal(graph.weights, weighted_graph.weights)
            assert graph.num_nodes == weighted_graph.num_nodes
        finally:
            del graph
            par._release_segments(worker_segments, unlink=False)
    finally:
        par._release_segments(segments, unlink=True)
