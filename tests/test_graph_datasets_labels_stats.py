"""Tests for the dataset registry, label containers and statistics."""

import numpy as np
import pytest

from repro.errors import EvaluationError, GraphError
from repro.graph import datasets, stats
from repro.graph.labels import NodeLabels


class TestRegistry:
    def test_all_names_load(self):
        for name in datasets.DATASETS:
            result = datasets.load(name, scale=0.05, seed=1)
            graph = result[0] if isinstance(result, tuple) else result
            assert graph.num_nodes > 0
            assert graph.num_edge_entries > 0

    def test_labeled_sets_return_tuples(self):
        for name in datasets.LABELED:
            graph, labels = datasets.load(name, scale=0.05, seed=1)
            assert labels.num_labeled > 0

    def test_heterogeneous_sets_are_typed(self):
        for name in datasets.HETEROGENEOUS:
            graph = datasets.load_graph(name, scale=0.05, seed=1)
            assert graph.is_heterogeneous

    def test_homogeneous_sets_untyped(self):
        graph = datasets.load_graph("youtube", scale=0.05, seed=1)
        assert not graph.is_heterogeneous

    def test_unknown_name(self):
        with pytest.raises(GraphError):
            datasets.load("imaginary")

    def test_load_labels_on_unlabeled(self):
        with pytest.raises(GraphError):
            datasets.load_labels("twitter", scale=0.05)

    def test_scale_grows_graph(self):
        small = datasets.load_graph("amazon", scale=0.05, seed=2)
        large = datasets.load_graph("amazon", scale=0.2, seed=2)
        assert large.num_nodes > small.num_nodes

    def test_seed_determinism(self):
        a = datasets.load_graph("twitter", scale=0.05, seed=3)
        b = datasets.load_graph("twitter", scale=0.05, seed=3)
        assert np.array_equal(a.targets, b.targets)

    def test_weighted_option(self):
        g = datasets.load_graph("livejournal", scale=0.05, seed=4, weight_mode="uniform")
        assert g.is_weighted


class TestNodeLabels:
    def test_single_label(self):
        labels = NodeLabels([0, 1, 2], [2, 0, 1])
        assert not labels.is_multilabel
        assert labels.num_classes == 3
        mat = labels.indicator_matrix()
        assert mat.sum() == 3

    def test_multi_label(self):
        y = np.array([[1, 0, 1], [0, 1, 0]], dtype=bool)
        labels = NodeLabels([5, 9], y)
        assert labels.is_multilabel
        assert labels.num_classes == 3
        with pytest.raises(EvaluationError):
            labels.class_ids()

    def test_subset(self):
        labels = NodeLabels([0, 1, 2, 3], [0, 1, 0, 1])
        sub = labels.subset([1, 3])
        assert sub.node_ids.tolist() == [1, 3]
        assert sub.class_ids().tolist() == [1, 1]

    def test_misaligned_rejected(self):
        with pytest.raises(EvaluationError):
            NodeLabels([0, 1], [0])

    def test_unlabeled_row_rejected(self):
        y = np.array([[0, 0]], dtype=bool)
        with pytest.raises(EvaluationError):
            NodeLabels([0], y)

    def test_negative_class_rejected(self):
        with pytest.raises(EvaluationError):
            NodeLabels([0], [-1])


class TestStats:
    def test_graph_statistics_fields(self, small_power_law_graph):
        s = stats.graph_statistics(small_power_law_graph)
        assert s["num_nodes"] == small_power_law_graph.num_nodes
        assert s["num_edges"] == small_power_law_graph.num_undirected_edges
        assert s["mean_degree"] == pytest.approx(small_power_law_graph.mean_degree)
        assert s["weighted"] is True
        assert s["memory_bytes"] > 0

    def test_degree_histogram(self, small_power_law_graph):
        edges, counts = stats.degree_histogram(small_power_law_graph)
        assert counts.sum() <= small_power_law_graph.num_nodes
        assert edges.size >= 2

    def test_power_law_estimate_nan_for_tiny(self):
        from repro.graph.generators import path_graph

        assert np.isnan(stats.power_law_exponent_estimate(path_graph(5)))
