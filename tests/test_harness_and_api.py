"""Tests for the table harness and the top-level public API surface."""

import numpy as np
import pytest

from repro.harness.tables import format_table, print_table


class TestFormatTable:
    def test_dict_rows(self):
        text = format_table(["a", "b"], [{"a": 1, "b": 2.5}], title="T")
        assert "T" in text
        assert "1" in text and "2.5" in text

    def test_sequence_rows(self):
        text = format_table(["x"], [[None], [True], [False]])
        lines = text.splitlines()
        assert lines[-3].strip() == "-"
        assert lines[-2].strip() == "yes"
        assert lines[-1].strip() == "no"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.001234], [123456.0], [float("nan")]])
        assert "0.00123" in text
        assert "1.23e+05" in text or "123456" in text
        assert text.splitlines()[-1].strip() == "-"

    def test_missing_dict_key_renders_dash(self):
        text = format_table(["a", "b"], [{"a": 1}])
        assert "| -" in text or "- " in text.splitlines()[-1]

    def test_alignment(self):
        text = format_table(["name", "v"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_print_table(self, capsys):
        print_table(["a"], [[1]])
        assert "a" in capsys.readouterr().out


class TestPublicApi:
    def test_lazy_attributes_resolve(self):
        import repro

        assert repro.UniNet.__name__ == "UniNet"
        assert repro.CSRGraph.__name__ == "CSRGraph"
        assert repro.GraphBuilder.__name__ == "GraphBuilder"
        assert repro.NodeLabels.__name__ == "NodeLabels"
        assert hasattr(repro.datasets, "load")
        assert repro.WalkConfig is not None
        assert repro.TrainConfig is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_lists_public_names(self):
        import repro

        names = dir(repro)
        assert "UniNet" in names and "datasets" in names

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_errors_hierarchy(self):
        from repro import errors

        for exc in (
            errors.GraphError,
            errors.SamplerError,
            errors.ModelError,
            errors.WalkError,
            errors.VocabularyError,
            errors.TrainingError,
            errors.EvaluationError,
        ):
            assert issubclass(exc, errors.ReproError)
        assert issubclass(errors.SimulatedOutOfMemoryError, errors.SamplerError)
        assert not issubclass(errors.SimulatedOutOfMemoryError, MemoryError)

    def test_oom_error_payload(self):
        from repro.errors import SimulatedOutOfMemoryError

        err = SimulatedOutOfMemoryError(2000, 1000, "alias")
        assert err.required_bytes == 2000
        assert err.budget_bytes == 1000
        assert "alias" in str(err)


class TestFailureInjection:
    def test_corrupt_npz_graph(self, tmp_path):
        import numpy as np

        from repro.errors import GraphError
        from repro.graph.io import load_npz

        path = tmp_path / "bad.npz"
        # offsets inconsistent with targets
        np.savez(path, offsets=np.array([0, 5]), targets=np.array([0]))
        with pytest.raises(GraphError):
            load_npz(path)

    def test_corpus_with_negative_interior_tolerated_by_iter(self):
        """Padding must only appear after the recorded length."""
        from repro.walks.corpus import WalkCorpus

        corpus = WalkCorpus(np.array([[3, 4, -1]]), np.array([2]))
        assert list(corpus.iter_walks())[0].tolist() == [3, 4]

    def test_keyed_vectors_empty_query(self):
        from repro.embedding import KeyedVectors
        from repro.errors import VocabularyError

        kv = KeyedVectors(np.array([0]), np.ones((1, 2)))
        with pytest.raises(VocabularyError):
            kv.vector(-1)

    def test_builder_rejects_giant_declared_mismatch(self):
        from repro.errors import GraphError
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1)
        builder.add_edge(1, 5)  # exceeds declared space
        with pytest.raises(GraphError):
            builder.build()
