"""Tests for the pure-Python open-source baselines."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.legacy import LEGACY_MODELS, run_legacy_walks
from repro.legacy.adjacency import AdjacencyGraph
from repro.legacy.alias import alias_draw, alias_setup
from repro.legacy.walkers import LegacyNode2Vec


class TestAdjacency:
    def test_mirrors_csr(self, tiny_weighted_graph):
        adj = AdjacencyGraph(tiny_weighted_graph)
        for v in range(tiny_weighted_graph.num_nodes):
            assert adj.neighbors[v] == tiny_weighted_graph.neighbors(v).tolist()
        assert adj.has_edge(0, 1) and not adj.has_edge(0, 0)

    def test_types_carried(self, academic):
        graph, __ = academic
        adj = AdjacencyGraph(graph)
        assert adj.node_types == graph.node_types.tolist()
        assert adj.edge_types is not None


class TestLegacyAlias:
    def test_alias_distribution(self):
        import random

        rng = random.Random(0)
        probs = [0.1, 0.2, 0.7]
        j, q = alias_setup(probs)
        counts = [0, 0, 0]
        for __ in range(30000):
            counts[alias_draw(j, q, rng)] += 1
        freqs = [c / 30000 for c in counts]
        assert max(abs(f - p) for f, p in zip(freqs, probs)) < 0.02


class TestLegacyWalkers:
    def test_registry_covers_all_models(self):
        assert set(LEGACY_MODELS) == {
            "deepwalk", "node2vec", "metapath2vec", "edge2vec", "fairwalk",
        }

    def test_deepwalk_walks_follow_edges(self, small_unweighted_graph):
        corpus, timings = run_legacy_walks(
            small_unweighted_graph, "deepwalk", num_walks=1, walk_length=8, seed=0
        )
        assert corpus.num_walks == small_unweighted_graph.num_nodes
        for walk in list(corpus.iter_walks())[:30]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert small_unweighted_graph.has_edge(int(a), int(b))

    def test_node2vec_preprocesses_all_edges(self, tiny_weighted_graph):
        walker = LegacyNode2Vec(tiny_weighted_graph, p=0.5, q=2.0, seed=1)
        walker.preprocess()
        assert len(walker.alias_edges) == tiny_weighted_graph.num_edge_entries
        assert len(walker.alias_nodes) == tiny_weighted_graph.num_nodes

    def test_node2vec_transition_matches_vectorized(self, tiny_weighted_graph):
        """Legacy and UniNet walk laws must agree statistically."""
        from repro.walks.vectorized import VectorizedWalkEngine

        g = tiny_weighted_graph
        params = dict(p=0.25, q=4.0)
        legacy_corpus, __ = run_legacy_walks(
            g, "node2vec", num_walks=300, walk_length=10, seed=2, **params
        )
        vec = VectorizedWalkEngine(g, "node2vec", sampler="direct", seed=3, **params)
        vec_corpus = vec.generate(num_walks=300, walk_length=10)

        def transitions(corpus):
            counts = np.zeros((5, 5))
            for walk in corpus.iter_walks():
                if walk.size > 1:
                    np.add.at(counts, (walk[:-1], walk[1:]), 1)
            return counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)

        tv = 0.5 * np.abs(transitions(legacy_corpus) - transitions(vec_corpus)).sum(axis=1).max()
        assert tv < 0.06

    def test_metapath_respects_types(self, academic):
        graph, __ = academic
        corpus, __ = run_legacy_walks(
            graph, "metapath2vec", num_walks=1, walk_length=7, metapath="APA", seed=4
        )
        for walk in list(corpus.iter_walks())[:30]:
            types = graph.node_types[walk].tolist()
            assert types == [0, 1, 0, 1, 0, 1, 0][: len(types)]

    def test_edge2vec_runs(self, academic):
        graph, __ = academic
        corpus, timings = run_legacy_walks(
            graph, "edge2vec", num_walks=1, walk_length=6, p=0.5, q=2.0, seed=5
        )
        assert corpus.token_count > 0
        assert timings["walk"] > 0

    def test_fairwalk_runs(self, academic):
        graph, __ = academic
        corpus, __ = run_legacy_walks(
            graph, "fairwalk", num_walks=1, walk_length=6, p=0.5, q=2.0, seed=6
        )
        assert corpus.token_count > 0

    def test_unknown_model(self, small_unweighted_graph):
        with pytest.raises(ModelError):
            run_legacy_walks(small_unweighted_graph, "gnn")

    def test_hetero_models_need_types(self, small_unweighted_graph):
        with pytest.raises(ModelError):
            run_legacy_walks(small_unweighted_graph, "metapath2vec")

    def test_timings_structure(self, small_unweighted_graph):
        __, timings = run_legacy_walks(
            small_unweighted_graph, "deepwalk", num_walks=1, walk_length=5, seed=7
        )
        assert set(timings) == {"init", "walk"}
