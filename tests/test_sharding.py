"""Sharded walk + serving subsystem: partitioning, parity, scatter-gather.

Covers the four layers of the sharding subsystem:

* partitioner — owner/plan invariants for every registered partitioner,
  plan validation, registry pluggability;
* engine — the acceptance matrix: corpora bitwise identical to
  :class:`VectorizedWalkEngine` for hash AND degree-balanced partitions
  at 1/2/4 shards, across samplers, models (hetero included),
  initializers and both transports, plus migration-counter sanity;
* serving — :class:`ShardedEmbeddingStore` split invariants and
  :class:`ScatterGatherRouter` exact top-k parity with the monolithic
  :class:`QueryService` (tie-breaks and self-exclusion included);
* wiring — ``ShardingConfig`` through the pipeline, ``UniNet``,
  ``RunSpec`` round-trip/validation and the CLI.
"""

import numpy as np
import pytest

from repro.core.config import ShardingConfig, StreamingConfig, TrainConfig, WalkConfig
from repro.core.pipeline import train_pipeline
from repro.errors import ServingError, ShardError, SpecError, WalkError
from repro.serving.service import QueryService
from repro.serving.store import EmbeddingStore
from repro.sharding import (
    PARTITIONER_REGISTRY,
    ScatterGatherRouter,
    ShardedEmbeddingStore,
    ShardedWalkEngine,
    build_shard_plan,
    make_partitioner,
    make_transport,
    register_partitioner,
)
from repro.sharding.router import merge_shard_topk
from repro.walks.vectorized import VectorizedWalkEngine

PARTITIONERS = ("hash", "degree_balanced")


def _mono(graph, model, sampler="mh", *, seed, num_walks=2, walk_length=12, **kw):
    engine = VectorizedWalkEngine(graph, model, sampler=sampler, seed=seed, **kw)
    return engine.generate(num_walks, walk_length), engine


def _sharded(graph, model, sampler="mh", *, seed, num_walks=2, walk_length=12, **kw):
    engine = ShardedWalkEngine(graph, model, sampler=sampler, seed=seed, **kw)
    return engine.generate(num_walks, walk_length), engine


def assert_corpus_equal(a, b):
    assert np.array_equal(a.walks, b.walks)
    assert np.array_equal(a.lengths, b.lengths)


# ---------------------------------------------------------------------------
# partitioner / plan
# ---------------------------------------------------------------------------


class TestShardPlan:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_plan_invariants(self, small_power_law_graph, partitioner):
        g = small_power_law_graph
        plan = build_shard_plan(g, 3, partitioner)
        assert plan.num_shards == 3
        assert plan.owner.shape == (g.num_nodes,)
        assert plan.owner.min() >= 0 and plan.owner.max() < 3
        # every node owned exactly once; counts partition nodes and edges
        assert int(plan.node_counts.sum()) == g.num_nodes
        assert int(plan.edge_counts.sum()) == g.num_edge_entries
        sources = g.edge_sources()
        assert plan.boundary_edges == int(
            (plan.owner[sources] != plan.owner[g.targets]).sum()
        )
        assert plan.node_imbalance >= 1.0
        assert plan.edge_imbalance >= 1.0
        for shard in plan.shards:
            # node_map ascending and g2l round-trips
            assert np.all(np.diff(shard.node_map) > 0)
            assert np.array_equal(
                shard.global_to_local[shard.node_map],
                np.arange(shard.node_map.size),
            )
            assert np.array_equal(
                shard.owned_local, plan.owner[shard.node_map] == shard.shard_id
            )
            # owned rows are complete: local degree == global degree
            owned_global = shard.node_map[shard.owned_local]
            owned_local = shard.global_to_local[owned_global]
            deg_global = g.offsets[owned_global + 1] - g.offsets[owned_global]
            deg_local = (
                shard.graph.offsets[owned_local + 1] - shard.graph.offsets[owned_local]
            )
            assert np.array_equal(deg_global, deg_local)

    def test_degree_balanced_beats_hash_on_edges(self, small_power_law_graph):
        hash_plan = build_shard_plan(small_power_law_graph, 4, "hash")
        lpt_plan = build_shard_plan(small_power_law_graph, 4, "degree_balanced")
        assert lpt_plan.edge_imbalance <= hash_plan.edge_imbalance

    def test_plan_validation(self, tiny_weighted_graph):
        with pytest.raises(ShardError):
            build_shard_plan(tiny_weighted_graph, 0)
        with pytest.raises(ShardError):
            make_partitioner("no-such-partitioner")
        with pytest.raises(ShardError):
            make_transport("no-such-transport", None, "deepwalk", {}, "mh", {})

        class BadShape:
            def partition(self, graph, num_shards):
                return np.zeros(graph.num_nodes + 1, dtype=np.int64)

        with pytest.raises(ShardError, match="shape"):
            build_shard_plan(tiny_weighted_graph, 2, BadShape())

        class OutOfRange:
            def partition(self, graph, num_shards):
                return np.full(graph.num_nodes, num_shards, dtype=np.int64)

        with pytest.raises(ShardError, match="outside"):
            build_shard_plan(tiny_weighted_graph, 2, OutOfRange())

    def test_custom_partitioner_registers_and_runs(self, small_unweighted_graph):
        @register_partitioner("test-round-robin")
        class RoundRobin:
            name = "test-round-robin"

            def partition(self, graph, num_shards):
                return np.arange(graph.num_nodes, dtype=np.int64) % num_shards

        try:
            plan = build_shard_plan(small_unweighted_graph, 2, "test-round-robin")
            assert plan.partitioner == "test-round-robin"
            mono, __ = _mono(small_unweighted_graph, "deepwalk", seed=31)
            shrd, __ = _sharded(
                small_unweighted_graph,
                "deepwalk",
                seed=31,
                num_shards=2,
                partitioner="test-round-robin",
            )
            assert_corpus_equal(mono, shrd)
        finally:
            PARTITIONER_REGISTRY.unregister("test-round-robin")


# ---------------------------------------------------------------------------
# engine parity — the acceptance matrix
# ---------------------------------------------------------------------------


class TestEngineParity:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_corpus_bitwise_identical(self, small_power_law_graph, partitioner, shards):
        mono, me = _mono(small_power_law_graph, "node2vec", seed=123, p=0.5, q=2.0)
        shrd, se = _sharded(
            small_power_law_graph,
            "node2vec",
            seed=123,
            num_shards=shards,
            partitioner=partitioner,
            p=0.5,
            q=2.0,
        )
        assert_corpus_equal(mono, shrd)
        ms, ss = me.stats(), se.stats()
        for key in ("samples", "proposals", "accepts", "initializations"):
            assert ms[key] == ss[key], key

    @pytest.mark.parametrize(
        "sampler", ("mh", "direct", "alias", "rejection", "knightking")
    )
    def test_sampler_parity_two_shards(self, small_power_law_graph, sampler):
        mono, __ = _mono(small_power_law_graph, "node2vec", sampler, seed=77, p=2.0, q=0.5)
        shrd, __ = _sharded(
            small_power_law_graph, "node2vec", sampler, seed=77, num_shards=2, p=2.0, q=0.5
        )
        assert_corpus_equal(mono, shrd)

    def test_alias_first_order_parity(self, small_power_law_graph):
        mono, __ = _mono(small_power_law_graph, "deepwalk", "alias-first-order", seed=5)
        shrd, __ = _sharded(
            small_power_law_graph, "deepwalk", "alias-first-order", seed=5, num_shards=4
        )
        assert_corpus_equal(mono, shrd)

    @pytest.mark.parametrize("initializer", ("random", "burn-in"))
    def test_initializer_parity(self, small_unweighted_graph, initializer):
        kw = {"initializer": initializer, "burn_in_iterations": 5}
        mono, __ = _mono(small_unweighted_graph, "deepwalk", seed=19, **kw)
        shrd, __ = _sharded(
            small_unweighted_graph, "deepwalk", seed=19, num_shards=2, **kw
        )
        assert_corpus_equal(mono, shrd)

    def test_hetero_model_parity(self, academic):
        graph, __ = academic
        mono, __m = _mono(
            graph, "metapath2vec", "mh", seed=9, walk_length=9, metapath="APVPA"
        )
        shrd, __s = _sharded(
            graph,
            "metapath2vec",
            "mh",
            seed=9,
            walk_length=9,
            num_shards=3,
            partitioner="degree_balanced",
            metapath="APVPA",
        )
        assert_corpus_equal(mono, shrd)

    def test_process_transport_parity(self, small_power_law_graph):
        mono, __ = _mono(small_power_law_graph, "deepwalk", seed=42, walk_length=8)
        with ShardedWalkEngine(
            small_power_law_graph, "deepwalk", transport="process", num_shards=2, seed=42
        ) as engine:
            shrd = engine.generate(2, 8)
        assert_corpus_equal(mono, shrd)

    def test_start_nodes_subset_parity(self, small_power_law_graph):
        starts = np.array([0, 7, 13, 250], dtype=np.int64)
        me = VectorizedWalkEngine(small_power_law_graph, "deepwalk", seed=3)
        se = ShardedWalkEngine(small_power_law_graph, "deepwalk", num_shards=2, seed=3)
        assert_corpus_equal(
            me.generate(3, 10, start_nodes=starts), se.generate(3, 10, start_nodes=starts)
        )


class TestEngineStats:
    def test_migration_counters(self, small_power_law_graph):
        __, engine = _sharded(small_power_law_graph, "deepwalk", seed=1, num_shards=2)
        stats = engine.stats()
        assert stats["num_shards"] == 2
        assert stats["partitioner"] == "hash"
        assert stats["boundary_edges"] > 0
        assert stats["walker_steps"] > 0
        assert stats["migrated_walkers"] > 0
        assert stats["migration_batches"] >= stats["migration_rounds"] > 0
        assert 0.0 < stats["migration_rate"] <= 1.0
        assert stats["node_imbalance"] >= 1.0
        assert engine.memory_bytes() > 0

    def test_single_shard_never_migrates(self, small_power_law_graph):
        __, engine = _sharded(small_power_law_graph, "deepwalk", seed=1, num_shards=1)
        stats = engine.stats()
        assert stats["migrated_walkers"] == 0
        assert stats["migration_rate"] == 0.0
        assert stats["boundary_edges"] == 0

    def test_unsupported_options_raise(self, tiny_weighted_graph):
        from repro.walks.models import make_model

        bound = make_model("deepwalk", tiny_weighted_graph)
        with pytest.raises(ShardError, match="registry name"):
            ShardedWalkEngine(tiny_weighted_graph, bound)
        with pytest.raises(ShardError, match="budget"):
            ShardedWalkEngine(tiny_weighted_graph, "deepwalk", table_budget_bytes=1024)
        with pytest.raises(ShardError, match="chain_store"):
            ShardedWalkEngine(tiny_weighted_graph, "deepwalk", chain_store=object())
        with pytest.raises(ShardError, match="sampler"):
            ShardedWalkEngine(tiny_weighted_graph, "deepwalk", sampler="memory-aware")
        with pytest.raises(ShardError, match="backend"):
            ShardedWalkEngine(tiny_weighted_graph, "deepwalk", backend="numba")
        with pytest.raises(ShardError, match="initializer"):
            ShardedWalkEngine(tiny_weighted_graph, "deepwalk", initializer=object())


# ---------------------------------------------------------------------------
# sharded store + scatter-gather router
# ---------------------------------------------------------------------------


@pytest.fixture
def store_and_plan(small_power_law_graph):
    rng = np.random.default_rng(17)
    n = small_power_law_graph.num_nodes
    vectors = rng.standard_normal((n, 24)).astype(np.float32)
    store = EmbeddingStore(np.arange(n, dtype=np.int64), vectors=vectors)
    plan = build_shard_plan(small_power_law_graph, 3, "hash")
    return store, plan


class TestShardedStore:
    def test_split_invariants(self, store_and_plan):
        store, plan = store_and_plan
        sharded = ShardedEmbeddingStore.from_store(store, plan)
        assert sharded.num_shards == plan.num_shards
        assert len(sharded) == len(store)
        assert int(sharded.counts().sum()) == len(store)
        assert sharded.dimensions == store.dimensions
        # decode through the shards is bitwise identical to the monolith
        rows = np.arange(len(store), dtype=np.int64)
        assert np.array_equal(
            sharded.decode_monolith_rows(rows), store.decode_rows(rows)
        )
        assert np.array_equal(sharded.rows_for(store.keys), store.rows_for(store.keys))

    def test_from_owner_array_and_errors(self, store_and_plan):
        store, plan = store_and_plan
        sharded = ShardedEmbeddingStore.from_store(store, plan.owner)
        assert sharded.num_shards == plan.num_shards
        with pytest.raises(ServingError, match="not in the store"):
            sharded.rows_for([len(store) + 5])
        with pytest.raises(ShardError, match="owner"):
            ShardedEmbeddingStore.from_store(store, np.empty(0, dtype=np.int64))
        with pytest.raises(ShardError, match="owner"):
            # owner array shorter than the key space
            ShardedEmbeddingStore.from_store(store, np.zeros(3, dtype=np.int64))


class TestScatterGather:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("shards", (1, 2, 4))
    @pytest.mark.parametrize("topn", (1, 5, 10))
    def test_exact_monolithic_parity(
        self, small_power_law_graph, partitioner, shards, topn
    ):
        rng = np.random.default_rng(23)
        n = small_power_law_graph.num_nodes
        vectors = rng.standard_normal((n, 16)).astype(np.float32)
        store = EmbeddingStore(np.arange(n, dtype=np.int64), vectors=vectors)
        plan = build_shard_plan(small_power_law_graph, shards, partitioner)
        service = QueryService(store, index="bruteforce", cache_size=0)
        router = ScatterGatherRouter(store, plan=plan, cache_size=0)
        keys = np.arange(0, n, 7, dtype=np.int64)
        assert router.most_similar_batch(keys, topn=topn) == service.most_similar_batch(
            keys, topn=topn
        )

    def test_cache_path_and_stats(self, store_and_plan):
        store, plan = store_and_plan
        router = ScatterGatherRouter(store, plan=plan, cache_size=64)
        first = router.most_similar_batch([0, 1, 1], topn=5)
        second = router.most_similar_batch([0, 1], topn=5)
        assert second == first[:2]
        stats = router.stats()
        assert stats["cache_hits"] >= 2
        assert stats["num_shards"] == plan.num_shards
        assert sum(stats["shard_counts"]) == len(store)
        assert stats["queries"] == 5
        assert stats["fanouts"] > 0
        router.reset_stats()
        assert router.stats()["queries"] == 0
        with pytest.raises(ServingError, match="topn"):
            router.most_similar_batch([0], topn=0)

    def test_router_needs_plan_for_monolithic_store(self, store_and_plan):
        store, __ = store_and_plan
        with pytest.raises(ServingError, match="plan"):
            ScatterGatherRouter(store)

    def test_router_accepts_presplit_store(self, store_and_plan):
        store, plan = store_and_plan
        sharded = ShardedEmbeddingStore.from_store(store, plan)
        router = ScatterGatherRouter(sharded, cache_size=0)
        service = QueryService(store, index="bruteforce", cache_size=0)
        assert router.most_similar_batch([3, 5], topn=4) == service.most_similar_batch(
            [3, 5], topn=4
        )

    def test_merge_shard_topk(self):
        per_shard = [
            [(0, 0.9), (2, 0.5)],
            [(1, 0.9), (3, 0.7)],
            [],
        ]
        # descending score, ties broken by ascending row, truncated to topn
        assert merge_shard_topk(per_shard, 3) == [(0, 0.9), (1, 0.9), (3, 0.7)]


# ---------------------------------------------------------------------------
# wiring: config / pipeline / UniNet / spec / CLI
# ---------------------------------------------------------------------------


class TestShardingConfig:
    def test_validation(self):
        assert ShardingConfig().enabled
        assert ShardingConfig(partitioner="degree-balanced").partitioner == "degree_balanced"
        with pytest.raises(WalkError):
            ShardingConfig(shards=0)
        with pytest.raises(WalkError):
            ShardingConfig(partitioner="no-such")
        with pytest.raises(WalkError):
            ShardingConfig(transport="carrier-pigeon")


class TestWiring:
    def test_pipeline_sharded_embeddings_bitwise(self, small_unweighted_graph):
        walk = WalkConfig(num_walks=2, walk_length=10)
        train = TrainConfig(dimensions=16, epochs=1)
        mono = train_pipeline(small_unweighted_graph, "deepwalk", walk, train, seed=13)
        shrd = train_pipeline(
            small_unweighted_graph,
            "deepwalk",
            walk,
            train,
            seed=13,
            sharding=ShardingConfig(shards=2),
        )
        assert np.array_equal(mono.embeddings.vectors, shrd.embeddings.vectors)
        assert shrd.sampler_stats["num_shards"] == 2
        assert "migration_rate" in shrd.sampler_stats

    def test_pipeline_rejects_streaming_plus_sharding(self, small_unweighted_graph):
        with pytest.raises(WalkError, match="streaming and sharding"):
            train_pipeline(
                small_unweighted_graph,
                "deepwalk",
                WalkConfig(num_walks=1, walk_length=5),
                streaming=StreamingConfig(),
                sharding=ShardingConfig(),
                seed=1,
            )

    def test_uninet_shards_sugar(self, small_unweighted_graph):
        from repro import UniNet

        net1 = UniNet(small_unweighted_graph, model="node2vec", p=0.5, q=2.0, seed=7)
        r1 = net1.train(num_walks=2, walk_length=10, dimensions=16)
        net2 = UniNet(small_unweighted_graph, model="node2vec", p=0.5, q=2.0, seed=7)
        r2 = net2.train(
            num_walks=2,
            walk_length=10,
            dimensions=16,
            shards=3,
            partitioner="degree_balanced",
        )
        assert np.array_equal(r1.embeddings.vectors, r2.embeddings.vectors)
        assert r2.sampler_stats["partitioner"] == "degree_balanced"

    def test_uninet_generate_walks_sharding(self, small_unweighted_graph):
        from repro import UniNet

        net1 = UniNet(small_unweighted_graph, seed=7)
        c1 = net1.generate_walks(2, 10)
        net2 = UniNet(small_unweighted_graph, seed=7)
        c2 = net2.generate_walks(2, 10, sharding={"shards": 2, "transport": "inline"})
        assert np.array_equal(c1.walks, c2.walks)
        assert net2.last_stats["migrated_walkers"] > 0

    def test_runspec_roundtrip_and_conflict(self):
        from repro import GraphSpec, RunSpec

        spec = RunSpec(
            graph=GraphSpec(dataset="blogcatalog", scale=0.05, seed=3),
            sharding=ShardingConfig(shards=4, partitioner="degree_balanced"),
        )
        again = RunSpec.from_dict(spec.to_dict())
        assert again.sharding == spec.sharding
        graph = GraphSpec(dataset="blogcatalog", scale=0.05, seed=3)
        bad = RunSpec(
            graph=graph, sharding=ShardingConfig(), streaming=StreamingConfig()
        )
        with pytest.raises(SpecError, match="streaming and sharding"):
            bad.validate()
        # the master switch resolves the conflict without deleting a block
        ok = RunSpec(
            graph=graph,
            sharding=ShardingConfig(),
            streaming=StreamingConfig(enabled=False),
        )
        ok.validate()

    def test_run_report_carries_shard_stats(self):
        from repro import GraphSpec, RunSpec, run

        report = run(
            RunSpec(
                graph=GraphSpec(dataset="blogcatalog", scale=0.05, seed=3),
                walk=WalkConfig(num_walks=2, walk_length=10),
                train=TrainConfig(dimensions=8),
                sharding=ShardingConfig(shards=2),
                seed=11,
            ),
            keep_embeddings=False,
        )
        assert report.sampler_stats["num_shards"] == 2
        assert report.sampler_stats["migration_rate"] > 0

    def test_cli_walk_and_train_shards(self, tmp_path, capsys):
        from repro.cli import main

        walks = tmp_path / "w.npz"
        code = main(
            [
                "walk", "--dataset", "blogcatalog", "--scale", "0.05", "--seed", "3",
                "--shards", "2", "--partitioner", "degree_balanced",
                "--num-walks", "2", "--walk-length", "10", "--output", str(walks),
            ]
        )
        assert code == 0
        assert walks.exists()
        out = capsys.readouterr().out
        assert "2 shard(s) via degree_balanced" in out
        vectors = tmp_path / "v.npz"
        code = main(
            [
                "train", "--dataset", "blogcatalog", "--scale", "0.05", "--seed", "3",
                "--shards", "2", "--num-walks", "2", "--walk-length", "10",
                "--dimensions", "8", "--output", str(vectors),
            ]
        )
        assert code == 0
        assert vectors.exists()
        assert "migration rate" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# socket transport — multi-host execution, loopback for CI
# ---------------------------------------------------------------------------


class TestSocketTransport:
    """The acceptance matrix over TCP: same bits, plus wire accounting."""

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("shards", (2, 3))
    @pytest.mark.parametrize(
        "sampler", ("mh", "direct", "alias", "rejection", "knightking")
    )
    def test_every_sampler_partitioner_shardcount(
        self, small_power_law_graph, sampler, partitioner, shards
    ):
        mono, __ = _mono(
            small_power_law_graph, "node2vec", sampler, seed=31,
            num_walks=1, walk_length=8, p=0.5, q=2.0,
        )
        shrd, engine = _sharded(
            small_power_law_graph, "node2vec", sampler, seed=31,
            num_walks=1, walk_length=8, num_shards=shards,
            partitioner=partitioner, transport="socket", p=0.5, q=2.0,
        )
        engine.close()
        assert_corpus_equal(mono, shrd)

    def test_alias_first_order_parity(self, small_power_law_graph):
        mono, __ = _mono(
            small_power_law_graph, "deepwalk", "alias-first-order", seed=5,
            num_walks=1, walk_length=8,
        )
        shrd, engine = _sharded(
            small_power_law_graph, "deepwalk", "alias-first-order", seed=5,
            num_walks=1, walk_length=8, num_shards=2, transport="socket",
        )
        engine.close()
        assert_corpus_equal(mono, shrd)

    def test_transport_stats_surface(self, small_power_law_graph):
        __, engine = _sharded(
            small_power_law_graph, "deepwalk", seed=2, num_walks=1,
            walk_length=8, num_shards=2, transport="socket",
        )
        try:
            stats = engine.stats()
            assert stats["transport"] == "socket"
            ts = stats["transport_stats"]
            assert ts["bytes_sent"] > 0
            assert ts["bytes_recv"] > 0
            # walkers crossed shards, so migration payloads hit the wire
            assert 0 < ts["migration_payload_bytes"] <= ts["bytes_sent"]
            assert ts["op_latency"]["advance"]["calls"] > 0
            assert ts["op_latency"]["advance"]["seconds"] >= 0.0
            # liveness probe answers and reports a latency per shard
            latencies = engine.transport.ping()
            assert len(latencies) == 2 and all(lat > 0 for lat in latencies)
        finally:
            engine.close()
        # inline engines advertise their transport too, without wire stats
        __, inline_engine = _sharded(
            small_power_law_graph, "deepwalk", seed=2, num_walks=1,
            walk_length=8, num_shards=2,
        )
        stats = inline_engine.stats()
        assert stats["transport"] == "inline"
        assert "transport_stats" not in stats

    def test_remote_op_error_keeps_transport_usable(self, small_power_law_graph):
        """A typed worker-side failure is not a connection failure."""
        __, engine = _sharded(
            small_power_law_graph, "deepwalk", seed=2, num_walks=1,
            walk_length=8, num_shards=2, transport="socket",
        )
        try:
            with pytest.raises(ShardError, match="no_such_op"):
                engine.transport.call(0, "no_such_op")
            # the connection stayed in sync: further ops still answer
            assert engine.transport.call(0, "memory_bytes") >= 0
        finally:
            engine.close()

    def test_hosts_validation(self, small_power_law_graph):
        with pytest.raises(ShardError, match="socket"):
            ShardedWalkEngine(
                small_power_law_graph, "deepwalk", num_shards=2,
                transport="inline", hosts=["127.0.0.1:1"],
            )
        with pytest.raises(ShardError, match="2 shard"):
            ShardedWalkEngine(
                small_power_law_graph, "deepwalk", num_shards=2,
                transport="socket", hosts=["127.0.0.1:1"], connect_timeout=0.2,
            )

    def test_sharding_config_socket_fields(self):
        cfg = ShardingConfig(
            shards=2, transport="socket", hosts=["a:9101", "b:9102"],
            call_timeout=None,
        )
        assert cfg.hosts == ("a:9101", "b:9102")
        assert cfg.call_timeout is None
        # round-trips through the RunSpec dict form (tuples become lists)
        from repro.core.spec import RunSpec, GraphSpec

        spec = RunSpec(
            graph=GraphSpec(dataset="blogcatalog", scale=0.05, seed=3),
            sharding=cfg,
        )
        again = RunSpec.from_dict(spec.to_dict())
        assert again.sharding == cfg
        with pytest.raises(WalkError, match="socket"):
            ShardingConfig(shards=1, transport="inline", hosts=["a:1"])
        with pytest.raises(WalkError, match="host:port"):
            ShardingConfig(shards=1, transport="socket", hosts=["nocolon"])
        with pytest.raises(WalkError, match="one worker per shard"):
            ShardingConfig(shards=3, transport="socket", hosts=["a:1", "b:2"])
        with pytest.raises(WalkError, match="connect_timeout"):
            ShardingConfig(transport="socket", connect_timeout=0)
        with pytest.raises(WalkError, match="call_timeout"):
            ShardingConfig(transport="socket", call_timeout=-1)

    def test_uninet_socket_sugar(self, small_unweighted_graph):
        from repro import UniNet

        net1 = UniNet(small_unweighted_graph, seed=7)
        r1 = net1.train(num_walks=1, walk_length=8, dimensions=8)
        net2 = UniNet(small_unweighted_graph, seed=7)
        r2 = net2.train(
            num_walks=1, walk_length=8, dimensions=8, shard_transport="socket"
        )
        assert np.array_equal(r1.embeddings.vectors, r2.embeddings.vectors)
        assert r2.sampler_stats["transport"] == "socket"
        assert r2.sampler_stats["transport_stats"]["bytes_sent"] > 0

    def test_cli_standing_workers_bitwise(self, tmp_path):
        """The real multi-host shape: standing shard-worker processes."""
        import os
        import re
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        workers, hosts = [], []
        try:
            for __ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro", "shard-worker", "--port", "0"],
                    stdout=subprocess.PIPE, text=True, env=env,
                )
                workers.append(proc)
                match = re.search(
                    r"listening on ([\d.]+):(\d+)", proc.stdout.readline()
                )
                assert match is not None
                hosts.append(f"{match.group(1)}:{match.group(2)}")

            from repro.cli import main

            mono = tmp_path / "mono.npz"
            sock = tmp_path / "sock.npz"
            base = [
                "walk", "--dataset", "blogcatalog", "--scale", "0.05",
                "--seed", "4", "--num-walks", "1", "--walk-length", "8",
            ]
            assert main(base + ["--output", str(mono)]) == 0
            assert main(base + ["--output", str(sock), "--shard-hosts", *hosts]) == 0
            a, b = np.load(mono), np.load(sock)
            assert np.array_equal(a["walks"], b["walks"])
            assert np.array_equal(a["lengths"], b["lengths"])
            for proc in workers:
                assert proc.wait(timeout=15) == 0  # drained after one session
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
                proc.stdout.close()
                proc.wait()
