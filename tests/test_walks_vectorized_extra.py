"""Additional vectorized-engine tests: stepper internals and edge cases."""

import numpy as np
import pytest

from repro.graph.builder import from_edge_arrays
from repro.graph.hetero import assign_random_types
from repro.sampling.base import NO_EDGE
from repro.walks.models import make_model
from repro.walks.vectorized import VectorizedWalkEngine


class TestFirstStepSemantics:
    def test_fairwalk_first_step_is_group_fair(self):
        """Step 0 must use the model's law, not the static distribution."""
        src = np.zeros(10, dtype=np.int64)
        dst = np.arange(1, 11)
        g = from_edge_arrays(src, dst, num_nodes=11)
        types = np.zeros(11, dtype=np.int16)
        types[1:10] = 1  # nine of type 1
        types[10] = 2  # one of type 2
        typed = g.with_node_types(types)
        eng = VectorizedWalkEngine(typed, "fairwalk", sampler="direct", p=1, q=1, seed=1)
        corpus = eng.generate(num_walks=800, walk_length=2, start_nodes=[0])
        frac_type2 = float((corpus.walks[:, 1] == 10).mean())
        assert abs(frac_type2 - 0.5) < 0.05  # static law would give 0.1

    def test_node2vec_first_step_is_static(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        eng = VectorizedWalkEngine(g, "node2vec", sampler="mh", p=0.01, q=100.0, seed=2)
        corpus = eng.generate(num_walks=2000, walk_length=2, start_nodes=[0])
        counts = np.bincount(corpus.walks[:, 1], minlength=5)[1:]
        w = g.neighbor_weights(0)
        expected = w / w.sum()
        assert 0.5 * np.abs(counts / counts.sum() - expected).sum() < 0.05


class TestDeadEndsVectorized:
    def test_walkers_terminate_at_sinks(self):
        # directed chain 0 -> 1 -> 2 with no way out of 2
        g = from_edge_arrays([0, 1], [1, 2], num_nodes=3, directed=True)
        eng = VectorizedWalkEngine(g, "deepwalk", sampler="mh", seed=3)
        corpus = eng.generate(num_walks=1, walk_length=10)
        walks = {tuple(w.tolist()) for w in corpus.iter_walks()}
        assert (0, 1, 2) in walks
        assert corpus.lengths.max() == 3

    def test_metapath_dead_end_terminates(self, academic):
        graph, __ = academic
        # APAPA... but venues break the chain; walks stop instead of
        # traversing forbidden edges
        eng = VectorizedWalkEngine(graph, "metapath2vec", metapath="APA", seed=4)
        corpus = eng.generate(num_walks=1, walk_length=15)
        for walk in corpus.iter_walks():
            types = graph.node_types[walk]
            expected = [0, 1] * 8
            assert types.tolist() == expected[: walk.size]


class TestChainSharing:
    def test_same_chain_store_shared_between_engines(self, small_power_law_graph):
        from repro.walks.manager import ChainStore

        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        store = ChainStore(g, model)
        eng1 = VectorizedWalkEngine(g, model, sampler="mh", chain_store=store, seed=5)
        eng1.generate(num_walks=1, walk_length=10)
        initialized = store.num_initialized
        assert initialized > 0
        eng2 = VectorizedWalkEngine(g, model, sampler="mh", chain_store=store, seed=6)
        eng2.generate(num_walks=1, walk_length=10)
        assert store.num_initialized >= initialized


class TestRejectionInternals:
    def test_knightking_falls_back_without_folding_support(self, small_power_law_graph):
        """deepwalk has no outliers: KK must behave as plain rejection."""
        g = small_power_law_graph
        eng = VectorizedWalkEngine(g, "deepwalk", sampler="knightking", seed=7)
        assert not eng.stepper.fold
        corpus = eng.generate(num_walks=1, walk_length=10)
        assert corpus.token_count > 0

    def test_knightking_folds_for_small_p(self, small_power_law_graph):
        g = small_power_law_graph
        eng = VectorizedWalkEngine(
            g, "node2vec", sampler="knightking", p=0.1, q=1.0, seed=8
        )
        assert eng.stepper.fold

    def test_folded_distribution_correct(self, tiny_weighted_graph):
        """End-to-end check that folding samples the exact node2vec law."""
        g = tiny_weighted_graph
        p, q = 0.1, 1.0
        model = make_model("node2vec", g, p=p, q=q)
        from repro.walks.state import WalkerState

        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        eng = VectorizedWalkEngine(g, "node2vec", sampler="knightking", p=p, q=q, seed=9)
        prev = np.full(30000, 3, dtype=np.int64)
        prev_off = np.full(30000, g.edge_index(3, 0), dtype=np.int64)
        cur = np.zeros(30000, dtype=np.int64)
        rng = np.random.default_rng(10)
        chosen = eng.stepper.step(prev, prev_off, cur, 1, rng)
        lo, __ = g.edge_range(0)
        counts = np.bincount(chosen - lo, minlength=g.degree(0))
        assert 0.5 * np.abs(counts / counts.sum() - exact).sum() < 0.02


class TestMemoryAwareStepperInternals:
    def test_budget_splits_alias_and_direct(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        full_bytes = model.alias_entries(g) * 16
        eng = VectorizedWalkEngine(
            g, model, sampler="memory-aware", table_budget_bytes=full_bytes // 4, seed=11
        )
        assigned = int(eng.stepper.assigned.sum())
        assert 0 < assigned < model.state_space_size(g)
        corpus = eng.generate(num_walks=1, walk_length=10)
        assert corpus.token_count > 0

    def test_full_budget_behaves_like_alias(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        eng = VectorizedWalkEngine(
            g, model, sampler="memory-aware",
            table_budget_bytes=model.alias_entries(g) * 16 + 1024, seed=12,
        )
        assert eng.stepper.assigned.all()
        assert eng.stepper.tables.num_tables == g.num_edge_entries


class TestStatsAccounting:
    def test_mh_acceptance_tracked(self, small_power_law_graph):
        eng = VectorizedWalkEngine(
            small_power_law_graph, "node2vec", sampler="mh", p=0.25, q=4.0, seed=13
        )
        eng.generate(num_walks=1, walk_length=15)
        stats = eng.stats()
        assert 0 < stats["accepts"] <= stats["proposals"]
        assert stats["initializations"] > 0

    def test_setup_seconds_for_eager_samplers(self, small_power_law_graph):
        eng = VectorizedWalkEngine(
            small_power_law_graph, "node2vec", sampler="alias", p=0.5, q=2.0, seed=14
        )
        assert eng.setup_seconds > 0
        assert eng.memory_bytes() > 0
