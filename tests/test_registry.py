"""Tests for the registry subsystem and the registry-backed factories."""

import numpy as np
import pytest

from repro.errors import ModelError, SamplerError, WalkError
from repro.registry import (
    INITIALIZER_REGISTRY,
    MODEL_REGISTRY,
    Registry,
    RegistryError,
    SAMPLER_REGISTRY,
    SCALAR_SAMPLER_REGISTRY,
)


class TestRegistryMechanics:
    def test_register_get_and_aliases(self):
        reg = Registry("widget")
        reg.register("alpha", object, aliases=("a", "al"))
        assert reg.get("alpha") is object
        assert reg.get("A") is object  # lookups are case-insensitive
        assert reg.canonical("al") == "alpha"
        assert "a" in reg and "alpha" in reg
        # iteration yields canonical names only
        assert list(reg) == ["alpha"]
        assert len(reg) == 1

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("thing", aliases=("t",), sturdy=True)
        class Thing:
            pass

        assert reg["thing"] is Thing
        assert reg.capabilities("t")["sturdy"] is True
        assert isinstance(reg.create("thing"), Thing)

    def test_duplicate_names_rejected(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a",))
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("alpha", 2)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("beta", 3, aliases=("a",))  # alias collision
        reg.register("alpha", 2, replace=True)
        assert reg.get("alpha") == 2

    def test_replace_cannot_steal_names_from_other_entries(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a",))
        # colliding with another entry's alias raises even with replace=True
        with pytest.raises(RegistryError, match="unregister 'alpha' first"):
            reg.register("beta", 2, aliases=("a",), replace=True)
        # and never removes the unrelated entry as a side effect
        assert reg.get("alpha") == 1 and reg.canonical("a") == "alpha"
        # same-canonical replacement may rearrange its own aliases freely
        reg.register("alpha", 3, aliases=("al",), replace=True)
        assert reg.get("al") == 3
        assert "a" not in reg  # old alias gone with the replaced entry

    def test_unknown_name_lists_registered_and_suggests(self):
        reg = Registry("widget")
        reg.register("rejection", 1)
        reg.register("direct", 2)
        with pytest.raises(RegistryError) as excinfo:
            reg.get("rejektion")
        message = str(excinfo.value)
        assert "'direct'" in message and "'rejection'" in message
        assert "did you mean 'rejection'" in message

    def test_unregister_removes_aliases(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a",))
        reg.unregister("a")
        assert "alpha" not in reg and "a" not in reg
        with pytest.raises(RegistryError):
            reg.get("alpha")

    def test_custom_error_class(self):
        reg = Registry("widget", error_cls=WalkError)
        with pytest.raises(WalkError):
            reg.get("nope")


class TestBuiltinRegistries:
    def test_models_registered(self):
        assert set(MODEL_REGISTRY) == {
            "deepwalk", "node2vec", "metapath2vec", "edge2vec", "fairwalk",
        }
        assert MODEL_REGISTRY.capabilities("node2vec")["second_order"] is True
        assert "p" in MODEL_REGISTRY.capabilities("node2vec")["param_spec"]
        assert MODEL_REGISTRY.capabilities("metapath2vec")["needs_hetero"] is True

    def test_sampler_registries_aligned(self):
        names = {
            "mh", "direct", "alias", "alias-first-order",
            "rejection", "knightking", "memory-aware",
        }
        assert set(SAMPLER_REGISTRY) == names
        assert set(SCALAR_SAMPLER_REGISTRY) == names
        assert SAMPLER_REGISTRY.canonical("metropolis-hastings") == "mh"
        assert SCALAR_SAMPLER_REGISTRY.canonical("metropolis-hastings") == "mh"

    def test_initializer_aliases_unified(self):
        assert set(INITIALIZER_REGISTRY) == {"random", "high-weight", "burn-in"}
        assert INITIALIZER_REGISTRY.canonical("weight") == "high-weight"
        assert INITIALIZER_REGISTRY.canonical("burnin") == "burn-in"

    def test_make_initializer_resolves_aliases(self):
        from repro.sampling.initialization import HighWeightInitializer, make_initializer

        assert isinstance(make_initializer("weight"), HighWeightInitializer)
        with pytest.raises(SamplerError, match="registered"):
            make_initializer("bogus")

    def test_make_model_suggests_near_misses(self):
        from repro.graph.generators import cycle_graph
        from repro.walks.models import make_model

        with pytest.raises(ModelError) as excinfo:
            make_model("deepwlak", cycle_graph(5))
        assert "did you mean 'deepwalk'" in str(excinfo.value)

    def test_unknown_sampler_error_is_helpful(self, small_unweighted_graph):
        from repro.walks.vectorized import VectorizedWalkEngine

        with pytest.raises(WalkError) as excinfo:
            VectorizedWalkEngine(small_unweighted_graph, "deepwalk", sampler="aliass")
        assert "did you mean 'alias'" in str(excinfo.value)


class TestCustomInitializer:
    def test_registered_initializer_used_by_mh_engine(self, small_power_law_graph):
        from repro.registry import register_initializer
        from repro.sampling.base import NO_EDGE
        from repro.walks.vectorized import VectorizedWalkEngine

        calls = []

        class FirstEdgeInitializer:
            name = "first-edge-test"

            def initialize(self, graph, model, state, rng):
                calls.append(state.current)
                lo, hi = graph.edge_range(state.current)
                return lo if hi > lo else NO_EDGE

        register_initializer("first-edge-test", FirstEdgeInitializer)
        try:
            eng = VectorizedWalkEngine(
                small_power_law_graph, "deepwalk", sampler="mh",
                initializer="first-edge-test", seed=6,
            )
            corpus = eng.generate(num_walks=1, walk_length=5)
            assert corpus.token_count > 0
            assert calls, "registered initializer was never invoked"
            assert eng.stats()["initializations"] == len(calls)
        finally:
            INITIALIZER_REGISTRY.unregister("first-edge-test")

    def test_initializer_instance_used_directly(self, small_power_law_graph):
        from repro.sampling.base import NO_EDGE
        from repro.walks.vectorized import VectorizedWalkEngine

        class LastEdge:
            name = "last-edge-inline"

            def initialize(self, graph, model, state, rng):
                lo, hi = graph.edge_range(state.current)
                return hi - 1 if hi > lo else NO_EDGE

        eng = VectorizedWalkEngine(
            small_power_law_graph, "deepwalk", sampler="mh",
            initializer=LastEdge(), seed=7,
        )
        assert eng.generate(num_walks=1, walk_length=5).token_count > 0


class TestConfigFailFast:
    def test_unknown_sampler_rejected_at_config_time(self):
        from repro.core.config import WalkConfig

        with pytest.raises(WalkError, match="registered"):
            WalkConfig(sampler="bogus")

    def test_unknown_initializer_rejected_at_config_time(self):
        from repro.core.config import WalkConfig

        with pytest.raises(WalkError, match="registered"):
            WalkConfig(initializer="bogus")

    def test_names_canonicalised(self):
        from repro.core.config import WalkConfig

        config = WalkConfig(sampler="metropolis-hastings", initializer="burnin")
        assert config.sampler == "mh"
        assert config.initializer == "burn-in"

    def test_engine_accepts_initializer_aliases(self, small_power_law_graph):
        from repro.walks.vectorized import VectorizedWalkEngine

        for alias in ("weight", "burnin"):
            eng = VectorizedWalkEngine(
                small_power_law_graph, "node2vec", sampler="mh",
                initializer=alias, p=0.5, q=2.0, seed=4,
            )
            corpus = eng.generate(num_walks=1, walk_length=5)
            assert corpus.token_count > 0


class TestUniNetWalkStats:
    def test_generate_walks_exposes_stats(self, small_unweighted_graph):
        from repro import UniNet

        net = UniNet(small_unweighted_graph, model="deepwalk", seed=5)
        assert net.last_walk is None and net.last_stats is None
        corpus = net.generate_walks(num_walks=1, walk_length=6)
        assert corpus.num_walks == small_unweighted_graph.num_nodes
        walk = net.last_walk
        assert walk.ti >= 0.0 and walk.tw >= 0.0
        assert set(walk.timings) == {"init", "walk"}
        assert walk.stats["samples"] > 0
        assert "setup_seconds" in walk.stats
        assert net.last_stats is walk.stats
        assert walk.memory_bytes >= 0
        # neither the engine (chains/tables) nor the corpus is pinned
        assert walk.engine is None and walk.corpus is None
