"""Tests for the serving subsystem: store, indexes, service, wiring."""

import numpy as np
import pytest

from repro.embedding import KeyedVectors
from repro.errors import ServingError, SpecError
from repro.serving import (
    INDEX_REGISTRY,
    BruteForceIndex,
    EmbeddingStore,
    IVFIndex,
    LRUCache,
    QueryService,
    make_index,
)


@pytest.fixture
def kv(rng):
    n, d = 300, 16
    return KeyedVectors(np.arange(n), rng.standard_normal((n, d)))


@pytest.fixture
def store(kv):
    return EmbeddingStore.from_keyed_vectors(kv)


class TestEmbeddingStore:
    def test_roundtrip_bitwise(self, kv, store, tmp_path):
        path = tmp_path / "kv.embstore"
        store.save(path)
        back = EmbeddingStore.open(path)
        assert np.array_equal(np.asarray(back.keys), kv.keys)
        # the on-disk matrix is the float32 cast of the trained vectors,
        # bit for bit, norms included
        assert np.array_equal(np.asarray(back.vectors), kv.vectors.astype(np.float32))
        assert np.array_equal(np.asarray(back.norms), store.norms)
        assert isinstance(back.vectors, np.memmap)
        assert "mmap" in repr(back) and "memory" in repr(store)

    def test_keyed_vectors_conversion_path(self, kv, tmp_path):
        path = tmp_path / "kv.embstore"
        served = kv.to_store(path)
        assert isinstance(served.vectors, np.memmap)
        back = KeyedVectors.from_store(path)
        assert np.array_equal(back.keys, kv.keys)
        assert np.allclose(back.vectors, kv.vectors, atol=1e-6)
        # in-memory conversion needs no file
        assert kv.to_store().path is None

    def test_lookup_and_missing_keys(self, store):
        assert 0 in store and 299 in store and 300 not in store
        assert np.array_equal(store.rows_for([5, 0]), [5, 0])
        assert store.vector(7).shape == (16,)
        with pytest.raises(ServingError, match="key 300"):
            store.rows_for([0, 300])

    def test_sparse_keys(self):
        keys = np.array([3, 100, 7])
        store = EmbeddingStore(keys, np.eye(3, dtype=np.float32))
        assert np.array_equal(store.rows_for([100, 3]), [1, 0])
        assert 4 not in store

    def test_empty_store_lookup_raises_serving_error(self):
        store = EmbeddingStore(
            np.array([], dtype=np.int64), np.zeros((0, 4), dtype=np.float32)
        )
        assert 0 not in store
        with pytest.raises(ServingError, match="not in the store"):
            store.rows_for([5])

    def test_open_rejects_non_store(self, tmp_path):
        bad = tmp_path / "bad.embstore"
        bad.write_bytes(b"not a store at all, definitely not 64 header bytes....")
        with pytest.raises(ServingError, match="not an embedding store|too short"):
            EmbeddingStore.open(bad)
        with pytest.raises(ServingError, match="cannot open"):
            EmbeddingStore.open(tmp_path / "absent.embstore")

    def test_open_rejects_truncated(self, store, tmp_path):
        path = store.save(tmp_path / "t.embstore")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ServingError, match="truncated"):
            EmbeddingStore.open(path)

    def test_misaligned_rejected(self):
        with pytest.raises(ServingError):
            EmbeddingStore(np.array([1]), np.zeros((2, 3), dtype=np.float32))


class TestBruteForceIndex:
    def test_matches_most_similar_exactly(self, kv, store):
        """Same keys, same order as the existing single-key loop."""
        index = BruteForceIndex(store)
        queries = kv.vectors[:25]
        rows, scores = index.topk(queries, 5)
        for i in range(25):
            expected = kv.most_similar(kv.vectors[i], topn=5)
            got = [int(store.keys[r]) for r in rows[i]]
            assert got == [k for k, __ in expected]
            assert np.allclose(scores[i], [s for __, s in expected], atol=1e-5)

    def test_chunking_invariant(self, kv, store):
        whole = BruteForceIndex(store).topk(kv.vectors[:40], 3)
        chunked = BruteForceIndex(store, query_chunk=7).topk(kv.vectors[:40], 3)
        assert np.array_equal(whole[0], chunked[0])

    def test_k_clamped_to_store(self, store):
        rows, scores = BruteForceIndex(store).topk(np.asarray(store.vectors[0]), 1000)
        assert rows.shape == (1, len(store))
        assert np.all(np.diff(scores[0]) <= 1e-6)  # sorted descending

    def test_single_vector_query(self, store):
        rows, __ = BruteForceIndex(store).topk(np.asarray(store.vectors[3]), 1)
        assert rows[0, 0] == 3  # a vector's nearest neighbour is itself


class TestIVFIndex:
    def test_exhaustive_probe_recall(self, kv, store):
        """recall@10 at nprobe == nlist is exact (>= 0.9 required)."""
        brute_rows, __ = BruteForceIndex(store).topk(kv.vectors[:50], 10)
        ivf = IVFIndex(store, nlist=16, nprobe=16, seed=1)
        ivf_rows, __ = ivf.topk(kv.vectors[:50], 10)
        hits = sum(
            len(set(b.tolist()) & set(i.tolist())) for b, i in zip(brute_rows, ivf_rows)
        )
        recall = hits / brute_rows.size
        assert recall >= 0.9
        assert recall == pytest.approx(1.0)

    def test_recall_grows_with_nprobe(self, kv, store):
        brute_rows, __ = BruteForceIndex(store).topk(kv.vectors[:50], 10)
        ivf = IVFIndex(store, nlist=16, nprobe=1, seed=1)

        def recall(nprobe):
            rows, __ = ivf.topk(kv.vectors[:50], 10, nprobe=nprobe)
            hits = sum(
                len(set(b.tolist()) & set(i.tolist())) for b, i in zip(brute_rows, rows)
            )
            return hits / brute_rows.size

        assert recall(1) <= recall(8) <= recall(16) == pytest.approx(1.0)

    def test_inverted_lists_partition_store(self, store):
        ivf = IVFIndex(store, nlist=8, seed=2)
        assert int(ivf.list_sizes().sum()) == len(store)
        assert np.array_equal(np.sort(ivf._list_rows), np.arange(len(store)))

    def test_small_store_edge_cases(self):
        store = EmbeddingStore(np.arange(3), np.eye(3, dtype=np.float32))
        ivf = IVFIndex(store, nlist=8, nprobe=8, seed=0)  # nlist clamped to n
        assert ivf.nlist <= 3
        rows, scores = ivf.topk(np.eye(3, dtype=np.float32)[0], 5)
        assert rows.shape == (1, 3)
        assert rows[0, 0] == 0

    def test_default_nlist_is_sqrt(self, store):
        assert IVFIndex(store, seed=0).nlist == round(np.sqrt(len(store)))


class TestIndexRegistry:
    def test_builtins_registered(self):
        assert "bruteforce" in INDEX_REGISTRY and "ivf" in INDEX_REGISTRY
        assert INDEX_REGISTRY.canonical("flat") == "bruteforce"
        assert INDEX_REGISTRY.canonical("ivf-flat") == "ivf"

    def test_make_index_unknown_name(self, store):
        with pytest.raises(ServingError, match="registered"):
            make_index("annoy", store)

    def test_third_party_index_plugs_in(self, store):
        from repro.serving import register_index

        @register_index("null-index")
        class NullIndex:
            def __init__(self, store):
                self.store = store

            def topk(self, queries, k):
                m = np.atleast_2d(np.asarray(queries)).shape[0]
                return np.full((m, k), -1, np.int64), np.full((m, k), -np.inf, np.float32)

        try:
            service = QueryService(store, index="null-index", cache_size=0)
            assert service.most_similar_batch([0]) == [[]]
        finally:
            INDEX_REGISTRY.unregister("null-index")


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ServingError):
            LRUCache(0)


class TestQueryService:
    def test_matches_most_similar(self, kv, store):
        service = QueryService(store, cache_size=0)
        results = service.most_similar_batch([0, 17, 205], topn=5)
        for key, result in zip([0, 17, 205], results):
            expected = kv.most_similar(key, topn=5)
            assert [k for k, __ in result] == [k for k, __ in expected]
            assert np.allclose(
                [s for __, s in result], [s for __, s in expected], atol=1e-5
            )

    def test_excludes_query_key(self, store):
        results = QueryService(store).most_similar_batch(np.arange(50), topn=10)
        for key, result in zip(range(50), results):
            assert len(result) == 10
            assert all(k != key for k, __ in result)

    def test_topn_larger_than_store(self, store):
        (result,) = QueryService(store).most_similar_batch([4], topn=10_000)
        assert len(result) == len(store) - 1  # everything but the query key

    def test_cache_hits_and_counters(self, store):
        service = QueryService(store, cache_size=8)
        first = service.most_similar_batch([1, 2], topn=3)
        again = service.most_similar_batch([2, 1], topn=3)
        assert again == first[::-1]
        stats = service.stats()
        assert stats["cache_hits"] == 2 and stats["cache_misses"] == 2
        assert stats["queries"] == 4 and stats["batches"] == 2
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["qps"] > 0 and stats["mean_batch_ms"] >= 0
        # different topn is a different cache entry
        service.most_similar_batch([1], topn=4)
        assert service.stats()["cache_misses"] == 3

    def test_caller_mutation_cannot_poison_cache(self, store):
        service = QueryService(store, cache_size=8)
        (first,) = service.most_similar_batch([1], topn=3)
        first.append(("poison", 0.0))
        (hit,) = service.most_similar_batch([1], topn=3)
        assert len(hit) == 3 and ("poison", 0.0) not in hit
        hit.clear()
        (again,) = service.most_similar_batch([1], topn=3)
        assert len(again) == 3

    def test_similarity_batch(self, kv, store):
        service = QueryService(store)
        sims = service.similarity_batch([0, 5], [5, 9])
        assert sims == pytest.approx([kv.similarity(0, 5), kv.similarity(5, 9)], abs=1e-5)
        with pytest.raises(ServingError, match="aligned"):
            service.similarity_batch([0, 1], [2])

    def test_topk_vectors_passthrough(self, kv, store):
        service = QueryService(store)
        (result,) = service.topk_vectors(kv.vectors[12], topn=1)
        assert result[0][0] == 12  # no self-exclusion for raw vectors

    def test_accepts_keyed_vectors_directly(self, kv):
        service = QueryService(kv)
        assert len(service.store) == len(kv)
        with pytest.raises(ServingError, match="EmbeddingStore or KeyedVectors"):
            QueryService(object())

    def test_missing_key_raises(self, store):
        with pytest.raises(ServingError, match="not in the store"):
            QueryService(store).most_similar_batch([999])

    def test_reset_stats(self, store):
        service = QueryService(store)
        service.most_similar_batch([0])
        service.reset_stats()
        assert service.stats()["queries"] == 0


class TestUniNetServe:
    def test_serve_after_train(self, barbell):
        from repro import UniNet

        net = UniNet(barbell, model="deepwalk", seed=3)
        net.train(num_walks=3, walk_length=10, dimensions=8, negative_sharing=True)
        service = net.serve()
        (result,) = service.most_similar_batch([0], topn=3)
        assert len(result) == 3
        assert service.stats()["store_count"] == len(net.last_embeddings)

    def test_serve_before_train_raises(self, barbell):
        from repro import UniNet

        with pytest.raises(ServingError, match="train"):
            UniNet(barbell, seed=1).serve()

    def test_serve_to_store_path(self, barbell, tmp_path):
        from repro import UniNet

        net = UniNet(barbell, model="deepwalk", seed=3)
        net.train(num_walks=3, walk_length=10, dimensions=8, negative_sharing=True)
        service = net.serve(store_path=tmp_path / "net.embstore", index="ivf", nprobe=2)
        assert isinstance(service.store.vectors, np.memmap)
        assert service.index_name == "ivf"


class TestServingSpec:
    def test_round_trip_and_validation(self):
        from repro import RunSpec

        spec = RunSpec.from_dict(
            {
                "graph": {"dataset": "amazon", "scale": 0.05},
                "serving": {"index": "ivf", "index_params": {"nprobe": 2}},
            }
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        spec.validate()
        assert spec.serving.index == "ivf"

    def test_unknown_index_rejected(self):
        from repro import RunSpec

        spec = RunSpec.from_dict(
            {"graph": {"dataset": "amazon"}, "serving": {"index": "faiss"}}
        )
        with pytest.raises(ServingError, match="registered"):
            spec.validate()

    def test_serving_requires_train(self):
        from repro import RunSpec

        spec = RunSpec.from_dict(
            {"graph": {"dataset": "amazon"}, "train": None, "serving": {}}
        )
        with pytest.raises(SpecError, match="train"):
            spec.validate()

    def test_run_records_serving_metrics(self):
        from repro import run

        report = run(
            {
                "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
                "walk": {"num_walks": 1, "walk_length": 8},
                "train": {"dimensions": 8, "negative_sharing": True},
                "serving": {"probe_queries": 16, "topn": 3},
            }
        )
        serving = report.metrics["serving"]
        assert serving["queries"] == 16 and serving["topn"] == 3
        assert serving["qps"] > 0
        assert serving["index"] == "bruteforce"


class TestServingCLI:
    def test_export_store_and_query(self, kv, tmp_path, capsys):
        from repro.cli import main

        npz = tmp_path / "vectors.npz"
        kv.save_npz(npz)
        store_path = tmp_path / "vectors.embstore"
        assert main(["export-store", "--vectors", str(npz), "--output", str(store_path)]) == 0
        assert main(
            ["query", "--store", str(store_path), "--keys", "0", "3", "--topn", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "exported 300 x 16" in out
        assert "top-2 via bruteforce" in out and "qps" in out

    def test_query_with_ivf_flags(self, kv, tmp_path, capsys):
        from repro.cli import main

        store_path = tmp_path / "v.embstore"
        kv.to_store(store_path)
        code = main(
            [
                "query", "--store", str(store_path), "--topn", "2",
                "--index", "ivf", "--nlist", "4", "--nprobe", "4",
            ]
        )
        assert code == 0
        assert "via ivf" in capsys.readouterr().out

    def test_export_store_missing_vectors(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["export-store", "--vectors", str(tmp_path / "no.npz"),
             "--output", str(tmp_path / "out.embstore")]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_query_bad_store(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.embstore"
        bad.write_bytes(b"x" * 128)
        assert main(["query", "--store", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestConcurrencySafety:
    """Regression tests for the serving-layer single-thread assumptions."""

    def test_lru_cache_safe_under_threads(self):
        from concurrent.futures import ThreadPoolExecutor

        cache = LRUCache(32)

        def hammer(seed):
            rng = np.random.default_rng(seed)
            for _ in range(2000):
                key = (int(rng.integers(0, 64)), 10)
                cache.put(key, (seed,))
                cache.get((int(rng.integers(0, 64)), 10))

        # interleaved get/put used to raise KeyError (move_to_end/read
        # pair) or overshoot capacity (insert/evict pair)
        with ThreadPoolExecutor(8) as pool:
            list(pool.map(hammer, range(8)))
        assert len(cache) <= 32

    def test_counters_exact_under_threads(self, store):
        from concurrent.futures import ThreadPoolExecutor

        service = QueryService(store, cache_size=0)

        def work(seed):
            for _ in range(50):
                service.most_similar_batch([seed % 300], topn=3)

        with ThreadPoolExecutor(8) as pool:
            list(pool.map(work, range(8)))
        assert service.counters["queries"] == 400
        assert service.counters["batches"] == 400


class TestDuplicateKeyDedup:
    """most_similar_batch must scan one row per *unique* miss key."""

    class CountingIndex:
        name = "counting"

        def __init__(self, inner):
            self.inner = inner
            self.scan_rows = []

        def topk(self, queries, k):
            self.scan_rows.append(int(np.atleast_2d(np.asarray(queries)).shape[0]))
            return self.inner.topk(queries, k)

    def test_one_scan_row_per_unique_key(self, store):
        index = self.CountingIndex(BruteForceIndex(store))
        service = QueryService(store, index=index, cache_size=0)
        results = service.most_similar_batch([5, 9, 5, 5, 9], topn=4)
        assert index.scan_rows == [2]
        assert results[0] == results[2] == results[3]
        assert results[1] == results[4]
        # each position owns an independent list: caller mutation of one
        # duplicate must not leak into the others
        results[0].append("sentinel")
        assert results[2][-1] != "sentinel"

    def test_duplicates_write_cache_once(self, store):
        service = QueryService(store, cache_size=8)
        first = service.most_similar_batch([3, 3, 3], topn=2)
        assert len(service.cache) == 1
        assert service.counters["cache_misses"] == 3
        again = service.most_similar_batch([3], topn=2)
        assert service.counters["cache_hits"] == 1
        assert again[0] == first[0]


class TestUpsertReadOnlyGuard:
    """upsert must validate every buffer before the first write."""

    def _store(self):
        rng = np.random.default_rng(5)
        kv = KeyedVectors(np.arange(20), rng.standard_normal((20, 8)))
        return EmbeddingStore.from_keyed_vectors(kv)

    @pytest.mark.parametrize("buffer", ["keys", "codes", "norms"])
    def test_any_readonly_buffer_refuses_cleanly(self, buffer):
        store = self._store()
        getattr(store, buffer).flags.writeable = False
        before_codes = np.array(store.codes)
        before_norms = np.array(store.norms)
        with pytest.raises(ServingError, match="read-only"):
            store.upsert([0], np.ones(8, dtype=np.float32))
        # nothing was partially applied
        assert np.array_equal(np.asarray(store.codes), before_codes)
        assert np.array_equal(np.asarray(store.norms), before_norms)


class TestServerWiring:
    def test_serve_server_kwarg_returns_query_server(self, barbell):
        import asyncio

        from repro import UniNet
        from repro.serving import InProcessClient, QueryServer

        net = UniNet(barbell, model="deepwalk", seed=3)
        net.train(num_walks=2, walk_length=8, dimensions=8, negative_sharing=True)
        server = net.serve(server={"max_batch": 8, "queue_size": 64})
        assert isinstance(server, QueryServer)
        assert server.max_batch == 8 and server.queue_size == 64

        async def main():
            await server.start()
            rows = await InProcessClient(server).most_similar(0, topn=2)
            await server.stop()
            return rows

        assert len(asyncio.run(main())[0]) == 2

    def test_serving_spec_server_block_validation(self):
        from repro import ServingSpec

        spec = ServingSpec(server={"max_batch": 8}).validate()
        assert spec.server == {"max_batch": 8}
        assert ServingSpec().validate().server is None
        with pytest.raises(SpecError, match="unknown serving.server knobs"):
            ServingSpec(server={"bogus": 1}).validate()
        with pytest.raises(SpecError, match="mapping"):
            ServingSpec(server="yes").validate()
