"""Tests for the M-H edge sampler and its initialization strategies."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sampling import MetropolisHastingsSampler
from repro.sampling.base import NO_EDGE
from repro.sampling.initialization import (
    BurnInInitializer,
    HighWeightInitializer,
    RandomInitializer,
    make_initializer,
)
from repro.walks.manager import ChainStore
from repro.walks.models import make_model
from repro.walks.state import WalkerState


def tv_distance(p, q):
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


@pytest.fixture
def n2v_setup(tiny_weighted_graph):
    g = tiny_weighted_graph
    model = make_model("node2vec", g, p=0.25, q=4.0)
    state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
    return g, model, state


class TestConvergence:
    @pytest.mark.parametrize("initializer", ["random", "high-weight", "burn-in"])
    def test_chain_converges_to_target(self, n2v_setup, rng, initializer):
        g, model, state = n2v_setup
        sampler = MetropolisHastingsSampler(g, model, initializer=initializer)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        lo, __ = g.edge_range(0)
        counts = np.zeros(g.degree(0))
        for __ in range(60000):
            counts[sampler.sample(g, model, state, rng) - lo] += 1
        assert tv_distance(counts / counts.sum(), exact) < 0.02

    def test_uniform_target_exact_immediately(self, small_unweighted_graph, rng):
        """For deepwalk on unweighted graphs every proposal is accepted."""
        g = small_unweighted_graph
        model = make_model("deepwalk", g)
        sampler = MetropolisHastingsSampler(g, model)
        v = int(np.argmax(g.degrees()))
        state = WalkerState(current=v)
        lo, hi = g.edge_range(v)
        counts = np.zeros(hi - lo)
        for __ in range(30000):
            counts[sampler.sample(g, model, state, rng) - lo] += 1
        uniform = np.full(hi - lo, 1.0 / (hi - lo))
        assert tv_distance(counts / counts.sum(), uniform) < 0.03

    def test_metapath_chain_stays_in_support(self, academic, rng):
        """Zero-weight (wrong-type) edges must never be emitted."""
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        sampler = MetropolisHastingsSampler(graph, model, initializer="random")
        authors = np.flatnonzero(graph.node_types == 0)
        for a in authors[:30]:
            state = WalkerState(current=int(a), step=0)
            for __ in range(20):
                off = sampler.sample(graph, model, state, rng)
                if off == NO_EDGE:
                    break
                # step 0 of APA targets type P(=1)
                assert graph.node_types[graph.targets[off]] == 1


class TestChainMechanics:
    def test_memory_is_one_slot_per_state(self, n2v_setup):
        g, model, __ = n2v_setup
        sampler = MetropolisHastingsSampler(g, model)
        assert sampler.last.size == g.num_edge_entries
        assert MetropolisHastingsSampler.memory_bytes(g, model) == 16 * g.num_edge_entries

    def test_lazy_initialization_counted(self, n2v_setup, rng):
        g, model, state = n2v_setup
        sampler = MetropolisHastingsSampler(g, model)
        assert sampler.num_initialized_states == 0
        sampler.sample(g, model, state, rng)
        assert sampler.num_initialized_states == 1
        assert sampler.stats.initializations == 1
        sampler.sample(g, model, state, rng)
        assert sampler.stats.initializations == 1  # only first touch

    def test_reset_chains(self, n2v_setup, rng):
        g, model, state = n2v_setup
        sampler = MetropolisHastingsSampler(g, model)
        sampler.sample(g, model, state, rng)
        sampler.reset_chains()
        assert sampler.num_initialized_states == 0

    def test_isolated_node_returns_no_edge(self, rng):
        from repro.graph.builder import from_edge_arrays

        g = from_edge_arrays([0], [1], num_nodes=3)
        model = make_model("deepwalk", g)
        sampler = MetropolisHastingsSampler(g, model)
        assert sampler.sample(g, model, WalkerState(current=2), rng) == NO_EDGE

    def test_shared_chain_store(self, n2v_setup, rng):
        g, model, state = n2v_setup
        store = ChainStore(g, model)
        sampler = MetropolisHastingsSampler(g, model, chain_store=store)
        sampler.sample(g, model, state, rng)
        assert store.num_initialized == 1

    def test_mismatched_chain_store_rejected(self, n2v_setup):
        g, model, __ = n2v_setup
        other_model = make_model("deepwalk", g)
        store = ChainStore(g, other_model)
        with pytest.raises(ValueError):
            MetropolisHastingsSampler(g, model, chain_store=store)


class TestInitializers:
    def test_make_initializer_names(self):
        assert isinstance(make_initializer("random"), RandomInitializer)
        assert isinstance(make_initializer("high-weight"), HighWeightInitializer)
        assert isinstance(make_initializer("burn-in"), BurnInInitializer)
        custom = RandomInitializer()
        assert make_initializer(custom) is custom

    def test_make_initializer_unknown(self):
        with pytest.raises(SamplerError):
            make_initializer("bogus")
        with pytest.raises(SamplerError):
            make_initializer(42)

    def test_high_weight_picks_argmax(self, n2v_setup, rng):
        g, model, state = n2v_setup
        init = HighWeightInitializer(sample_cap=None)
        off = init.initialize(g, model, state, rng)
        weights = model.dynamic_weights_row(g, state)
        lo, __ = g.edge_range(state.current)
        assert off - lo == int(np.argmax(weights))

    def test_high_weight_capped_returns_positive(self, small_power_law_graph, rng):
        g = small_power_law_graph
        model = make_model("deepwalk", g)
        init = HighWeightInitializer(sample_cap=4)
        v = int(np.argmax(g.degrees()))
        off = init.initialize(g, model, WalkerState(current=v), rng)
        assert off != NO_EDGE
        assert g.edge_weight_at(off) > 0

    def test_high_weight_invalid_cap(self):
        with pytest.raises(SamplerError):
            HighWeightInitializer(sample_cap=0)

    def test_random_init_avoids_zero_weight(self, academic, rng):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        init = RandomInitializer()
        authors = np.flatnonzero(graph.node_types == 0)
        for a in authors[:20]:
            state = WalkerState(current=int(a), step=0)
            off = init.initialize(graph, model, state, rng)
            if off != NO_EDGE:
                assert model.dynamic_weight(graph, state, off) > 0

    def test_burn_in_iterations_validated(self):
        with pytest.raises(SamplerError):
            BurnInInitializer(iterations=-1)

    def test_burn_in_runs(self, n2v_setup, rng):
        g, model, state = n2v_setup
        init = BurnInInitializer(iterations=50)
        off = init.initialize(g, model, state, rng)
        assert off != NO_EDGE

    def test_dead_state_returns_no_edge(self, rng):
        from repro.graph.builder import from_edge_arrays

        g = from_edge_arrays([0], [1], num_nodes=3)
        typed = g.with_node_types(np.array([0, 0, 1], dtype=np.int16))
        model = make_model("metapath2vec", typed, metapath=[0, 1, 0])
        # node 0 must move to type 1 but its only neighbour has type 0
        state = WalkerState(current=0, step=0)
        for strategy in ("random", "high-weight", "burn-in"):
            init = make_initializer(strategy)
            assert init.initialize(typed, model, state, rng) == NO_EDGE


class TestHighWeightVsRandomAccuracy:
    def test_high_weight_better_on_skewed_target(self, rng):
        """Early-sample accuracy: high-weight starts in the high-probability
        region, so short sample runs approximate skewed targets better
        (the Fig. 1 / Theorem 3 effect at the sampler level)."""
        from repro.graph.builder import from_edge_arrays

        # star-ish weighted row: one dominant edge among 20
        n = 21
        src = np.zeros(20, dtype=np.int64)
        dst = np.arange(1, 21, dtype=np.int64)
        w = np.full(20, 0.01)
        w[7] = 10.0
        g = from_edge_arrays(src, dst, w, num_nodes=n, duplicate_policy="first")
        model = make_model("deepwalk", g)
        exact = g.neighbor_weights(0)
        exact = exact / exact.sum()
        lo, __ = g.edge_range(0)
        errors = {}
        for strategy in ("random", "high-weight"):
            err = []
            for trial in range(200):
                sampler = MetropolisHastingsSampler(g, model, initializer=strategy)
                local_rng = np.random.default_rng(1000 + trial)
                counts = np.zeros(20)
                state = WalkerState(current=0)
                for __ in range(10):  # short run: init effects dominate
                    counts[sampler.sample(g, model, state, local_rng) - lo] += 1
                err.append(tv_distance(counts / counts.sum(), exact))
            errors[strategy] = np.mean(err)
        assert errors["high-weight"] < errors["random"]
