"""Tests for the self-hosted static-analysis layer (``repro lint``).

Per-rule positive/negative fixtures, the baseline round-trip, the JSON
output schema, CLI exit semantics, registry pluggability of third-party
rules, and the self-check that the repo's own ``src/`` is clean at HEAD.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LINT_REGISTRY,
    LintRule,
    load_baseline,
    register_rule,
    run_lint,
    save_baseline,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(tmp_path, files, **kwargs):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and lint them."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return run_lint([str(tmp_path)], root=tmp_path, **kwargs)


def codes(report):
    return [f.code for f in report.findings]


# ---------------------------------------------------------------------------
# RPR001 rng-discipline
# ---------------------------------------------------------------------------

def test_rpr001_flags_global_state_calls(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        import numpy as np

        def f():
            np.random.seed(0)
            return np.random.rand(3)
    """}, select=["RPR001"])
    assert codes(report) == ["RPR001", "RPR001"]
    assert "np" not in report.findings[0].message or "numpy.random.seed" in report.findings[0].message


def test_rpr001_flags_default_rng_and_aliased_imports(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from numpy.random import default_rng
        from numpy import random as npr

        def f(seed):
            a = default_rng()
            b = default_rng(seed)
            npr.shuffle([1, 2])
            return a, b
    """}, select=["RPR001"])
    assert codes(report) == ["RPR001"] * 3
    assert "fresh OS entropy" in report.findings[0].message


def test_rpr001_allows_rng_home_and_generator_methods(tmp_path):
    rng_home = """
        import numpy as np

        def as_rng(seed=None):
            return np.random.default_rng(seed)
    """
    clean = """
        from repro.utils.rng import as_rng

        def f(seed):
            rng = as_rng(seed)
            return rng.random(3)  # Generator *method*, not global state
    """
    report = lint(tmp_path, {"utils/rng.py": rng_home, "mod.py": clean},
                  select=["RPR001"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# RPR002 registry-contract
# ---------------------------------------------------------------------------

def test_rpr002_param_spec_key_and_default_mismatch(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from repro.registry import register_model

        class Walker:
            def __init__(self, graph, p=1.0):
                self.graph, self.p = graph, p
            def calculate_weight(self, state, edge_offset):
                return 1.0
            def batch_dynamic_weight(self, prev, prev_off, cur, step, offs):
                return offs

        register_model("walker", Walker, param_spec={
            "p": {"type": "float", "default": 2.0},
            "missing": {"type": "int", "default": 3},
        })
    """}, select=["RPR002"])
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2
    assert "param_spec default" in messages[0] and "2.0" in messages[0]
    assert "'missing' is not a parameter" in messages[1]


def test_rpr002_missing_protocol_method_and_alias_collision(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from repro.serving.codec import register_codec

        class HalfCodec:
            def fit(self, vectors):
                return self
            def encode(self, vectors):
                return vectors
            def state(self):
                return {}
            @classmethod
            def from_state(cls, state):
                return cls()

        register_codec("half", HalfCodec)
        register_codec("other", HalfCodec, aliases=("half",))
    """}, select=["RPR002"])
    messages = " | ".join(f.message for f in report.findings)
    assert "does not implement required method decode()" in messages
    assert "already registered" in messages


def test_rpr002_clean_registration_and_unresolvable_base_skipped(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from repro.serving.codec import Codec, register_codec

        class FullCodec:
            def fit(self, vectors):
                return self
            def encode(self, vectors):
                return vectors
            def decode(self, codes):
                return codes
            def state(self):
                return {}
            @classmethod
            def from_state(cls, state):
                return cls()

        class Derived(Codec):  # base outside the linted set: skip
            pass

        register_codec("full", FullCodec)
        register_codec("derived", Derived)
    """}, select=["RPR002"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# RPR003 signature-drift
# ---------------------------------------------------------------------------

def test_rpr003_on_delta_canonical_protocol(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        class Legacy:
            def on_delta(self, graph, delta=None):
                return {}

        class NeedsModel:
            def on_delta(self, plan, model):
                return {}

        class Canonical:
            def on_delta(self, plan, model=None, *, state_mask=None):
                return {}
    """}, select=["RPR003"])
    messages = " | ".join(f.message for f in report.findings)
    assert "Legacy.on_delta" in messages and "'graph'" in messages
    assert "NeedsModel.on_delta" in messages and "optional for base callers" in messages
    assert "Canonical" not in messages


def test_rpr003_override_drift_vs_base(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        class Base:
            def step(self, walkers, rng):
                return walkers
            def encode(self, vectors):
                return vectors

        class Drifted(Base):
            def step(self, walkers, rng, budget):  # new required param
                return walkers

        class Compatible(Base):
            def encode(self, vectors, *, chunk=1024):  # defaulted extras OK
                return vectors
    """}, select=["RPR003"])
    assert len(report.findings) == 1
    assert "Drifted.step" in report.findings[0].message
    assert "'budget'" in report.findings[0].message


def test_rpr003_renamed_positional_flagged(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        class Base:
            def sample(self, graph, model, state, rng):
                return 0

        class Renamed(Base):
            def sample(self, graph, model, walker_state, rng):
                return 0
    """}, select=["RPR003"])
    assert len(report.findings) == 1
    assert "keyword callers break" in report.findings[0].message


# ---------------------------------------------------------------------------
# RPR004 error-taxonomy
# ---------------------------------------------------------------------------

def test_rpr004_builtin_raise_and_taxonomy_raise(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from repro.errors import ReproError

        class MyError(ReproError):
            pass

        class OtherError(RuntimeError):
            pass

        def f(x):
            if x < 0:
                raise ValueError("bad x")
            if x == 0:
                raise MyError("taxonomy ok")
            raise OtherError("outside the taxonomy")
    """}, select=["RPR004"])
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 3
    assert "class OtherError does not derive from ReproError" in messages[0]
    assert "raises OtherError" in messages[1]
    assert "raises builtin ValueError" in messages[2]


def test_rpr004_connection_builtins_and_error_class_taxonomy(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        from repro.errors import ReproError

        class WireError(ReproError):
            pass

        class TransportError:
            pass

        class Unrelated(SomeExternalBase):
            pass

        def f(closed):
            if closed:
                raise ConnectionResetError("peer gone")
            raise BrokenPipeError("half-open")
    """}, select=["RPR004"])
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 3
    # TransportError joins nothing; WireError is fine; Unrelated has an
    # unresolvable base (derives_from -> None) and is not named *Error,
    # so neither side of the check fires on it.
    assert "class TransportError does not derive from ReproError" in messages[0]
    assert "raises builtin BrokenPipeError" in messages[1]
    assert "raises builtin ConnectionResetError" in messages[2]


def test_rpr004_broad_excepts(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        def swallow():
            try:
                risky()
            except Exception:
                pass

        def transport():
            try:
                risky()
            except Exception:
                raise

        def bare():
            try:
                risky()
            except:
                pass
    """}, select=["RPR004"])
    by_sev = {f.message.split()[0]: f.severity for f in report.findings}
    assert len(report.findings) == 3
    assert sum(f.severity == "error" for f in report.findings) == 2  # swallow + bare
    assert sum(f.severity == "warn" for f in report.findings) == 1   # transport


def test_rpr004_redundant_except_tuple_in_connection_modules(tmp_path):
    # the subclass-shadowed-by-base tuple is the historical bug class of
    # the connection layer (`except (OSError, BrokenPipeError)`) — flagged
    # there, left alone everywhere else
    source = """
        def shutdown(sock):
            try:
                sock.close()
            except (OSError, BrokenPipeError):
                pass

        def drain(sock):
            try:
                sock.close()
            except (ConnectionResetError, TimeoutError):
                pass  # distinct OSError leaves: no redundancy
    """
    report = lint(
        tmp_path / "conn", {"sharding/transport.py": source}, select=["RPR004"]
    )
    assert len(report.findings) == 1
    assert "BrokenPipeError alongside its base class OSError" in report.findings[0].message
    assert report.findings[0].severity == "error"
    # the same code outside the connection modules is not this rule's business
    report = lint(tmp_path / "other", {"walks/stepper.py": source}, select=["RPR004"])
    assert codes(report) == []


def test_rpr004_dunder_protocol_exempt_and_suppression(tmp_path):
    report = lint(tmp_path, {"mod.py": """
        def __getattr__(name):
            raise AttributeError(name)  # required by the protocol

        def f():
            raise TypeError("suppressed")  # repro-lint: ignore[RPR004]

        def g():
            raise TypeError("not suppressed")
    """}, select=["RPR004"])
    assert len(report.findings) == 1
    assert report.findings[0].line == 9


# ---------------------------------------------------------------------------
# RPR005 serialization-dtype
# ---------------------------------------------------------------------------

def test_rpr005_dtype_required_in_format_modules_only(tmp_path):
    bad = """
        import numpy as np

        def read(blob, n):
            a = np.frombuffer(blob)
            b = np.zeros(n)
            c = np.zeros(n, dtype=np.int64)
            d = np.full(n, -1, dtype=np.float32)
            return a, b, c, d
    """
    report = lint(tmp_path, {"serving/store.py": bad, "other/helpers.py": bad},
                  select=["RPR005"])
    assert codes(report) == ["RPR005", "RPR005"]
    assert all(f.path.endswith("serving/store.py") for f in report.findings)
    assert report.findings[0].line == 5 and "frombuffer" in report.findings[0].message
    assert report.findings[1].line == 6 and "zeros" in report.findings[1].message


# ---------------------------------------------------------------------------
# RPR006 hot-path-purity
# ---------------------------------------------------------------------------

def test_rpr006_warns_on_per_element_python_in_kernels(tmp_path):
    kernel = """
        import numpy as np

        def hot(arr):
            out = arr.tolist()
            for i in range(arr.size):
                out[i] += 1
            for a, b in zip(arr, arr):
                pass
            for chunk in np.array_split(arr, 4):  # coarse-grained: fine
                pass
            return out
    """
    report = lint(tmp_path, {"walks/vectorized.py": kernel, "walks/other.py": kernel},
                  select=["RPR006"])
    assert codes(report) == ["RPR006"] * 3
    assert all(f.severity == "warn" for f in report.findings)
    assert all(f.path.endswith("vectorized.py") for f in report.findings)
    # warnings alone never fail a baseline-less run
    assert not report.failed(baseline_mode=False)
    assert report.failed(baseline_mode=True)


def test_rpr006_covers_the_kernels_package(tmp_path):
    kernel = """
        def hot(arr):
            for i in range(arr.size):
                arr[i] += 1
    """
    report = lint(
        tmp_path,
        {"walks/kernels/numpy_backend.py": kernel, "walks/helpers.py": kernel},
        select=["RPR006"],
    )
    assert codes(report) == ["RPR006"]
    assert report.findings[0].path.endswith("numpy_backend.py")


def test_rpr006_exempts_jitted_functions(tmp_path):
    report = lint(tmp_path, {"walks/kernels/numba_backend.py": """
        from numba import njit, prange

        @njit(cache=True)
        def compiled(arr):
            for i in prange(arr.size):
                arr[i] += 1

        @njit
        def also_compiled(arr):
            return arr.tolist()

        def interpreted(arr):
            for i in range(arr.size):
                arr[i] += 1
    """}, select=["RPR006"])
    assert codes(report) == ["RPR006"]
    assert report.findings[0].line == 14  # only the undecorated loop


# ---------------------------------------------------------------------------
# baseline mechanism
# ---------------------------------------------------------------------------

def test_baseline_round_trip_and_counts(tmp_path):
    files = {"walks/vectorized.py": """
        def hot(arr):
            a = arr.tolist()
            b = arr.tolist()
            return a, b
    """}
    report = lint(tmp_path, files, select=["RPR006"])
    assert len(report.findings) == 2

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings)
    loaded = load_baseline(baseline_path)
    assert sum(loaded.values()) == 2

    # identical run: everything baselined, nothing new
    again = lint(tmp_path, {}, select=["RPR006"], baseline=loaded)
    assert again.findings == [] and len(again.baselined) == 2
    assert not again.failed(baseline_mode=True)

    # a third occurrence exceeds the recorded count -> new finding
    (tmp_path / "walks" / "vectorized.py").write_text(textwrap.dedent("""
        def hot(arr):
            a = arr.tolist()
            b = arr.tolist()
            c = arr.tolist()
            return a, b, c
    """))
    third = lint(tmp_path, {}, select=["RPR006"], baseline=loaded)
    assert len(third.findings) == 1 and len(third.baselined) == 2
    assert third.failed(baseline_mode=True)


def test_baseline_rejects_garbage(tmp_path):
    from repro.analysis import AnalysisError

    path = tmp_path / "b.json"
    path.write_text("not json")
    with pytest.raises(AnalysisError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(AnalysisError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON schema, baseline flags
# ---------------------------------------------------------------------------

def test_cli_exit_codes_and_text_output(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("import numpy as np\nnp.random.seed(0)\n")
    code = cli_main(["lint", "mod.py"])
    out = capsys.readouterr().out
    assert code == 1
    assert "mod.py:2:1: RPR001 error:" in out

    (tmp_path / "mod.py").write_text("x = 1\n")
    assert cli_main(["lint", "mod.py"]) == 0


def test_cli_json_schema(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("import numpy as np\nnp.random.seed(0)\n")
    code = cli_main(["lint", "mod.py", "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["version"] == 1 and doc["exit"] == 1
    assert doc["files"] == 1 and len(doc["rules"]) == 6
    (finding,) = doc["findings"]
    assert set(finding) == {"code", "rule", "severity", "path", "line", "col", "message"}
    assert finding["code"] == "RPR001" and finding["line"] == 2


def test_cli_update_baseline_then_enforce(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    kernel = tmp_path / "walks" / "vectorized.py"
    kernel.parent.mkdir()
    kernel.write_text("def f(a):\n    return a.tolist()\n")
    assert cli_main(["lint", ".", "--baseline", "b.json", "--update-baseline"]) == 0
    capsys.readouterr()
    # accepted: warn is baselined, exit 0
    assert cli_main(["lint", ".", "--baseline", "b.json"]) == 0
    # new debt: a second tolist goes beyond the baseline -> exit 1
    kernel.write_text("def f(a):\n    return a.tolist(), a.tolist()\n")
    assert cli_main(["lint", ".", "--baseline", "b.json"]) == 1


def test_cli_select_unknown_rule_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("x = 1\n")
    assert cli_main(["lint", "mod.py", "--select", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert cli_main(["lint", "does-not-exist.py"]) == 2


# ---------------------------------------------------------------------------
# registry pluggability
# ---------------------------------------------------------------------------

def test_third_party_rule_runs_through_cli(tmp_path, capsys, monkeypatch):
    @register_rule("no-print", code="RPX001")
    class NoPrintRule(LintRule):
        severity = "error"

        def check_module(self, module, project):
            for node in module.walk():
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    yield self.finding(module, node, "print() in library code")

    try:
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text('print("hi")\n')
        code = cli_main(["lint", "mod.py", "--select", "RPX001", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        (finding,) = doc["findings"]
        assert finding["code"] == "RPX001" and finding["rule"] == "no-print"
        # selectable by name too, and ignorable
        assert cli_main(["lint", "mod.py", "--select", "no-print"]) == 1
        assert cli_main(["lint", "mod.py", "--ignore", "no-print"]) == 0
    finally:
        LINT_REGISTRY.unregister("no-print")


def test_register_rule_rejects_non_rules():
    from repro.analysis import AnalysisError

    with pytest.raises(AnalysisError):
        @register_rule("bogus", code="RPX999")
        class NotARule:
            pass


# ---------------------------------------------------------------------------
# self-check: the repo is clean at HEAD
# ---------------------------------------------------------------------------

def test_repo_src_is_clean_at_head():
    baseline = load_baseline(REPO_ROOT / ".lint-baseline.json")
    report = run_lint(["src"], root=REPO_ROOT, baseline=baseline)
    assert report.parse_errors == []
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"new lint findings at HEAD:\n{rendered}"
    # and even without the baseline there must be zero *errors*
    bare = run_lint(["src"], root=REPO_ROOT)
    assert bare.errors == [], "\n".join(f.render() for f in bare.errors)


def test_repo_injections_are_caught(tmp_path):
    """The acceptance-criteria injections each produce the named rule."""
    store = (REPO_ROOT / "src/repro/serving/store.py").read_text()
    assert "np.frombuffer(blob, dtype=dtype" in store
    broken = store.replace(
        "np.frombuffer(blob, dtype=dtype, count=count, offset=offset)",
        "np.frombuffer(blob)", 1,
    )
    files = {
        "serving/store.py": broken,
        "walks/models/__init__.py": (
            "from repro.registry import register_model\n\n"
            "class M:\n"
            "    def __init__(self, graph):\n"
            "        self.graph = graph\n"
            "    def calculate_weight(self, state, edge_offset):\n"
            "        return 1.0\n"
            "    def batch_dynamic_weight(self, prev, prev_off, cur, step, offs):\n"
            "        return offs\n\n"
            'register_model("m", M, param_spec={"ghost": {"default": 1}})\n'
        ),
        "graph/stats.py": "import numpy as np\nnp.random.seed(0)\n",
    }
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    report = run_lint([str(tmp_path)], root=tmp_path)
    hit = {f.code for f in report.errors}
    assert {"RPR001", "RPR002", "RPR005"} <= hit
    assert report.failed(baseline_mode=False)
