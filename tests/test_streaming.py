"""Streaming shard pipeline: bounded-memory walk→train.

Covers the four layers of the streaming refactor:

* trainer — ``build_vocab`` / ``partial_fit`` / ``finalize`` parity with
  monolithic :meth:`Word2Vec.fit` for *any* shard boundaries;
* walks — ``generate_stream`` ≡ ``generate``, ``WalkShardStream``
  semantics, corpus memory accounting;
* parallel — seed-for-seed determinism regardless of worker count and
  shard arrival order;
* core — ``StreamingConfig`` plumbing through the pipeline, ``UniNet``,
  ``RunSpec`` and the CLI, overlap equivalence, bounded peak bytes.
"""

import json

import numpy as np
import pytest

from repro.core.config import StreamingConfig, TrainConfig, WalkConfig
from repro.core.pipeline import train_pipeline
from repro.embedding import Word2Vec
from repro.errors import TrainingError, WalkError
from repro.walks import (
    VectorizedWalkEngine,
    WalkCorpus,
    WalkShardStream,
    parallel_generate,
    parallel_generate_stream,
)


@pytest.fixture
def graph_and_corpus(small_unweighted_graph):
    engine = VectorizedWalkEngine(small_unweighted_graph, "deepwalk", sampler="mh", seed=11)
    corpus = engine.generate(num_walks=3, walk_length=16)
    return small_unweighted_graph, corpus


# ---------------------------------------------------------------------------
# trainer: streamed == monolithic, bitwise
# ---------------------------------------------------------------------------
class TestStreamedTrainingParity:
    @pytest.mark.parametrize("shard_walks", [1, 7, 100, 10_000])
    def test_any_shard_count_matches_fit(self, graph_and_corpus, shard_walks):
        graph, corpus = graph_and_corpus
        kv_mono = Word2Vec(dimensions=12, epochs=2, seed=5, block_walks=64).fit(
            corpus, num_nodes=graph.num_nodes
        )
        stream = WalkShardStream.from_corpus(
            corpus, num_nodes=graph.num_nodes, shard_walks=shard_walks
        )
        kv_stream = Word2Vec(dimensions=12, epochs=2, seed=5, block_walks=64).fit_stream(stream)
        assert np.array_equal(kv_mono.vectors, kv_stream.vectors)
        assert np.array_equal(kv_mono.keys, kv_stream.keys)

    def test_ragged_shard_widths_match_fit(self, graph_and_corpus):
        """Shards re-padded to different widths still train identically."""
        graph, corpus = graph_and_corpus
        kv_mono = Word2Vec(dimensions=8, seed=3, block_walks=50).fit(
            corpus, num_nodes=graph.num_nodes
        )
        shards = []
        for lo in range(0, corpus.num_walks, 83):
            lengths = corpus.lengths[lo : lo + 83]
            width = int(lengths.max())  # trim each shard to its own width
            shards.append(WalkCorpus(corpus.walks[lo : lo + 83, :width], lengths))
        w2v = Word2Vec(dimensions=8, seed=3, block_walks=50)
        w2v.build_vocab(
            corpus.node_frequencies(graph.num_nodes), total_walks=corpus.num_walks
        )
        for shard in shards:
            w2v.partial_fit(shard)
        assert np.array_equal(kv_mono.vectors, w2v.finalize().vectors)

    def test_subsample_and_cbow_parity(self, graph_and_corpus):
        graph, corpus = graph_and_corpus
        kwargs = dict(dimensions=8, seed=9, block_walks=37, subsample=1e-2, mode="cbow")
        kv_mono = Word2Vec(**kwargs).fit(corpus, num_nodes=graph.num_nodes)
        stream = WalkShardStream.from_corpus(
            corpus, num_nodes=graph.num_nodes, shard_walks=29
        )
        kv_stream = Word2Vec(**kwargs).fit_stream(stream)
        assert np.array_equal(kv_mono.vectors, kv_stream.vectors)

    def test_partial_fit_requires_build_vocab(self, graph_and_corpus):
        __, corpus = graph_and_corpus
        with pytest.raises(TrainingError):
            Word2Vec(dimensions=4).partial_fit(corpus)
        with pytest.raises(TrainingError):
            Word2Vec(dimensions=4).finalize()

    def test_short_walk_stream_rejected(self):
        corpus = WalkCorpus.from_lists([[0], [1]])
        w2v = Word2Vec(dimensions=4).build_vocab(np.array([1, 1]))
        w2v.partial_fit(corpus)
        with pytest.raises(TrainingError):
            w2v.finalize()

    def test_buffered_bytes_tracks_pending_rows(self, graph_and_corpus):
        __, corpus = graph_and_corpus
        w2v = Word2Vec(dimensions=4, block_walks=10_000).build_vocab(
            corpus.node_frequencies(200), total_walks=corpus.num_walks
        )
        assert w2v.buffered_bytes() == 0
        w2v.partial_fit(corpus)  # smaller than one block: everything buffers
        assert w2v.buffered_bytes() == corpus.nbytes


# ---------------------------------------------------------------------------
# walks: stream generation and shard-stream protocol
# ---------------------------------------------------------------------------
class TestGenerateStream:
    def test_wave_shards_reproduce_generate(self, small_unweighted_graph):
        mono = VectorizedWalkEngine(
            small_unweighted_graph, "deepwalk", sampler="mh", seed=4
        ).generate(num_walks=3, walk_length=10)
        shards = list(
            VectorizedWalkEngine(
                small_unweighted_graph, "deepwalk", sampler="mh", seed=4
            ).generate_stream(num_walks=3, walk_length=10)
        )
        assert len(shards) == 3  # one per wave
        merged = WalkCorpus.merge(shards)
        assert np.array_equal(mono.walks, merged.walks)
        assert np.array_equal(mono.lengths, merged.lengths)

    def test_shard_walks_bounds_shard_size(self, small_unweighted_graph):
        shards = list(
            VectorizedWalkEngine(
                small_unweighted_graph, "deepwalk", sampler="mh", seed=4
            ).generate_stream(num_walks=2, walk_length=8, shard_walks=33)
        )
        assert all(s.num_walks <= 33 for s in shards)
        total = sum(s.num_walks for s in shards)
        assert total == 2 * small_unweighted_graph.num_nodes

    def test_invalid_args_rejected(self, small_unweighted_graph):
        engine = VectorizedWalkEngine(small_unweighted_graph, "deepwalk", seed=1)
        with pytest.raises(WalkError):
            list(engine.generate_stream(num_walks=0))
        with pytest.raises(WalkError):
            list(engine.generate_stream(shard_walks=0))


class TestWalkShardStream:
    def test_reiterable_counts_then_trains(self, graph_and_corpus):
        graph, corpus = graph_and_corpus
        stream = WalkShardStream.from_corpus(
            corpus, num_nodes=graph.num_nodes, shard_walks=50
        )
        assert stream.reiterable
        counts = stream.node_frequencies()
        assert np.array_equal(counts, corpus.node_frequencies(graph.num_nodes))
        # second pass still works
        assert stream.materialize().token_count == corpus.token_count

    def test_one_shot_stream_guards_reuse(self, graph_and_corpus):
        __, corpus = graph_and_corpus
        stream = WalkShardStream([corpus], num_nodes=200)
        assert not stream.reiterable
        assert sum(s.num_walks for s in stream) == corpus.num_walks
        with pytest.raises(WalkError):
            list(stream)

    def test_fit_stream_without_counts_needs_protocol(self, graph_and_corpus):
        __, corpus = graph_and_corpus
        with pytest.raises(TrainingError):
            Word2Vec(dimensions=4).fit_stream(iter([corpus]))

    def test_fit_stream_one_shot_without_counts_rejected_upfront(self, graph_and_corpus):
        """The counting pass must not silently consume a one-shot stream."""
        __, corpus = graph_and_corpus
        stream = WalkShardStream([corpus], num_nodes=200)
        with pytest.raises(TrainingError, match="re-iterable"):
            Word2Vec(dimensions=4).fit_stream(stream)
        # the stream was not consumed by the failed call
        assert sum(s.num_walks for s in stream) == corpus.num_walks

    def test_fit_stream_one_shot_with_counts_ok(self, graph_and_corpus):
        graph, corpus = graph_and_corpus
        kv = Word2Vec(dimensions=4, seed=1).fit_stream(
            WalkShardStream([corpus], num_nodes=graph.num_nodes),
            counts=corpus.node_frequencies(graph.num_nodes),
            total_walks=corpus.num_walks,
        )
        assert len(kv) > 0


class TestCorpusMemoryAccounting:
    def test_nbytes(self):
        corpus = WalkCorpus.from_lists([[0, 1, 2], [1, 2]])
        assert corpus.nbytes == corpus.walks.nbytes + corpus.lengths.nbytes

    def test_merge_single_is_passthrough(self):
        corpus = WalkCorpus.from_lists([[0, 1, 2]])
        assert WalkCorpus.merge([corpus]) is corpus

    def test_merge_same_width_and_ragged(self):
        a = WalkCorpus.from_lists([[0, 1, 2], [2, 1, 0]])
        b = WalkCorpus.from_lists([[1, 2, 0]])
        c = WalkCorpus.from_lists([[0, 1]])
        same = WalkCorpus.merge([a, b])
        assert same.num_walks == 3 and same.walks.shape[1] == 3
        ragged = WalkCorpus.merge([a, c])
        assert ragged.num_walks == 3 and ragged.walks.shape[1] == 3
        assert ragged.lengths.tolist() == [3, 3, 2]

    def test_walk_result_carries_corpus_bytes(self, small_unweighted_graph):
        from repro.core.pipeline import generate_walk_result

        result = generate_walk_result(
            small_unweighted_graph, "deepwalk", WalkConfig(num_walks=1, walk_length=6),
            seed=3,
        )
        assert result.corpus_bytes == result.corpus.nbytes
        assert result.corpus_bytes > 0


# ---------------------------------------------------------------------------
# parallel: worker-count and arrival-order determinism
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    def test_same_seed_same_corpus_any_worker_count(self, small_unweighted_graph):
        corpora = [
            parallel_generate(
                small_unweighted_graph, "deepwalk",
                num_walks=1, walk_length=8, num_workers=workers, seed=13,
            )
            for workers in (1, 2, 3)
        ]
        for other in corpora[1:]:
            assert np.array_equal(corpora[0].walks, other.walks)
            assert np.array_equal(corpora[0].lengths, other.lengths)

    def test_arrival_order_does_not_change_merge(self, small_unweighted_graph):
        pairs = list(
            parallel_generate_stream(
                small_unweighted_graph, "deepwalk",
                num_walks=1, walk_length=8, num_workers=1, seed=13, shard_walks=20,
            )
        )
        assert len(pairs) > 1
        # merge in reversed arrival order, sorting by shard index — the
        # canonical corpus must come out regardless
        reordered = sorted(reversed(pairs), key=lambda p: p[0])
        merged = WalkCorpus.merge([c for __, c in reordered])
        reference = parallel_generate(
            small_unweighted_graph, "deepwalk",
            num_walks=1, walk_length=8, num_workers=2, seed=13, shard_walks=20,
        )
        assert np.array_equal(merged.walks, reference.walks)

    def test_stream_in_order_yields_plan_order(self, small_unweighted_graph):
        indices = [
            index
            for index, __ in parallel_generate_stream(
                small_unweighted_graph, "deepwalk",
                num_walks=1, walk_length=6, num_workers=2, seed=3,
                shard_walks=25, in_order=True,
            )
        ]
        assert indices == sorted(indices)

    def test_shard_walks_validated(self, small_unweighted_graph):
        with pytest.raises(WalkError):
            list(
                parallel_generate_stream(
                    small_unweighted_graph, "deepwalk", seed=1, shard_walks=0
                )
            )


# ---------------------------------------------------------------------------
# core: config, pipeline, spec, CLI
# ---------------------------------------------------------------------------
class TestStreamingConfig:
    def test_validation(self):
        with pytest.raises(WalkError):
            StreamingConfig(shard_walks=0)
        with pytest.raises(WalkError):
            StreamingConfig(max_corpus_bytes=0)
        with pytest.raises(WalkError):
            StreamingConfig(shard_walks=10, max_corpus_bytes=100)
        with pytest.raises(WalkError):
            StreamingConfig(vocab="census")
        with pytest.raises(WalkError):
            StreamingConfig(queue_shards=0)

    def test_resolve_shard_walks(self):
        assert StreamingConfig(shard_walks=7).resolve_shard_walks(80, 1000) == 7
        # 8 bytes * (length + 1) per walk
        cfg = StreamingConfig(max_corpus_bytes=8 * 81 * 5)
        assert cfg.resolve_shard_walks(80, 1000) == 5
        assert StreamingConfig().resolve_shard_walks(80, 1000) == 1000


class TestStreamingPipeline:
    @pytest.fixture
    def configs(self):
        return WalkConfig(num_walks=2, walk_length=12), TrainConfig(dimensions=8, epochs=1)

    def test_peak_bytes_bounded_by_shard(self, small_unweighted_graph, configs):
        walk_cfg, train_cfg = configs
        mono = train_pipeline(small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=21)
        streamed = train_pipeline(
            small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=21,
            streaming=StreamingConfig(shard_walks=25),
        )
        assert streamed.streaming and streamed.corpus is None
        assert streamed.corpus_summary == mono.corpus_summary
        assert mono.peak_corpus_bytes == mono.corpus_summary["num_walks"] * 13 * 8
        # shard + trainer block, each ~25 walks — far under the full corpus
        assert streamed.peak_corpus_bytes < mono.peak_corpus_bytes / 3
        assert len(streamed.embeddings) == len(mono.embeddings)

    def test_exact_vocab_wave_shards_reproduce_monolithic(
        self, small_unweighted_graph, configs
    ):
        walk_cfg, train_cfg = configs
        mono = train_pipeline(small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=21)
        streamed = train_pipeline(
            small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=21,
            streaming=StreamingConfig(vocab="exact", block_walks=8192),
        )
        assert np.array_equal(mono.embeddings.vectors, streamed.embeddings.vectors)

    def test_overlap_matches_sequential(self, small_unweighted_graph, configs):
        walk_cfg, train_cfg = configs
        results = [
            train_pipeline(
                small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=8,
                streaming=StreamingConfig(shard_walks=30, overlap=overlap),
            )
            for overlap in (False, True)
        ]
        assert np.array_equal(
            results[0].embeddings.vectors, results[1].embeddings.vectors
        )

    def test_consumer_failure_reaps_producer_thread(
        self, small_unweighted_graph, configs, monkeypatch
    ):
        """A mid-stream trainer crash must not strand the walk producer."""
        import threading

        walk_cfg, train_cfg = configs
        calls = {"n": 0}
        original = Word2Vec.partial_fit

        def failing(self, shard):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("consumer died")
            return original(self, shard)

        monkeypatch.setattr(Word2Vec, "partial_fit", failing)
        with pytest.raises(RuntimeError, match="consumer died"):
            train_pipeline(
                small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=1,
                streaming=StreamingConfig(shard_walks=20, overlap=True, queue_shards=1),
            )
        assert not any(t.name == "walk-producer" for t in threading.enumerate())

    def test_skip_learning_ignores_streaming(self, small_unweighted_graph, configs):
        walk_cfg, train_cfg = configs
        result = train_pipeline(
            small_unweighted_graph, "deepwalk", walk_cfg, train_cfg, seed=1,
            skip_learning=True, streaming=StreamingConfig(shard_walks=10),
        )
        assert result.corpus is not None and not result.streaming

    def test_uninet_streaming_true_uses_defaults(self, small_unweighted_graph):
        from repro import UniNet

        net = UniNet(small_unweighted_graph, model="deepwalk", seed=3)
        result = net.train(num_walks=1, walk_length=8, dimensions=8, streaming=True)
        assert result.streaming
        assert result.corpus_summary["num_walks"] == small_unweighted_graph.num_nodes


class TestStreamingSpec:
    def test_round_trip(self):
        from repro.core.spec import RunSpec

        spec = RunSpec.from_dict(
            {
                "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
                "walk": {"num_walks": 1, "walk_length": 8},
                "streaming": {"shard_walks": 64, "overlap": True},
            }
        )
        assert spec.streaming.shard_walks == 64 and spec.streaming.overlap
        back = RunSpec.from_dict(json.loads(spec.to_json()))
        assert back == spec
        assert RunSpec.from_dict({"model": "deepwalk"}).streaming is None

    def test_unknown_streaming_key_rejected(self):
        from repro.core.spec import RunSpec
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            RunSpec.from_dict({"streaming": {"shards": 3}})

    def test_run_report_surfaces_peak_bytes(self):
        from repro.core.runner import run

        report = run(
            {
                "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
                "walk": {"num_walks": 1, "walk_length": 8},
                "train": {"dimensions": 8},
                "streaming": {"shard_walks": 32},
            }
        )
        assert report.corpus_summary["peak_corpus_bytes"] > 0
        assert report.corpus_summary["token_count"] > 0
        assert report.corpus is None


class TestStreamingCli:
    def test_train_stream_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "vec.npz"
        code = main(
            [
                "train", "--dataset", "amazon", "--scale", "0.05", "--seed", "2",
                "--num-walks", "1", "--walk-length", "8", "--dimensions", "8",
                "--stream", "--shard-walks", "32", "--overlap",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "streamed" in capsys.readouterr().out
