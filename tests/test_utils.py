"""Tests for repro.utils: rng plumbing, timers, validation helpers."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import PhaseTimer, Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(7).integers(1 << 30) == as_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = as_rng(seq).integers(1 << 30)
        b = as_rng(np.random.SeedSequence(5)).integers(1 << 30)
        assert a == b

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).random(8)
        draws_b = as_rng(2).random(8)
        assert not np.allclose(draws_a, draws_b)


class TestSpawnRngs:
    def test_count_and_type(self):
        rngs = spawn_rngs(3, 5)
        assert len(rngs) == 5
        assert all(isinstance(r, np.random.Generator) for r in rngs)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(3, 2)
        assert not np.allclose(a.random(16), b.random(16))

    def test_deterministic_given_seed(self):
        first = [r.random() for r in spawn_rngs(9, 3)]
        second = [r.random() for r in spawn_rngs(9, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(4)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []


class TestTimers:
    def test_timer_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.005)
        with timer.phase("a"):
            time.sleep(0.005)
        with timer.phase("b"):
            pass
        assert timer.seconds("a") >= 0.009
        assert timer.seconds("missing") == 0.0
        assert timer.total() == pytest.approx(
            timer.seconds("a") + timer.seconds("b")
        )

    def test_phase_timer_manual_add(self):
        timer = PhaseTimer()
        timer.add("x", 1.5)
        timer.add("x", 0.5)
        assert timer.seconds("x") == 2.0
        assert timer.as_dict()["total"] == 2.0


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 0.1)

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_check_fraction_open_interval(self):
        check_fraction("f", 0.5)
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0)

    def test_check_fraction_inclusive(self):
        check_fraction("f", 0.0, inclusive=True)
        check_fraction("f", 1.0, inclusive=True)
        with pytest.raises(ValueError):
            check_fraction("f", 1.1, inclusive=True)

    def test_probability_vector_valid(self):
        out = check_probability_vector("p", [0.25, 0.75])
        assert out.dtype == np.float64

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [-0.1, 1.1])

    def test_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.4, 0.4])

    def test_probability_vector_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [])
