"""Tests for metrics, the OVR classifier and the evaluation protocols."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.evaluation import (
    LogisticRegressionOVR,
    accuracy,
    classification_sweep,
    evaluate_split,
    link_prediction_experiment,
    macro_f1,
    micro_f1,
    roc_auc,
    top_k_predictions,
)
from repro.evaluation.linkpred import edge_features, sample_non_edges, split_edges


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([[1, 0], [0, 1]], dtype=bool)
        assert micro_f1(y, y) == 1.0
        assert macro_f1(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([[1, 0], [1, 0]], dtype=bool)
        pred = ~y
        assert micro_f1(y, pred) == 0.0
        assert accuracy(y, pred) == 0.0

    def test_known_values(self):
        y_true = np.array([[1, 0, 0], [1, 1, 0], [0, 0, 1]], dtype=bool)
        y_pred = np.array([[1, 0, 0], [1, 0, 1], [0, 0, 1]], dtype=bool)
        # pooled: tp=3, fp=1, fn=1
        assert micro_f1(y_true, y_pred) == pytest.approx(6 / 8)
        # per class: c0 f1=1, c1 f1=0, c2 tp=1 fp=1 -> f1=2/3
        assert macro_f1(y_true, y_pred) == pytest.approx((1 + 0 + 2 / 3) / 3)

    def test_micro_ge_zero_macro_sensitive_to_rare(self):
        y_true = np.zeros((10, 2), dtype=bool)
        y_true[:, 0] = True
        y_true[0, 1] = True
        y_pred = np.zeros_like(y_true)
        y_pred[:, 0] = True
        assert micro_f1(y_true, y_pred) > macro_f1(y_true, y_pred)

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            micro_f1(np.zeros((2, 2), dtype=bool), np.zeros((3, 2), dtype=bool))

    def test_roc_auc_perfect_and_inverted(self):
        y = np.array([0, 0, 1, 1], dtype=bool)
        assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_roc_auc_random_is_half(self, rng):
        y = rng.random(2000) < 0.5
        scores = rng.random(2000)
        assert abs(roc_auc(y, scores) - 0.5) < 0.05

    def test_roc_auc_ties_averaged(self):
        y = np.array([0, 1], dtype=bool)
        assert roc_auc(y, np.array([0.5, 0.5])) == 0.5

    def test_roc_auc_degenerate(self):
        assert roc_auc(np.array([True, True]), np.array([0.1, 0.2])) == 0.5


class TestTopK:
    def test_selects_highest_scores(self):
        scores = np.array([[0.1, 0.9, 0.5], [0.7, 0.2, 0.3]])
        pred = top_k_predictions(scores, np.array([2, 1]))
        assert pred[0].tolist() == [False, True, True]
        assert pred[1].tolist() == [True, False, False]

    def test_row_sums_match_counts(self, rng):
        scores = rng.random((20, 6))
        counts = rng.integers(1, 4, 20)
        pred = top_k_predictions(scores, counts)
        assert np.array_equal(pred.sum(axis=1), counts)

    def test_misaligned(self):
        with pytest.raises(EvaluationError):
            top_k_predictions(np.zeros((2, 3)), np.array([1]))


class TestLogistic:
    def test_separable_data(self, rng):
        x = np.vstack([rng.normal(-2, 0.3, (50, 2)), rng.normal(2, 0.3, (50, 2))])
        y = np.zeros((100, 1), dtype=bool)
        y[50:, 0] = True
        clf = LogisticRegressionOVR(l2=0.01).fit(x, y)
        probs = clf.predict_proba(x)[:, 0]
        assert (probs[:50] < 0.5).mean() > 0.95
        assert (probs[50:] > 0.5).mean() > 0.95

    def test_multiclass_ovr(self, rng):
        centers = np.array([[0, 4], [4, 0], [-4, -4]])
        x = np.vstack([rng.normal(c, 0.5, (30, 2)) for c in centers])
        y = np.zeros((90, 3), dtype=bool)
        for cls in range(3):
            y[30 * cls : 30 * (cls + 1), cls] = True
        clf = LogisticRegressionOVR().fit(x, y)
        pred = top_k_predictions(clf.decision_function(x), y.sum(axis=1))
        assert micro_f1(y, pred) > 0.95

    def test_degenerate_class_constant_prediction(self, rng):
        x = rng.normal(size=(20, 3))
        y = np.zeros((20, 2), dtype=bool)
        y[:, 0] = True  # class 0 always on, class 1 never
        clf = LogisticRegressionOVR().fit(x, y)
        probs = clf.predict_proba(x)
        assert np.all(probs[:, 0] > 0.99)
        assert np.all(probs[:, 1] < 0.01)

    def test_unfitted_raises(self):
        with pytest.raises(EvaluationError):
            LogisticRegressionOVR().decision_function(np.zeros((1, 2)))

    def test_empty_train_raises(self):
        with pytest.raises(EvaluationError):
            LogisticRegressionOVR().fit(np.zeros((0, 2)), np.zeros((0, 1), dtype=bool))

    def test_l2_shrinks_weights(self, rng):
        x = np.vstack([rng.normal(-1, 0.5, (40, 2)), rng.normal(1, 0.5, (40, 2))])
        y = np.zeros((80, 1), dtype=bool)
        y[40:, 0] = True
        small = LogisticRegressionOVR(l2=0.01).fit(x, y)
        large = LogisticRegressionOVR(l2=100.0).fit(x, y)
        assert np.linalg.norm(large.weights_) < np.linalg.norm(small.weights_)


class TestClassificationProtocol:
    @pytest.fixture
    def embedded_communities(self, rng):
        """Synthetic embeddings with planted class structure."""
        from repro.graph.labels import NodeLabels
        from repro.embedding import KeyedVectors

        n, classes, dim = 150, 3, 8
        y = rng.integers(0, classes, n)
        centers = rng.normal(0, 2.0, (classes, dim))
        vectors = centers[y] + rng.normal(0, 0.4, (n, dim))
        kv = KeyedVectors(np.arange(n), vectors)
        labels = NodeLabels(np.arange(n), y)
        return kv, labels

    def test_sweep_structure(self, embedded_communities):
        kv, labels = embedded_communities
        results = classification_sweep(
            kv, labels, train_fractions=(0.2, 0.8), trials=2, seed=0
        )
        assert len(results) == 2
        for row in results:
            assert 0.0 <= row["micro_f1_mean"] <= 1.0
            assert row["trials"] == 2

    def test_informative_embeddings_beat_chance(self, embedded_communities):
        kv, labels = embedded_communities
        results = classification_sweep(kv, labels, train_fractions=(0.5,), trials=3, seed=1)
        assert results[0]["micro_f1_mean"] > 0.8  # chance is ~1/3

    def test_more_training_helps(self, embedded_communities):
        kv, labels = embedded_communities
        results = classification_sweep(
            kv, labels, train_fractions=(0.1, 0.9), trials=5, seed=2
        )
        assert results[1]["micro_f1_mean"] >= results[0]["micro_f1_mean"] - 0.05

    def test_evaluate_split_keys(self, embedded_communities):
        kv, labels = embedded_communities
        y = labels.indicator_matrix()
        feats = kv.matrix_for(labels.node_ids)
        out = evaluate_split(feats, y, np.arange(100), np.arange(100, 150))
        assert set(out) == {"micro_f1", "macro_f1", "num_train", "num_test"}

    def test_invalid_fraction(self, embedded_communities):
        kv, labels = embedded_communities
        with pytest.raises(ValueError):
            classification_sweep(kv, labels, train_fractions=(0.0,), trials=1)


class TestLinkPrediction:
    def test_split_edges_hides_fraction(self, small_unweighted_graph):
        g = small_unweighted_graph
        train, test_pairs = split_edges(g, test_fraction=0.3, seed=0)
        assert train.num_undirected_edges + test_pairs.shape[0] == g.num_undirected_edges
        # hidden edges are absent from the training graph
        for a, b in test_pairs[:20]:
            assert not train.has_edge(int(a), int(b))

    def test_sample_non_edges(self, small_unweighted_graph):
        pairs = sample_non_edges(small_unweighted_graph, 50, seed=1)
        assert pairs.shape == (50, 2)
        assert not small_unweighted_graph.has_edge_batch(pairs[:, 0], pairs[:, 1]).any()

    @pytest.mark.parametrize("operator", ["hadamard", "average", "l1", "l2"])
    def test_edge_features_shapes(self, operator, rng):
        from repro.embedding import KeyedVectors

        kv = KeyedVectors(np.arange(10), rng.normal(size=(10, 4)))
        pairs = np.array([[0, 1], [2, 3]])
        feats = edge_features(kv, pairs, operator)
        assert feats.shape == (2, 4)

    def test_unknown_operator(self, rng):
        from repro.embedding import KeyedVectors

        kv = KeyedVectors(np.arange(4), rng.normal(size=(4, 2)))
        with pytest.raises(EvaluationError):
            edge_features(kv, np.array([[0, 1]]), "concat")

    def test_end_to_end_beats_chance(self, barbell):
        """Community-structured graph: embeddings must predict links."""
        from repro.embedding import Word2Vec
        from repro.walks.vectorized import VectorizedWalkEngine

        def embed(train_graph):
            eng = VectorizedWalkEngine(train_graph, "deepwalk", sampler="mh", seed=3)
            corpus = eng.generate(num_walks=12, walk_length=25)
            return Word2Vec(dimensions=16, epochs=3, seed=4).fit(
                corpus, num_nodes=train_graph.num_nodes
            )

        out = link_prediction_experiment(barbell, embed, test_fraction=0.25, seed=5)
        assert out["auc"] > 0.6


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 30),
    c=st.integers(1, 5),
    seed=st.integers(0, 100),
)
def test_property_f1_bounds(n, c, seed):
    rng = np.random.default_rng(seed)
    y_true = rng.random((n, c)) < 0.4
    y_pred = rng.random((n, c)) < 0.4
    for metric in (micro_f1, macro_f1, accuracy):
        value = metric(y_true, y_pred)
        assert 0.0 <= value <= 1.0
