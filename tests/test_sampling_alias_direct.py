"""Tests for the alias and direct samplers (distribution exactness)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplerError
from repro.sampling import (
    DirectSampler,
    FirstOrderAliasSampler,
    SecondOrderAliasSampler,
)
from repro.sampling.alias import AliasTable, FirstOrderAliasStore, build_alias_table
from repro.sampling.base import NO_EDGE, draw_from_weights
from repro.walks.models import make_model
from repro.walks.state import WalkerState


def tv_distance(p, q):
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def alias_exact_probs(threshold, alias):
    """Analytic outcome distribution implied by an alias table."""
    d = threshold.size
    probs = np.zeros(d)
    for k in range(d):
        probs[k] += threshold[k] / d
        probs[alias[k]] += (1.0 - threshold[k]) / d
    return probs


class TestBuildAliasTable:
    @pytest.mark.parametrize(
        "weights",
        [
            [1.0],
            [1.0, 1.0],
            [0.1, 0.9],
            [5.0, 1.0, 1.0, 1.0],
            [0.0, 1.0, 0.0, 3.0],
            list(range(1, 20)),
        ],
    )
    def test_tables_encode_exact_distribution(self, weights):
        w = np.asarray(weights, dtype=float)
        threshold, alias = build_alias_table(w)
        assert tv_distance(alias_exact_probs(threshold, alias), w / w.sum()) < 1e-12

    def test_rejects_empty(self):
        with pytest.raises(SamplerError):
            build_alias_table(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(SamplerError):
            build_alias_table(np.array([1.0, -0.5]))

    def test_rejects_all_zero(self):
        with pytest.raises(SamplerError):
            build_alias_table(np.array([0.0, 0.0]))

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(
            st.floats(0.0, 100.0), min_size=1, max_size=30
        ).filter(lambda w: sum(w) > 1e-9)
    )
    def test_property_exactness(self, weights):
        w = np.asarray(weights)
        threshold, alias = build_alias_table(w)
        assert tv_distance(alias_exact_probs(threshold, alias), w / w.sum()) < 1e-9


class TestAliasTableDraws:
    def test_scalar_draw_distribution(self, rng):
        w = np.array([1.0, 3.0, 6.0])
        table = AliasTable(w)
        counts = np.bincount([table.draw(rng) for __ in range(30000)], minlength=3)
        assert tv_distance(counts / counts.sum(), w / w.sum()) < 0.02

    def test_batch_matches_scalar_statistics(self, rng):
        w = np.array([2.0, 1.0, 1.0, 4.0])
        table = AliasTable(w)
        draws = table.draw_batch(rng, 40000)
        counts = np.bincount(draws, minlength=4)
        assert tv_distance(counts / counts.sum(), w / w.sum()) < 0.02


class TestFirstOrderAliasStore:
    def test_uniform_for_unweighted(self, small_unweighted_graph, rng):
        store = FirstOrderAliasStore(small_unweighted_graph)
        assert store.uniform
        assert store.memory_bytes() == 0
        v = int(np.argmax(small_unweighted_graph.degrees()))
        lo, hi = small_unweighted_graph.edge_range(v)
        draws = store.draw_batch(np.full(20000, v), rng)
        counts = np.bincount(draws - lo, minlength=hi - lo)
        assert tv_distance(counts / counts.sum(), np.full(hi - lo, 1.0 / (hi - lo))) < 0.03

    def test_weighted_distribution(self, tiny_weighted_graph, rng):
        store = FirstOrderAliasStore(tiny_weighted_graph)
        lo, hi = tiny_weighted_graph.edge_range(0)
        draws = np.array([store.draw(0, rng) for __ in range(40000)])
        counts = np.bincount(draws - lo, minlength=hi - lo)
        w = tiny_weighted_graph.neighbor_weights(0)
        assert tv_distance(counts / counts.sum(), w / w.sum()) < 0.02

    def test_isolated_node_gives_no_edge(self, rng):
        from repro.graph.builder import from_edge_arrays

        g = from_edge_arrays([0], [1], [1.0], num_nodes=3)
        store = FirstOrderAliasStore(g)
        assert store.draw(2, rng) == NO_EDGE
        batch = store.draw_batch(np.array([2, 0]), rng)
        assert batch[0] == NO_EDGE and batch[1] != NO_EDGE


class TestDrawFromWeights:
    def test_exactness(self, rng):
        w = np.array([0.5, 0.0, 1.5, 2.0])
        counts = np.zeros(4)
        for __ in range(40000):
            counts[draw_from_weights(w, rng)] += 1
        assert counts[1] == 0
        assert tv_distance(counts / counts.sum(), w / w.sum()) < 0.02

    def test_all_zero_returns_sentinel(self, rng):
        assert draw_from_weights(np.zeros(3), rng) == NO_EDGE


class TestDirectSampler:
    def test_matches_exact_node2vec_distribution(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        sampler = DirectSampler()
        lo, __ = g.edge_range(0)
        counts = np.zeros(g.degree(0))
        for __ in range(40000):
            counts[sampler.sample(g, model, state, rng) - lo] += 1
        assert tv_distance(counts / counts.sum(), exact) < 0.02

    def test_dead_state_returns_no_edge(self, academic, rng):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        # at step 1 "APA" targets authors, but a venue only touches papers
        venue = int(np.flatnonzero(graph.node_types == 2)[0])
        state = WalkerState(current=venue, step=1)
        assert sampler_returns_no_edge(DirectSampler(), graph, model, state, rng)

    def test_stats_counting(self, tiny_weighted_graph, rng):
        model = make_model("deepwalk", tiny_weighted_graph)
        sampler = DirectSampler()
        state = WalkerState(current=0)
        for __ in range(10):
            sampler.sample(tiny_weighted_graph, model, state, rng)
        assert sampler.stats.samples == 10
        sampler.reset_stats()
        assert sampler.stats.samples == 0


def sampler_returns_no_edge(sampler, graph, model, state, rng):
    return sampler.sample(graph, model, state, rng) == NO_EDGE


class TestSecondOrderAliasSampler:
    def test_matches_exact_distribution(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        sampler = SecondOrderAliasSampler(g, model)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        lo, __ = g.edge_range(0)
        counts = np.zeros(g.degree(0))
        for __ in range(40000):
            counts[sampler.sample(g, model, state, rng) - lo] += 1
        assert tv_distance(counts / counts.sum(), exact) < 0.02

    def test_tables_cached_per_state(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        sampler = SecondOrderAliasSampler(g, model)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        for __ in range(5):
            sampler.sample(g, model, state, rng)
        assert sampler.num_cached_tables == 1
        assert sampler.stats.initializations == 1

    def test_first_order_alias_sampler(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("deepwalk", g)
        sampler = FirstOrderAliasSampler(g)
        state = WalkerState(current=0)
        lo, __ = g.edge_range(0)
        counts = np.zeros(g.degree(0))
        for __ in range(40000):
            counts[sampler.sample(g, model, state, rng) - lo] += 1
        w = g.neighbor_weights(0)
        assert tv_distance(counts / counts.sum(), w / w.sum()) < 0.02
