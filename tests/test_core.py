"""Tests for the UniNet facade, configs and the timed pipeline."""

import numpy as np
import pytest

from repro import UniNet, TrainConfig, WalkConfig
from repro.core.pipeline import generate_walks, train_pipeline
from repro.errors import SimulatedOutOfMemoryError, WalkError
from repro.sampling import MemoryBudget
from repro.sampling.memory_model import second_order_alias_bytes
from repro.walks.models import make_model


class TestConfigs:
    def test_walk_config_defaults(self):
        config = WalkConfig()
        assert config.num_walks == 10
        assert config.walk_length == 80
        assert config.sampler == "mh"

    def test_walk_config_validation(self):
        with pytest.raises(WalkError):
            WalkConfig(num_walks=0)
        with pytest.raises(WalkError):
            WalkConfig(walk_length=0)

    def test_train_config_kwargs(self):
        config = TrainConfig(dimensions=32, epochs=2, extra={"batch_pairs": 1024})
        kwargs = config.word2vec_kwargs()
        assert kwargs["epochs"] == 2
        assert kwargs["batch_pairs"] == 1024
        assert "dimensions" not in kwargs


class TestPipeline:
    def test_walk_only(self, small_unweighted_graph):
        model = make_model("deepwalk", small_unweighted_graph)
        corpus, engine, timings = generate_walks(
            small_unweighted_graph, model, WalkConfig(num_walks=1, walk_length=10), seed=0
        )
        assert corpus.num_walks == small_unweighted_graph.num_nodes
        assert timings["init"] >= 0 and timings["walk"] >= 0

    def test_full_pipeline_timings(self, small_unweighted_graph):
        result = train_pipeline(
            small_unweighted_graph,
            "deepwalk",
            WalkConfig(num_walks=2, walk_length=12),
            TrainConfig(dimensions=16, epochs=1),
            seed=1,
        )
        assert result.embeddings is not None
        assert result.tl > 0
        assert result.tt == pytest.approx(result.ti + result.tw + result.tl)

    def test_skip_learning(self, small_unweighted_graph):
        result = train_pipeline(
            small_unweighted_graph,
            "deepwalk",
            WalkConfig(num_walks=1, walk_length=8),
            seed=2,
            skip_learning=True,
        )
        assert result.embeddings is None
        assert result.tl == 0.0
        assert result.corpus.num_walks > 0

    def test_sampler_stats_recorded(self, small_unweighted_graph):
        result = train_pipeline(
            small_unweighted_graph,
            "node2vec",
            WalkConfig(num_walks=1, walk_length=8, sampler="rejection"),
            seed=3,
            skip_learning=True,
        )
        assert 0 < result.sampler_stats["acceptance_ratio"] <= 1.0

    def test_budget_enforced(self, small_power_law_graph):
        model = make_model("node2vec", small_power_law_graph, p=0.5, q=2.0)
        budget = MemoryBudget(second_order_alias_bytes(small_power_law_graph, model) // 4)
        with pytest.raises(SimulatedOutOfMemoryError):
            train_pipeline(
                small_power_law_graph,
                model,
                WalkConfig(num_walks=1, walk_length=5, sampler="alias"),
                budget=budget,
                skip_learning=True,
            )


class TestUniNetFacade:
    def test_train_returns_embeddings(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="deepwalk", seed=4)
        result = net.train(num_walks=2, walk_length=10, dimensions=16, epochs=1)
        assert len(result.embeddings) == small_unweighted_graph.num_nodes
        assert result.embeddings.dimensions == 16

    def test_generate_walks_only(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="deepwalk", seed=5)
        corpus = net.generate_walks(num_walks=1, walk_length=6)
        assert corpus.num_walks == small_unweighted_graph.num_nodes

    def test_model_params_forwarded(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="node2vec", p=0.25, q=4.0)
        assert net.model.p == 0.25
        assert net.model.q == 4.0

    def test_metapath_facade(self, academic):
        graph, __ = academic
        net = UniNet(graph, model="metapath2vec", metapath="APA", seed=6)
        corpus = net.generate_walks(num_walks=1, walk_length=7)
        starts = corpus.walks[:, 0]
        assert np.all(graph.node_types[starts] == 0)

    def test_sampler_override_per_call(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="deepwalk", sampler="mh", seed=7)
        config = net.walk_config(1, 5, sampler="direct")
        assert config.sampler == "direct"

    def test_walk_overrides_in_train(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="deepwalk", seed=8)
        result = net.train(
            num_walks=1, walk_length=8, dimensions=8, epochs=1,
            walk_overrides={"sampler": "direct"},
        )
        assert result.embeddings is not None

    def test_seed_reproducibility(self, small_unweighted_graph):
        a = UniNet(small_unweighted_graph, model="deepwalk", seed=9).train(
            num_walks=1, walk_length=8, dimensions=8, epochs=1
        )
        b = UniNet(small_unweighted_graph, model="deepwalk", seed=9).train(
            num_walks=1, walk_length=8, dimensions=8, epochs=1
        )
        assert np.array_equal(a.embeddings.vectors, b.embeddings.vectors)

    def test_repr(self, small_unweighted_graph):
        net = UniNet(small_unweighted_graph, model="deepwalk")
        assert "deepwalk" in repr(net)

    def test_custom_model_instance(self, small_unweighted_graph):
        """The unified abstraction: a user-defined model runs unchanged."""
        from repro.walks.models.base import RandomWalkModel

        class InverseDegreeWalk(RandomWalkModel):
            """Biases transitions toward low-degree neighbours."""

            name = "inverse-degree"
            order = 1

            def calculate_weight(self, state, edge_offset):
                u = int(self.graph.targets[edge_offset])
                return 1.0 / max(self.graph.degree(u), 1)

            def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets):
                u = self.graph.targets[edge_offsets]
                return 1.0 / np.maximum(self.graph.degrees()[u], 1).astype(float)

        model = InverseDegreeWalk(small_unweighted_graph)
        net = UniNet(small_unweighted_graph, model=model, seed=10)
        corpus = net.generate_walks(num_walks=1, walk_length=10)
        assert corpus.token_count > 0
