"""Tests for heterogeneous graph support."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.hetero import (
    AUTHOR_TYPE,
    PAPER_TYPE,
    VENUE_TYPE,
    academic_graph,
    assign_random_types,
    derive_edge_types,
    num_symmetric_edge_types,
    parse_metapath,
)


class TestParseMetapath:
    def test_letters(self):
        assert parse_metapath("APA") == [0, 1, 0]
        assert parse_metapath("APVPA") == [0, 1, 2, 1, 0]

    def test_integer_sequence(self):
        assert parse_metapath([1, 2, 1]) == [1, 2, 1]

    def test_custom_names(self):
        assert parse_metapath("XY", {"X": 5, "Y": 6}) == [5, 6]

    def test_unknown_letter(self):
        with pytest.raises(GraphError):
            parse_metapath("AZ")

    def test_too_short(self):
        with pytest.raises(GraphError):
            parse_metapath("A")

    def test_negative_type(self):
        with pytest.raises(GraphError):
            parse_metapath([0, -1])


class TestRandomTypes:
    def test_assign_random_types(self, small_unweighted_graph):
        typed = assign_random_types(small_unweighted_graph, 3, seed=1)
        assert typed.is_heterogeneous
        assert typed.node_types.min() >= 0
        assert typed.node_types.max() < 3
        assert typed.edge_types is not None

    def test_assign_rejects_zero_types(self, small_unweighted_graph):
        with pytest.raises(GraphError):
            assign_random_types(small_unweighted_graph, 0)

    def test_all_types_present(self, small_unweighted_graph):
        typed = assign_random_types(small_unweighted_graph, 3, seed=2)
        assert set(np.unique(typed.node_types)) == {0, 1, 2}


class TestDeriveEdgeTypes:
    def test_symmetric_ids(self, small_unweighted_graph):
        typed = assign_random_types(small_unweighted_graph, 3, seed=3)
        src = typed.edge_sources()
        for off in range(0, typed.num_edge_entries, 7):
            rev = typed.edge_index(int(typed.targets[off]), int(src[off]))
            assert typed.edge_types[off] == typed.edge_types[rev]

    def test_id_range(self, small_unweighted_graph):
        typed = assign_random_types(small_unweighted_graph, 4, seed=4)
        assert typed.edge_types.max() < num_symmetric_edge_types(4)

    def test_pair_encoding_distinct(self):
        # all unordered pairs over 3 types get distinct ids
        g = generators.complete_graph(3)
        ids = set()
        for types in ([0, 1, 2],):
            et = derive_edge_types(g, np.array(types, dtype=np.int16), 3)
            ids.update(et.tolist())
        assert len(ids) == 3  # pairs (0,1), (0,2), (1,2)

    def test_num_symmetric_edge_types(self):
        assert num_symmetric_edge_types(1) == 1
        assert num_symmetric_edge_types(3) == 6


class TestAcademicGraph:
    def test_structure(self, academic):
        graph, labels = academic
        assert graph.num_node_types == 3
        # bipartite-ish structure: authors only touch papers
        author_nodes = np.flatnonzero(graph.node_types == AUTHOR_TYPE)
        for a in author_nodes[:20]:
            nbr_types = graph.node_types[graph.neighbors(int(a))]
            assert np.all(nbr_types == PAPER_TYPE)

    def test_venues_touch_only_papers(self, academic):
        graph, __ = academic
        venues = np.flatnonzero(graph.node_types == VENUE_TYPE)
        for v in venues:
            assert np.all(graph.node_types[graph.neighbors(int(v))] == PAPER_TYPE)

    def test_labels_cover_authors(self, academic):
        graph, labels = academic
        num_authors = int((graph.node_types == AUTHOR_TYPE).sum())
        assert labels.num_labeled == num_authors
        assert labels.num_classes >= 2

    def test_every_paper_has_author_and_venue(self, academic):
        graph, __ = academic
        papers = np.flatnonzero(graph.node_types == PAPER_TYPE)
        for p in papers[:50]:
            nbr_types = set(graph.node_types[graph.neighbors(int(p))].tolist())
            assert AUTHOR_TYPE in nbr_types
            assert VENUE_TYPE in nbr_types

    def test_validation(self):
        with pytest.raises(GraphError):
            academic_graph(num_areas=1)
        with pytest.raises(GraphError):
            academic_graph(num_venues=2, num_areas=4)

    def test_deterministic(self):
        a, __ = academic_graph(num_authors=50, num_papers=80, num_venues=6, seed=9)
        b, __ = academic_graph(num_authors=50, num_papers=80, num_venues=6, seed=9)
        assert np.array_equal(a.targets, b.targets)

    def test_weighted_variant(self):
        g, __ = academic_graph(num_authors=40, num_papers=60, num_venues=6, weight_mode="uniform", seed=1)
        assert g.is_weighted
