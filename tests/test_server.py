"""Concurrency suite for the asyncio query server and snapshot manager.

The load-bearing test is the torn-snapshot check: N async clients
hammer the server while a publisher swaps embedding versions under
them, and every single response must be consistent with exactly one
published store — a mix of two versions inside one response proves the
swap tore an in-flight batch.
"""

import asyncio
import json
import os
import re
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.embedding.keyed_vectors import KeyedVectors
from repro.errors import (
    ConfigError,
    OverloadError,
    ProtocolError,
    ServerError,
    ServingError,
)
from repro.serving import (
    EmbeddingStore,
    InProcessClient,
    LatencyHistogram,
    QueryClient,
    QueryServer,
    QueryService,
    SnapshotManager,
)
from repro.serving.server import MAX_FRAME_BYTES, MAX_KEYS_PER_REQUEST, encode_frame

NUM_KEYS = 300
DIM = 16


def make_store(seed: int) -> EmbeddingStore:
    rng = np.random.default_rng(seed)
    kv = KeyedVectors(np.arange(NUM_KEYS), rng.standard_normal((NUM_KEYS, DIM)))
    return EmbeddingStore.from_keyed_vectors(kv)


@pytest.fixture
def store_a():
    return make_store(11)


@pytest.fixture
def store_b():
    return make_store(22)


def exact_answers(store, topn=5) -> dict:
    service = QueryService(store, index="bruteforce", cache_size=0)
    results = service.most_similar_batch(np.asarray(store.keys), topn=topn)
    return {int(k): row for k, row in zip(store.keys, results)}


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_quantiles_within_bucket_error(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(0.001)
        hist.record(0.1)
        assert hist.count == 100
        assert 0.0008 <= hist.quantile(0.5) <= 0.0013
        assert 0.08 <= hist.quantile(1.0) <= 0.13
        assert hist.mean == pytest.approx((99 * 0.001 + 0.1) / 100)


class TestSnapshotManager:
    def test_publish_bumps_version(self, store_a, store_b):
        manager = SnapshotManager(store_a)
        assert manager.version == 0
        snap = manager.publish(store_b)
        assert snap.version == 1 and manager.version == 1
        assert manager.current.store is store_b

    def test_lease_pins_old_version_until_drained(self, store_a, store_b):
        manager = SnapshotManager(store_a)
        with manager.lease() as snap:
            manager.publish(store_b)
            assert snap.retired and snap.version == 0
            assert manager.version == 1
            assert manager.stats()["retired_pending"] == 1
            # the leased snapshot still answers from the old store
            assert snap.store is store_a
        stats = manager.stats()
        assert stats["retired_pending"] == 0
        assert stats["retired_drained"] >= 1

    def test_rejects_index_instance(self, store_a):
        from repro.serving import BruteForceIndex

        with pytest.raises(ServingError, match="index"):
            SnapshotManager(store_a, index=BruteForceIndex(store_a))

    def test_upsert_is_copy_on_write(self, store_a):
        manager = SnapshotManager(store_a)
        old = manager.current
        vec = np.ones(DIM, dtype=np.float32)
        report = manager.upsert([NUM_KEYS + 7], vec)
        assert report["inserted"] == 1 and report["version"] == 1
        assert NUM_KEYS + 7 in manager.current.store
        # the superseded snapshot was never written to
        assert NUM_KEYS + 7 not in old.store
        assert len(old.store) == NUM_KEYS

    def test_upsert_works_on_readonly_mmap_store(self, store_a, tmp_path):
        path = store_a.save(tmp_path / "a.embstore")
        mapped = EmbeddingStore.open(path)
        with pytest.raises(ServingError, match="read-only"):
            mapped.upsert([0], np.ones(DIM, dtype=np.float32))
        manager = SnapshotManager(mapped)
        report = manager.upsert([0], np.ones(DIM, dtype=np.float32))
        assert report["updated"] == 1
        assert np.allclose(manager.current.store.vector(0), np.ones(DIM))
        # the mmap file itself was never touched
        assert not np.allclose(EmbeddingStore.open(path).vector(0), np.ones(DIM))


class TestQueryServerBasics:
    def test_submit_before_start_raises(self, store_a):
        server = QueryServer(store_a)
        with pytest.raises(ServerError, match="not running"):
            asyncio.run(server.submit({"op": "ping"}))

    def test_knob_validation(self, store_a):
        with pytest.raises(ConfigError):
            QueryServer(store_a, max_batch=0)
        with pytest.raises(ConfigError):
            QueryServer(store_a, queue_size=0)
        with pytest.raises(ConfigError):
            QueryServer(store_a, max_wait_us=-1)
        with pytest.raises(ConfigError, match="index_params"):
            QueryServer(SnapshotManager(store_a), nlist=4)

    def test_most_similar_matches_direct_service(self, store_a):
        expected = exact_answers(store_a, topn=5)

        async def main():
            server = await QueryServer(store_a, cache_size=0).start()
            client = InProcessClient(server)
            got = await client.most_similar([3, 250], topn=5)
            await server.stop()
            return got

        got = asyncio.run(main())
        assert got[0] == expected[3]
        assert got[1] == expected[250]

    def test_similarity_and_ping(self, store_a):
        service = QueryService(store_a, cache_size=0)
        direct = service.similarity_batch([1, 2], [3, 4])

        async def main():
            server = await QueryServer(store_a).start()
            client = InProcessClient(server)
            sims = await client.similarity([1, 2], [3, 4])
            pong = await client.ping()
            await server.stop()
            return sims, pong

        sims, pong = asyncio.run(main())
        assert pong == "pong"
        assert np.allclose(sims, direct, atol=1e-6)

    def test_stats_has_latency_percentiles(self, store_a):
        async def main():
            server = await QueryServer(store_a).start()
            client = InProcessClient(server)
            await asyncio.gather(*(client.most_similar(k) for k in range(32)))
            stats = await client.stats()
            await server.stop()
            return stats

        stats = asyncio.run(main())
        for field in ("p50_ms", "p99_ms", "mean_ms", "qps", "mean_batch", "queue_depth"):
            assert field in stats, field
        assert stats["p50_ms"] > 0 and stats["p99_ms"] >= stats["p50_ms"]
        assert stats["qps"] > 0
        # the stats request itself is not yet counted when the snapshot is taken
        assert stats["answered"] >= 32
        assert stats["snapshot"]["version"] == 0

    def test_concurrent_requests_are_coalesced(self, store_a):
        async def main():
            server = await QueryServer(store_a, max_batch=64, max_wait_us=5000).start()
            client = InProcessClient(server)
            await asyncio.gather(*(client.most_similar(k % NUM_KEYS) for k in range(64)))
            stats = server.stats()
            await server.stop()
            return stats

        stats = asyncio.run(main())
        assert stats["batches"] < stats["answered"]
        assert stats["mean_batch"] > 1.0

    def test_protocol_errors(self, store_a):
        async def main():
            server = await QueryServer(store_a).start()
            responses = {}
            responses["unknown_op"] = await server.submit({"op": "nope"})
            responses["no_keys"] = await server.submit({"op": "most_similar", "keys": []})
            responses["bad_topn"] = await server.submit(
                {"op": "most_similar", "keys": [1], "topn": 0}
            )
            responses["bad_keys"] = await server.submit(
                {"op": "most_similar", "keys": ["x"]}
            )
            responses["too_many"] = await server.submit(
                {"op": "most_similar", "keys": list(range(MAX_KEYS_PER_REQUEST + 1))}
            )
            responses["not_dict"] = await server.submit([1, 2])
            responses["misaligned"] = await server.submit(
                {"op": "similarity", "a": [1], "b": [1, 2]}
            )
            await server.stop()
            return responses

        responses = asyncio.run(main())
        for name, resp in responses.items():
            assert resp["ok"] is False, name
            assert resp["error"]["code"] == "bad-request", name

    def test_missing_key_fails_only_that_request(self, store_a):
        async def main():
            server = await QueryServer(store_a, max_wait_us=5000).start()
            client = InProcessClient(server)
            good, bad = await asyncio.gather(
                client.most_similar(5, topn=3),
                client.most_similar(10_000, topn=3),
                return_exceptions=True,
            )
            await server.stop()
            return good, bad

        good, bad = asyncio.run(main())
        assert len(good[0]) == 3
        assert isinstance(bad, ServingError)
        assert "10000" in str(bad)

    def test_request_id_is_echoed(self, store_a):
        async def main():
            server = await QueryServer(store_a).start()
            resp = await server.submit({"op": "ping", "id": "req-42"})
            await server.stop()
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] and resp["id"] == "req-42"


class TestLoadShed:
    def test_overload_sheds_with_typed_error(self, store_a):
        async def main():
            server = await QueryServer(store_a, queue_size=4, max_batch=2).start()
            responses = await asyncio.gather(
                *(server.submit({"op": "most_similar", "keys": [k % NUM_KEYS]}) for k in range(64))
            )
            # the server must keep answering after shedding
            after = await InProcessClient(server).most_similar(0, topn=3)
            stats = server.stats()
            await server.stop()
            return responses, after, stats

        responses, after, stats = asyncio.run(main())
        ok = [r for r in responses if r["ok"]]
        shed = [r for r in responses if not r["ok"]]
        assert ok and shed, "expected both served and shed requests"
        assert all(r["error"]["code"] == "overloaded" for r in shed)
        assert all(r["error"]["type"] == "OverloadError" for r in shed)
        assert stats["shed"] == len(shed)
        assert len(after[0]) == 3

    def test_client_raises_overload_error(self, store_a):
        async def main():
            server = await QueryServer(store_a, queue_size=2, max_batch=2).start()
            client = InProcessClient(server)
            results = await asyncio.gather(
                *(client.most_similar(k % NUM_KEYS) for k in range(64)),
                return_exceptions=True,
            )
            await server.stop()
            return results

        results = asyncio.run(main())
        assert any(isinstance(r, OverloadError) for r in results)
        assert any(isinstance(r, list) for r in results)


class TestSnapshotSwapUnderLoad:
    """The acceptance-criteria test: zero failed, zero torn requests."""

    NUM_CLIENTS = 16
    REQUESTS_PER_CLIENT = 25
    SWAPS = 6
    TOPN = 5

    def test_no_torn_snapshots(self, store_a, store_b):
        expected = {"a": exact_answers(store_a, self.TOPN), "b": exact_answers(store_b, self.TOPN)}
        # the check has teeth only if the two versions disagree
        differing = [k for k in range(NUM_KEYS) if expected["a"][k] != expected["b"][k]]
        assert len(differing) > NUM_KEYS // 2
        # publish order: version 0 = A, 1 = B, 2 = A, ... even -> A, odd -> B
        store_of_version = lambda v: "a" if v % 2 == 0 else "b"  # noqa: E731

        async def client_loop(server, client_id, failures, versions_seen):
            rng = np.random.default_rng(1000 + client_id)
            for _ in range(self.REQUESTS_PER_CLIENT):
                k1, k2 = (int(k) for k in rng.choice(differing, size=2))
                resp = await server.submit(
                    {"op": "most_similar", "keys": [k1, k2], "topn": self.TOPN}
                )
                if not resp["ok"]:
                    failures.append(resp)
                    continue
                which = store_of_version(resp["version"])
                versions_seen.add(resp["version"])
                want = [expected[which][k1], expected[which][k2]]
                got = [
                    [(int(k), float(s)) for k, s in row] for row in resp["result"]
                ]
                if got != want:
                    failures.append(
                        {"client": client_id, "version": resp["version"], "keys": (k1, k2)}
                    )
                await asyncio.sleep(0)

        async def main():
            server = await QueryServer(
                store_a, max_batch=32, max_wait_us=500, queue_size=4096
            ).start()
            failures: list = []
            versions_seen: set = set()

            async def publisher():
                for i in range(self.SWAPS):
                    await asyncio.sleep(0.01)
                    server.publish(store_b if i % 2 == 0 else store_a)

            await asyncio.gather(
                publisher(),
                *(
                    client_loop(server, c, failures, versions_seen)
                    for c in range(self.NUM_CLIENTS)
                ),
            )
            stats = server.stats()
            await server.stop()
            return failures, versions_seen, stats

        failures, versions_seen, stats = asyncio.run(main())
        assert failures == [], f"torn or failed requests: {failures[:3]}"
        assert len(versions_seen) >= 2, "swap never happened under load"
        assert stats["errors"] == 0 and stats["shed"] == 0
        assert stats["answered"] >= self.NUM_CLIENTS * self.REQUESTS_PER_CLIENT
        assert stats["snapshot"]["version"] == self.SWAPS
        assert stats["snapshot"]["retired_pending"] == 0

    def test_upsert_under_load_serves_old_then_new(self, store_a):
        """COW upserts mid-traffic: every response is internally consistent."""

        async def main():
            server = await QueryServer(store_a, max_batch=16, max_wait_us=200).start()
            client = InProcessClient(server)
            new_key = NUM_KEYS + 50
            rng = np.random.default_rng(7)

            async def writer():
                for _ in range(3):
                    await asyncio.sleep(0.005)
                    server.upsert([new_key], rng.standard_normal((1, DIM)))

            async def reader():
                good = 0
                for _ in range(40):
                    rows = await client.most_similar(5, topn=3)
                    assert len(rows[0]) == 3
                    good += 1
                return good

            results = await asyncio.gather(writer(), reader(), reader())
            found = await client.most_similar(new_key, topn=3)
            stats = server.stats()
            await server.stop()
            return results, found, stats

        results, found, stats = asyncio.run(main())
        assert results[1] == results[2] == 40
        assert len(found[0]) == 3
        assert stats["snapshot"]["version"] == 3


class TestTCP:
    def test_roundtrip_matches_in_process(self, store_a):
        expected = exact_answers(store_a, topn=4)

        async def main():
            server = QueryServer(store_a, cache_size=0)
            host, port = await server.start_tcp()
            client = await QueryClient.connect(host, port)
            got = await client.most_similar([7, 42], topn=4)
            stats = await client.stats()
            await client.close()
            await server.stop()
            return got, stats

        got, stats = asyncio.run(main())
        assert got[0] == expected[7] and got[1] == expected[42]
        assert stats["p99_ms"] >= 0

    def test_malformed_json_then_recovery(self, store_a):
        async def main():
            server = QueryServer(store_a)
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            bad = b"this is not json"
            writer.write(struct.pack("!I", len(bad)) + bad)
            await writer.drain()
            head = await reader.readexactly(4)
            (length,) = struct.unpack("!I", head)
            first = json.loads(await reader.readexactly(length))
            # framing is intact, the same connection keeps working
            writer.write(encode_frame({"op": "ping"}))
            await writer.drain()
            head = await reader.readexactly(4)
            (length,) = struct.unpack("!I", head)
            second = json.loads(await reader.readexactly(length))
            writer.close()
            await server.stop()
            return first, second

        first, second = asyncio.run(main())
        assert first["ok"] is False and first["error"]["code"] == "bad-request"
        assert second["ok"] is True and second["result"] == "pong"

    def test_oversized_frame_closes_connection(self, store_a):
        async def main():
            server = QueryServer(store_a)
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(struct.pack("!I", MAX_FRAME_BYTES + 1))
            await writer.drain()
            head = await reader.readexactly(4)
            (length,) = struct.unpack("!I", head)
            resp = json.loads(await reader.readexactly(length))
            trailing = await reader.read()
            writer.close()
            await server.stop()
            return resp, trailing

        resp, trailing = asyncio.run(main())
        assert resp["ok"] is False and resp["error"]["code"] == "bad-request"
        assert trailing == b""


class TestServeCLI:
    def test_serve_smoke_over_tcp(self, store_a, tmp_path):
        path = store_a.save(tmp_path / "toy.embstore")
        repo_src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=repo_src)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--store", str(path), "--port", "0", "--max-requests", "3",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            port = int(match.group(1))

            async def main():
                client = await QueryClient.connect("127.0.0.1", port)
                assert await client.ping() == "pong"
                rows = await client.most_similar([0, 1], topn=3)
                stats = await client.stats()
                await client.close()
                return rows, stats

            rows, stats = asyncio.run(main())
            assert [len(r) for r in rows] == [3, 3]
            assert stats["p99_ms"] >= 0
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "served 3 requests" in out
