"""Tests for connectivity utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    largest_component,
    remap_labels,
)
from repro.graph.generators import barbell_graph, cycle_graph
from repro.graph.labels import NodeLabels


def _two_islands():
    """Triangle {0,1,2} plus edge {3,4} plus isolated node 5."""
    return from_edge_arrays([0, 1, 2, 3], [1, 2, 0, 4], num_nodes=6)


class TestConnectedComponents:
    def test_single_component(self):
        labels = connected_components(cycle_graph(8))
        assert np.all(labels == 0)

    def test_islands(self):
        labels = connected_components(_two_islands())
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_sizes(self):
        sizes = component_sizes(connected_components(_two_islands()))
        assert sorted(sizes.tolist()) == [1, 2, 3]

    def test_matches_networkx(self, small_unweighted_graph):
        import networkx as nx

        labels = connected_components(small_unweighted_graph)
        nx_graph = small_unweighted_graph.to_networkx().to_undirected()
        nx_comps = list(nx.connected_components(nx_graph))
        assert int(labels.max()) + 1 == len(nx_comps)
        for comp in nx_comps:
            ids = {int(labels[v]) for v in comp}
            assert len(ids) == 1


class TestInducedSubgraph:
    def test_extraction_preserves_edges(self):
        sub, kept = induced_subgraph(_two_islands(), [0, 1, 2])
        assert kept.tolist() == [0, 1, 2]
        assert sub.num_edge_entries == 6  # the triangle

    def test_cross_edges_dropped(self):
        sub, kept = induced_subgraph(_two_islands(), [0, 1, 3])
        assert sub.has_edge(0, 1)
        assert sub.degree(2) == 0  # node 3 lost its only neighbour

    def test_weights_and_types_carried(self, academic):
        graph, __ = academic
        nodes = np.arange(graph.num_nodes // 2)
        sub, kept = induced_subgraph(graph, nodes)
        assert sub.node_types is not None
        assert np.array_equal(sub.node_types, graph.node_types[kept])
        assert sub.edge_types is not None

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            induced_subgraph(_two_islands(), [99])
        with pytest.raises(GraphError):
            induced_subgraph(_two_islands(), [])


class TestLargestComponent:
    def test_picks_triangle(self):
        sub, kept = largest_component(_two_islands())
        assert kept.tolist() == [0, 1, 2]
        assert sub.num_nodes == 3

    def test_connected_graph_unchanged(self):
        g = barbell_graph(6, 2)
        sub, kept = largest_component(g)
        assert sub.num_nodes == g.num_nodes
        assert np.array_equal(sub.targets, g.targets)

    def test_walkable_after_extraction(self):
        from repro.walks.vectorized import VectorizedWalkEngine

        sub, __ = largest_component(_two_islands())
        corpus = VectorizedWalkEngine(sub, "deepwalk", seed=0).generate(1, 5)
        assert corpus.lengths.min() == 5  # no dead ends in the triangle


class TestRemapLabels:
    def test_single_label_remap(self):
        labels = NodeLabels([0, 2, 3], [1, 0, 1])
        remapped = remap_labels(labels, np.array([0, 1, 2]))
        assert remapped.node_ids.tolist() == [0, 2]
        assert remapped.class_ids().tolist() == [1, 0]

    def test_multilabel_remap(self):
        y = np.array([[1, 0], [0, 1], [1, 1]], dtype=bool)
        labels = NodeLabels([0, 3, 4], y)
        remapped = remap_labels(labels, np.array([3, 4]))
        assert remapped.node_ids.tolist() == [0, 1]
        assert remapped.indicator_matrix().tolist() == [[False, True], [True, True]]

    def test_no_overlap_rejected(self):
        labels = NodeLabels([9], [0])
        with pytest.raises(GraphError):
            remap_labels(labels, np.array([0, 1]))


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=25,
    )
)
def test_property_components_partition_nodes(edges):
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    g = from_edge_arrays(src, dst, num_nodes=10, duplicate_policy="first")
    labels = connected_components(g)
    # every node labelled; endpoints of every edge share a component
    assert np.all(labels >= 0)
    assert component_sizes(labels).sum() == 10
    for s, d in edges:
        assert labels[s] == labels[d]
