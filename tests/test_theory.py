"""Tests for the theory toolkit: Theorems 1-3 and the Fig. 1 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    empirical_distribution,
    fig1_simulation,
    high_weight_preferred,
    kappa_high_weight,
    kappa_random,
    kl_divergence,
    make_target_distribution,
    mh_chain_sample,
    profile_model_states,
    theorem1_bound,
    theorem3_condition,
)
from repro.theory.convergence import mh_chain_batch
from repro.walks.models import make_model


class TestTargetDistributions:
    def test_parameters_respected(self):
        pi = make_target_distribution(100, 5, 50.0, rng=0)
        assert pi.size == 100
        assert pi.sum() == pytest.approx(1.0)
        assert (pi == pi.max()).sum() == 5
        assert pi.max() / pi.min() == pytest.approx(50.0)

    def test_uniform_when_ratio_one(self):
        pi = make_target_distribution(10, 3, 1.0, rng=1)
        assert np.allclose(pi, 0.1)

    @pytest.mark.parametrize("bad", [(1, 1, 2.0), (10, 0, 2.0), (10, 10, 2.0), (10, 2, 0.5)])
    def test_invalid_parameters(self, bad):
        n, t, ratio = bad
        with pytest.raises(ValueError):
            make_target_distribution(n, t, ratio)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(3, 200),
        t_frac=st.floats(0.01, 0.9),
        ratio=st.floats(1.0, 1e5),
        seed=st.integers(0, 1000),
    )
    def test_property_valid_distribution(self, n, t_frac, ratio, seed):
        t = max(int(t_frac * n), 1)
        if t >= n:
            t = n - 1
        pi = make_target_distribution(n, t, ratio, rng=seed)
        assert pi.min() > 0
        assert pi.sum() == pytest.approx(1.0)
        # Lemma 1: the max of any n-point distribution is >= 1/n
        assert pi.max() >= 1.0 / n - 1e-12


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.5, 0.5])) > 0

    def test_zero_p_entries_ignored(self):
        p = np.array([0.0, 1.0])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(np.log(2.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(2, 50))
    def test_property_nonnegative(self, seed, n):
        rng = np.random.default_rng(seed)
        p = rng.random(n) + 1e-3
        q = rng.random(n) + 1e-3
        p /= p.sum()
        q /= q.sum()
        assert kl_divergence(p, q) >= -1e-12


class TestChainSimulation:
    def test_chain_converges(self, rng):
        pi = make_target_distribution(20, 2, 10.0, rng=rng)
        samples = mh_chain_sample(pi, 60000, init="random", rng=rng)
        emp = empirical_distribution(samples, 20)
        assert 0.5 * np.abs(emp - pi).sum() < 0.03

    def test_high_weight_starts_at_max(self, rng):
        pi = make_target_distribution(50, 1, 100.0, rng=3)
        samples = mh_chain_sample(pi, 1, init="high-weight", rng=rng)
        assert pi[samples[0]] == pi.max() or True  # first emission may move
        # starting state check via batch internals: draw zero-step init
        from repro.theory.convergence import _initial_states

        starts = _initial_states(pi[None, :], "high-weight", rng, 0)
        assert pi[starts[0]] == pi.max()

    def test_burn_in_init_runs(self, rng):
        pi = make_target_distribution(20, 2, 5.0, rng=4)
        samples = mh_chain_sample(pi, 100, init="burn-in", burn_in_iterations=50, rng=rng)
        assert samples.size == 100

    def test_batch_counts_shape(self, rng):
        targets = np.stack([make_target_distribution(10, 1, 5.0, rng=i) for i in range(4)])
        counts = mh_chain_batch(targets, 200, rng=rng)
        assert counts.shape == (4, 10)
        assert np.all(counts.sum(axis=1) == 200)

    def test_invalid_init(self, rng):
        with pytest.raises(ValueError):
            mh_chain_batch(np.ones((1, 4)) / 4, 10, init="bogus", rng=rng)

    def test_empirical_distribution_empty(self):
        assert np.allclose(empirical_distribution(np.array([], dtype=int), 4), 0.25)


class TestTheorems:
    def test_theorem1_bound_decreasing(self):
        values = [theorem1_bound(5.0, 0.8, i) for i in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_kappa_formulas_match_definition(self):
        """κ = ||π0/π − 1||∞ computed directly vs the closed forms."""
        rng = np.random.default_rng(0)
        for __ in range(50):
            n = int(rng.integers(3, 40))
            t = int(rng.integers(1, n - 1))
            ratio = float(rng.uniform(1.1, 1e4))
            pi = make_target_distribution(n, t, ratio, rng=rng)
            p_max = pi.max()
            # direct computation of the sup norms
            pi0_random = np.full(n, 1.0 / n)
            kappa_r_direct = np.abs(pi0_random / pi - 1.0).max()
            pi0_high = np.where(pi == p_max, 1.0 / t, 0.0)
            kappa_h_direct = np.abs(pi0_high / pi - 1.0).max()
            assert kappa_random(pi) == pytest.approx(kappa_r_direct, rel=1e-9)
            assert kappa_high_weight(pi) == pytest.approx(kappa_h_direct, rel=1e-9)

    def test_theorem3_matches_kappa_comparison(self):
        """Eq. 12 must agree with the exact κ_h < κ_r comparison."""
        rng = np.random.default_rng(1)
        agreements = 0
        total = 0
        for __ in range(200):
            n = int(rng.integers(4, 60))
            t = int(rng.integers(1, max(n // 2, 2)))
            ratio = float(rng.uniform(1.05, 1e5))
            pi = make_target_distribution(n, t, ratio, rng=rng)
            predicted = theorem3_condition(float(pi.max()), float(pi.min()), n, t)
            actual = high_weight_preferred(pi)
            total += 1
            agreements += predicted == actual
        assert agreements / total > 0.95

    def test_skewed_distribution_prefers_high_weight(self):
        pi = make_target_distribution(100, 1, 1e4, rng=2)
        assert theorem3_condition(float(pi.max()), float(pi.min()), 100, 1)
        assert high_weight_preferred(pi)

    def test_flat_distribution_prefers_random(self):
        pi = make_target_distribution(100, 30, 1.5, rng=3)
        assert not theorem3_condition(float(pi.max()), float(pi.min()), 100, 30)


class TestFig1Simulation:
    def test_output_structure(self):
        results = fig1_simulation(
            20, [1, 4], [2.0, 100.0], num_distributions=5, repeats=2, seed=0
        )
        assert len(results) == 4
        for row in results:
            assert row["kl_random"] > 0
            assert row["kl_high_weight"] > 0
            assert row["kl_ratio"] > 0

    def test_high_skew_favours_high_weight(self):
        """The Fig. 1 signature: KL_r/KL_h grows with skew (t small)."""
        results = fig1_simulation(
            60, [1], [1.2, 5e3], num_distributions=60, repeats=6, seed=1
        )
        flat, skewed = results[0], results[1]
        assert skewed["kl_ratio"] > flat["kl_ratio"] - 0.01
        assert skewed["theorem3_predicts_high_weight"]


class TestProfileModelStates:
    def test_profile_outputs(self, small_power_law_graph):
        model = make_model("node2vec", small_power_law_graph, p=0.25, q=4.0)
        out = profile_model_states(small_power_law_graph, model, num_states=100, seed=0)
        assert 0.0 <= out["fraction_satisfied"] <= 1.0
        assert out["num_checked"] > 0

    def test_uniform_model_rarely_satisfies(self, small_unweighted_graph):
        """deepwalk on an unweighted graph has uniform targets: condition
        (12) needs skew, so almost no state should satisfy it."""
        model = make_model("deepwalk", small_unweighted_graph)
        out = profile_model_states(small_unweighted_graph, model, num_states=150, seed=1)
        assert out["fraction_satisfied"] < 0.2

    def test_skewed_node2vec_satisfies_more(self, small_unweighted_graph):
        flat = profile_model_states(
            small_unweighted_graph,
            make_model("node2vec", small_unweighted_graph, p=1.0, q=1.0),
            num_states=150,
            seed=2,
        )
        skewed = profile_model_states(
            small_unweighted_graph,
            make_model("node2vec", small_unweighted_graph, p=0.05, q=1.0),
            num_states=150,
            seed=2,
        )
        assert skewed["fraction_satisfied"] >= flat["fraction_satisfied"]
