"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph.stats import power_law_exponent_estimate


class TestDeterministicGraphs:
    def test_path_graph(self):
        g = gen.path_graph(5)
        assert g.num_edge_entries == 8
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle_graph(self):
        g = gen.cycle_graph(6)
        assert np.all(g.degrees() == 2)

    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert np.all(g.degrees() == 5)

    def test_star_graph(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 6
        assert np.all(g.degrees()[1:] == 1)

    def test_barbell_graph(self):
        g = gen.barbell_graph(5, 2)
        # two 5-cliques plus a bridge path
        assert g.num_nodes == 11
        assert g.degree(0) == 4

    @pytest.mark.parametrize(
        "fn,arg",
        [
            (gen.path_graph, 1),
            (gen.cycle_graph, 2),
            (gen.complete_graph, 1),
            (gen.star_graph, 1),
            (gen.barbell_graph, 1),
        ],
    )
    def test_too_small_rejected(self, fn, arg):
        with pytest.raises(GraphError):
            fn(arg)


class TestRandomFamilies:
    def test_erdos_renyi_size_and_degree(self):
        g = gen.erdos_renyi(500, 8.0, seed=1)
        assert g.num_nodes == 500
        assert 5.0 < g.mean_degree < 9.0

    def test_seed_determinism(self):
        a = gen.erdos_renyi(100, 5.0, seed=3)
        b = gen.erdos_renyi(100, 5.0, seed=3)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = gen.erdos_renyi(100, 5.0, seed=3)
        b = gen.erdos_renyi(100, 5.0, seed=4)
        assert not np.array_equal(a.targets, b.targets)

    def test_chung_lu_power_law_tail(self):
        g = gen.chung_lu_power_law(3000, 10.0, exponent=2.4, seed=2)
        estimate = power_law_exponent_estimate(g)
        assert 1.7 < estimate < 3.2
        # heavy tail: max degree far above the mean
        assert g.degrees().max() > 5 * g.mean_degree

    def test_chung_lu_invalid_exponent(self):
        with pytest.raises(GraphError):
            gen.chung_lu_power_law(100, 5.0, exponent=1.0)

    def test_rmat_shape_and_skew(self):
        g = gen.rmat(10, 16.0, seed=5)
        assert g.num_nodes == 1024
        assert g.degrees().max() > 8 * g.mean_degree

    def test_rmat_invalid_scale(self):
        with pytest.raises(GraphError):
            gen.rmat(0)

    def test_rmat_invalid_quadrants(self):
        with pytest.raises(GraphError):
            gen.rmat(5, a=0.9, b=0.2, c=0.2)

    def test_no_isolated_nodes_by_default(self):
        g = gen.chung_lu_power_law(800, 3.0, seed=6)
        assert int((g.degrees() == 0).sum()) == 0

    def test_no_self_loops(self):
        g = gen.erdos_renyi(200, 6.0, seed=7)
        src, dst, __ = g.edge_list()
        assert not np.any(src == dst)

    def test_weight_modes(self):
        uniform = gen.erdos_renyi(100, 5.0, seed=8, weight_mode="uniform")
        expo = gen.erdos_renyi(100, 5.0, seed=8, weight_mode="exponential")
        assert uniform.is_weighted and expo.is_weighted
        assert uniform.weights.min() >= 0.5 and uniform.weights.max() <= 1.5
        assert expo.weights.min() > 0

    def test_unknown_weight_mode(self):
        with pytest.raises(GraphError):
            gen.erdos_renyi(50, 4.0, seed=0, weight_mode="bogus")

    def test_weights_symmetric(self):
        g = gen.erdos_renyi(100, 6.0, seed=9, weight_mode="uniform")
        src, dst, w = g.edge_list()
        for i in range(0, 50):
            rev = g.edge_index(int(dst[i]), int(src[i]))
            assert w[i] == pytest.approx(g.weights[rev])


class TestCommunityGraphs:
    def test_planted_partition_labels(self):
        g, labels = gen.planted_partition(400, 4, seed=1)
        assert labels.num_labeled == 400
        assert labels.num_classes == 4
        assert not labels.is_multilabel

    def test_planted_partition_homophily(self):
        g, labels = gen.planted_partition(
            600, 3, within_degree=16.0, between_degree=2.0, seed=2
        )
        community = labels.class_ids()
        src, dst, __ = g.edge_list()
        same = (community[src] == community[dst]).mean()
        assert same > 0.6

    def test_planted_partition_validation(self):
        with pytest.raises(GraphError):
            gen.planted_partition(10, 1)
        with pytest.raises(GraphError):
            gen.planted_partition(5, 4)

    def test_overlapping_communities_multilabel(self):
        g, labels = gen.overlapping_communities(300, 8, seed=3)
        assert labels.is_multilabel
        y = labels.indicator_matrix()
        assert y.shape == (300, 8)
        assert y.any(axis=1).all()
        # average membership near the configured mean
        assert 1.0 <= y.sum(axis=1).mean() <= 2.5

    def test_overlapping_membership_cap(self):
        __, labels = gen.overlapping_communities(500, 6, avg_memberships=3.0, seed=4)
        assert labels.indicator_matrix().sum(axis=1).max() <= 4

    def test_overlapping_validation(self):
        with pytest.raises(GraphError):
            gen.overlapping_communities(100, 1)
