"""Tests for the declarative RunSpec / repro.run() experiment API."""

import json

import numpy as np
import pytest

from repro import EvalSpec, GraphSpec, RunSpec, TrainConfig, WalkConfig, run, run_many
from repro.core.runner import apply_override, expand_grid
from repro.errors import ModelError, SpecError
from repro.registry import MODEL_REGISTRY, register_sampler, unregister_sampler
from repro.sampling.base import NO_EDGE
from repro.walks.models.base import RandomWalkModel
from repro.walks.vectorized import StepperBase


def tiny_spec(**overrides):
    defaults = dict(
        graph=GraphSpec(dataset="amazon", scale=0.05, seed=1),
        model="node2vec",
        model_params={"p": 0.5, "q": 2.0},
        walk=WalkConfig(num_walks=1, walk_length=6),
        train=None,
        seed=7,
        name="tiny",
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestRunSpecSerialisation:
    def test_dict_round_trip(self):
        spec = tiny_spec(
            train=TrainConfig(dimensions=16, epochs=2),
            evaluation=EvalSpec(train_fractions=(0.5,), trials=1),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = tiny_spec(train=TrainConfig(dimensions=8))
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert RunSpec.load(path) == spec
        # the file is plain JSON a human can edit
        data = json.loads(path.read_text())
        assert data["model"] == "node2vec"

    def test_top_level_walk_sugar(self):
        spec = RunSpec.from_dict(
            {"graph": {"dataset": "amazon"}, "sampler": "direct", "num_walks": 3}
        )
        assert spec.walk.sampler == "direct"
        assert spec.walk.num_walks == 3

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown RunSpec key"):
            RunSpec.from_dict({"graph": {"dataset": "amazon"}, "modle": "deepwalk"})
        with pytest.raises(SpecError, match="unknown walk config key"):
            RunSpec.from_dict({"graph": {"dataset": "amazon"}, "walk": {"walkers": 3}})


class TestRunSpecValidation:
    def test_unknown_model_param(self):
        with pytest.raises(SpecError, match="unknown parameter"):
            tiny_spec(model="deepwalk").validate()  # deepwalk declares no p/q

    def test_unknown_model_suggests(self):
        with pytest.raises(ModelError, match="did you mean"):
            tiny_spec(model="node2vce", model_params={}).validate()

    def test_graph_source_exclusive(self):
        with pytest.raises(SpecError, match="exactly one"):
            tiny_spec(graph=GraphSpec()).validate()
        with pytest.raises(SpecError, match="exactly one"):
            tiny_spec(graph=GraphSpec(dataset="amazon", edge_list="x.txt")).validate()

    def test_unknown_dataset(self):
        with pytest.raises(SpecError, match="unknown dataset"):
            tiny_spec(graph=GraphSpec(dataset="nope")).validate()

    def test_evaluation_requires_train(self):
        with pytest.raises(SpecError, match="requires a train config"):
            tiny_spec(evaluation=EvalSpec()).validate()

    def test_unknown_evaluation_task(self):
        with pytest.raises(SpecError, match="unknown evaluation task"):
            tiny_spec(
                train=TrainConfig(dimensions=8), evaluation=EvalSpec(task="regression")
            ).validate()


class TestRun:
    def test_walk_only_run(self):
        report = run(tiny_spec())
        assert report.corpus_summary["num_walks"] > 0
        assert report.corpus_summary["token_count"] > 0
        assert report.embeddings is None
        assert report.tl == 0.0
        assert 0 < report.sampler_stats["acceptance_ratio"] <= 1.0
        json.dumps(report.to_dict())  # report is JSON-serialisable

    def test_run_accepts_plain_dict(self):
        report = run(tiny_spec().to_dict())
        assert report.spec.model == "node2vec"

    def test_run_rejects_non_mapping(self):
        with pytest.raises(SpecError, match="RunSpec or a spec mapping"):
            run([tiny_spec().to_dict()])

    def test_full_run_with_evaluation(self):
        spec = RunSpec(
            graph=GraphSpec(dataset="reddit", scale=0.1, seed=2),
            model="deepwalk",
            walk=WalkConfig(num_walks=2, walk_length=10),
            train=TrainConfig(dimensions=16, epochs=1, negative_sharing=True),
            evaluation=EvalSpec(train_fractions=(0.5,), trials=1),
        )
        report = run(spec)
        assert report.embeddings is not None
        assert report.tl > 0
        sweep = report.metrics["classification"]
        assert sweep[0]["train_fraction"] == 0.5
        assert 0.0 <= sweep[0]["micro_f1_mean"] <= 1.0
        row = report.summary_row()
        assert row["model"] == "deepwalk"
        assert "classification.micro_f1_mean" not in row  # metrics are per-entry dicts

    def test_evaluation_needs_labels(self):
        spec = tiny_spec(  # amazon has no labels
            model="deepwalk", model_params={},
            train=TrainConfig(dimensions=8),
            evaluation=EvalSpec(train_fractions=(0.5,), trials=1),
        )
        with pytest.raises(SpecError, match="labeled"):
            run(spec)

    def test_edge_list_graph_source(self, tmp_path, small_unweighted_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.txt"
        save_edge_list(small_unweighted_graph, path)
        report = run(tiny_spec(
            graph=GraphSpec(edge_list=str(path)), model="deepwalk", model_params={},
        ))
        assert report.corpus_summary["num_walks"] == small_unweighted_graph.num_nodes

    def test_seeded_runs_reproduce(self):
        a = run(tiny_spec(), keep_corpus=True)
        b = run(tiny_spec(), keep_corpus=True)
        assert np.array_equal(a.corpus.walks, b.corpus.walks)


class TestRunMany:
    def test_grid_expansion_names_and_fields(self):
        specs = expand_grid(
            tiny_spec(), {"sampler": ["mh", "direct"], "model_params.p": [0.25, 4.0]}
        )
        assert len(specs) == 4
        assert specs[0].walk.sampler == "mh" and specs[0].model_params["p"] == 0.25
        assert specs[3].walk.sampler == "direct" and specs[3].model_params["p"] == 4.0
        assert "sampler=direct" in specs[3].name and "p=4.0" in specs[3].name

    def test_model_sweep_filters_params(self):
        # deepwalk declares no p/q: the sweep must drop them, not crash
        reports = run_many(tiny_spec(), grid={"model": ["deepwalk", "node2vec"]})
        assert [r.spec.model for r in reports] == ["deepwalk", "node2vec"]
        assert reports[0].spec.model_params == {}
        assert reports[1].spec.model_params == {"p": 0.5, "q": 2.0}

    def test_explicit_spec_list(self):
        reports = run_many([tiny_spec(name="a"), tiny_spec(name="b")])
        assert [r.spec.name for r in reports] == ["a", "b"]

    def test_sweep_loads_shared_graph_once(self, monkeypatch):
        loads = []
        original = GraphSpec.load

        def counting_load(self):
            loads.append(self.dataset)
            return original(self)

        monkeypatch.setattr(GraphSpec, "load", counting_load)
        run_many(tiny_spec(), grid={"sampler": ["mh", "direct", "rejection"]})
        assert len(loads) == 1

    def test_apply_override_creates_missing_sections(self):
        data = tiny_spec().to_dict()  # train is None
        apply_override(data, "train.dimensions", 8)
        assert data["train"] == {"dimensions": 8}
        apply_override(data, "initializer", "random")
        assert data["walk"]["initializer"] == "random"

    def test_override_beats_top_level_sugar(self):
        # a spec dict written with the documented top-level sugar must not
        # shadow an explicit override of the same setting
        data = {"graph": {"dataset": "amazon", "scale": 0.05}, "sampler": "mh",
                "num_walks": 1, "walk_length": 6, "train": None}
        apply_override(data, "sampler", "direct")
        assert RunSpec.from_dict(data).walk.sampler == "direct"
        apply_override(data, "walk.num_walks", 2)
        assert RunSpec.from_dict(data).walk.num_walks == 2

    def test_expand_variations(self):
        from repro.core.runner import expand_variations

        specs = expand_variations(
            tiny_spec(),
            [{"sampler": "direct"}, {"model": "deepwalk"}],
            names=["d", "dw"],
        )
        assert specs[0].walk.sampler == "direct" and specs[0].name == "d"
        # model override filters undeclared base params here too
        assert specs[1].model == "deepwalk" and specs[1].model_params == {}


class FixedFanoutWalk(RandomWalkModel):
    """Custom first-order model defined entirely outside the package."""

    name = "fixed-fanout-test"
    order = 1

    def calculate_weight(self, state, edge_offset):
        return 1.0

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets):
        return np.ones(np.asarray(edge_offsets).size, dtype=np.float64)


class UniformStepper(StepperBase):
    """Custom vectorized sampler defined entirely outside the package."""

    name = "uniform-test"

    def __init__(self, graph, model, ctx):
        super().__init__(graph, model)

    def step(self, prev, prev_off, cur, step, rng):
        lo, deg = self._rows(cur)
        cand = lo + (rng.random(cur.size) * np.maximum(deg, 1)).astype(np.int64)
        out = np.where(deg > 0, cand, NO_EDGE)
        self.proposals += cur.size
        self.samples += int((out != NO_EDGE).sum())
        return out


@pytest.fixture
def custom_components():
    """Register a custom model + sampler; always clean up afterwards."""
    MODEL_REGISTRY.register("fixed-fanout-test", FixedFanoutWalk, param_spec={})
    register_sampler("uniform-test", UniformStepper, aliases=("unif-test",))
    try:
        yield
    finally:
        MODEL_REGISTRY.unregister("fixed-fanout-test")
        unregister_sampler("uniform-test")


class TestThirdPartyExtension:
    def test_custom_model_and_sampler_end_to_end(self, custom_components):
        spec = RunSpec(
            graph=GraphSpec(dataset="amazon", scale=0.05, seed=3),
            model="fixed-fanout-test",
            walk=WalkConfig(num_walks=1, walk_length=6, sampler="uniform-test"),
            train=None,
            seed=9,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        report = run(spec)
        assert report.corpus_summary["token_count"] > 0
        assert report.sampler_stats["samples"] > 0

    def test_custom_components_train_pipeline(self, custom_components):
        spec = RunSpec(
            graph=GraphSpec(dataset="amazon", scale=0.05, seed=3),
            model="fixed-fanout-test",
            walk=WalkConfig(num_walks=1, walk_length=6, sampler="unif-test"),
            train=TrainConfig(dimensions=8, epochs=1, negative_sharing=True),
            seed=9,
        )
        report = run(spec)
        assert report.embeddings is not None
        assert report.embeddings.dimensions == 8

    def test_custom_sampler_alias_canonicalised(self, custom_components):
        assert WalkConfig(sampler="unif-test").sampler == "uniform-test"

    def test_scalar_collision_rolls_back_vectorized_half(self, custom_components):
        from repro.errors import WalkError
        from repro.registry import SAMPLER_REGISTRY

        # 'direct' is taken in the scalar registry: the whole registration
        # must fail without leaving 'rollback-test' behind on the
        # vectorized side
        with pytest.raises(WalkError):
            register_sampler(
                "rollback-test", UniformStepper, aliases=("direct",), scalar=object,
            )
        assert "rollback-test" not in SAMPLER_REGISTRY

    def test_duplicate_model_name_rejected(self, custom_components):
        with pytest.raises(ModelError, match="already registered"):
            MODEL_REGISTRY.register("fixed-fanout-test", FixedFanoutWalk)
        with pytest.raises(ModelError, match="already registered"):
            MODEL_REGISTRY.register("deepwalk", FixedFanoutWalk)


class TestCliRun:
    def test_run_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        tiny_spec().save(spec_path)
        out_path = tmp_path / "report.json"
        rc = main([
            "run", "--spec", str(spec_path),
            "--set", "sampler=direct", "--set", "walk.num_walks=2",
            "--output", str(out_path),
        ])
        assert rc == 0
        assert "sampler" in capsys.readouterr().out
        report = json.loads(out_path.read_text())
        assert report["spec"]["walk"]["sampler"] == "direct"
        assert report["spec"]["walk"]["num_walks"] == 2
        assert report["corpus_summary"]["token_count"] > 0

    def test_run_subcommand_reports_spec_errors(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"graph": {"dataset": "nope"}}')
        rc = main(["run", "--spec", str(spec_path)])
        assert rc == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_run_subcommand_rejects_non_object_spec(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text('[1, 2, 3]')
        rc = main(["run", "--spec", str(spec_path)])
        assert rc == 2
        assert "JSON object" in capsys.readouterr().err

    def test_run_subcommand_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["run", "--spec", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "cannot read spec file" in capsys.readouterr().err
