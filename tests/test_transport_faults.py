"""Transport-layer fault sweep: every failure is typed, nothing hangs.

The contract under test (see :mod:`repro.sharding.transport`): a worker
death, a torn frame or a missed deadline raises a ``ShardError`` (or
its ``ShardTimeoutError`` subclass) — never a raw ``OSError``, never a
hang — and marks the transport *broken* so no later call can read a
survivor's stale reply against the wrong op. Remote op errors (the
worker answered) leave the transport usable. After any fault, a fresh
engine on the same graph still produces the monolithic corpus bit for
bit: torn transports never leak state into new ones.

Workers are crashed for real (``ShardWorker.debug_exit`` →
``os._exit``), frames are torn with hand-rolled fake servers, and hangs
are provoked by servers that accept and then go silent.
"""

import os
import socket
import threading

import numpy as np
import pytest

from repro.errors import FrameError, ReproError, ShardError, ShardTimeoutError
from repro.serving.framing import FRAME, recv_frame, send_frame
from repro.sharding import ShardedWalkEngine, wire
from repro.sharding.socket_worker import serve_shard
from repro.walks.vectorized import VectorizedWalkEngine


def _engine(graph, transport, **kw):
    return ShardedWalkEngine(
        graph, "deepwalk", sampler="direct", num_shards=2,
        transport=transport, seed=11, **kw,
    )


def assert_fresh_engine_matches_monolithic(graph, transport):
    """After a fault, a rebuilt engine still matches the monolith bitwise."""
    ref = VectorizedWalkEngine(graph, "deepwalk", sampler="direct", seed=11).generate(1, 8)
    engine = _engine(graph, transport)
    try:
        got = engine.generate(1, 8)
    finally:
        engine.close()
    assert np.array_equal(ref.walks, got.walks)
    assert np.array_equal(ref.lengths, got.lengths)


# ---------------------------------------------------------------------------
# process transport
# ---------------------------------------------------------------------------


class TestProcessTransportFaults:
    def test_worker_crash_mid_call_many_is_typed_and_breaks_transport(
        self, small_unweighted_graph
    ):
        engine = _engine(small_unweighted_graph, "process")
        try:
            # shard 0 dies without replying while shard 1's reply is in
            # flight — the round must fail typed, not deadlock or return
            # shard 1's payload as shard 0's
            with pytest.raises(ShardError, match="died mid-operation"):
                engine.transport.call_many(
                    [(0, "debug_exit", ()), (1, "memory_bytes", ())]
                )
            # the survivor's undelivered reply makes the transport unsafe:
            # reuse is refused instead of reading a stale frame
            with pytest.raises(ShardError, match="broken"):
                engine.transport.call(1, "memory_bytes")
            with pytest.raises(ShardError, match="broken"):
                engine.transport.call_many([(1, "memory_bytes", ())])
        finally:
            engine.close()
        assert_fresh_engine_matches_monolithic(small_unweighted_graph, "process")

    def test_close_is_idempotent_and_closed_transport_refuses(
        self, small_unweighted_graph
    ):
        engine = _engine(small_unweighted_graph, "process")
        engine.close()
        engine.close()  # second close: no _CLOSE re-send, no error
        with pytest.raises(ShardError, match="closed"):
            engine.transport.call(0, "memory_bytes")

    def test_no_fd_growth_across_engine_lifecycles(self, small_unweighted_graph):
        # warm-up build absorbs one-time allocations (multiprocessing
        # machinery, numpy scratch), then the fd count must be flat
        _engine(small_unweighted_graph, "process").close()
        baseline = len(os.listdir("/proc/self/fd"))
        for __ in range(5):
            engine = _engine(small_unweighted_graph, "process")
            engine.generate(1, 5)
            engine.close()
        assert len(os.listdir("/proc/self/fd")) <= baseline


# ---------------------------------------------------------------------------
# socket transport
# ---------------------------------------------------------------------------


class TestSocketTransportFaults:
    def test_worker_killed_mid_run_is_typed(self, small_unweighted_graph):
        engine = _engine(small_unweighted_graph, "socket")
        try:
            with pytest.raises(ShardError):
                engine.transport.call_many(
                    [(0, "debug_exit", ()), (1, "memory_bytes", ())]
                )
            with pytest.raises(ShardError, match="broken"):
                engine.transport.ping()
        finally:
            engine.close()
            engine.close()  # idempotent with a dead worker in the mix
        assert_fresh_engine_matches_monolithic(small_unweighted_graph, "socket")

    def test_unreachable_worker_raises_within_connect_timeout(
        self, small_unweighted_graph
    ):
        # a bound-but-never-accepting listener guarantees a dead address
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        blocker.close()  # nothing listens here now
        with pytest.raises(ShardError, match="cannot reach shard worker"):
            _engine(
                small_unweighted_graph, "socket",
                hosts=[f"127.0.0.1:{port}", f"127.0.0.1:{port}"],
                connect_timeout=0.5,
            )

    def test_hung_worker_hits_call_timeout(self, small_unweighted_graph):
        """A worker that accepts but never answers trips the deadline."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]
        conns = []

        def silent_server():
            for __ in range(2):
                conn, __peer = listener.accept()
                conns.append(conn)  # read nothing, answer nothing

        thread = threading.Thread(target=silent_server, daemon=True)
        thread.start()
        try:
            with pytest.raises(ShardTimeoutError, match="within 0.5s"):
                _engine(
                    small_unweighted_graph, "socket",
                    hosts=[f"127.0.0.1:{port}", f"127.0.0.1:{port}"],
                    call_timeout=0.5,
                )
        finally:
            thread.join(timeout=5)
            for conn in conns:
                conn.close()
            listener.close()

    def test_short_read_mid_frame_is_typed(self, small_unweighted_graph):
        """A server that tears a reply frame produces ShardError, not a hang."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def serve_torn(conn):
            try:
                while True:
                    payload = recv_frame(conn)
                    if payload is None:
                        break
                    kind, __body = wire.decode_message(payload)
                    if kind == wire.KIND_SETUP:
                        send_frame(conn, wire.encode_result(True))
                    elif kind == wire.KIND_PING:
                        send_frame(conn, wire.encode_simple(wire.KIND_PONG))
                    elif kind == wire.KIND_CLOSE:
                        send_frame(conn, wire.encode_simple(wire.KIND_BYE))
                        break
                    else:
                        # announce a 64-byte reply, deliver 3, vanish
                        conn.sendall(FRAME.pack(64) + b"abc")
                        break
            finally:
                conn.close()

        def torn_server():
            handlers = []
            for __ in range(2):
                conn, __peer = listener.accept()
                handler = threading.Thread(target=serve_torn, args=(conn,), daemon=True)
                handler.start()
                handlers.append(handler)
            for handler in handlers:
                handler.join(timeout=10)

        thread = threading.Thread(target=torn_server, daemon=True)
        thread.start()
        engine = None
        try:
            engine = _engine(
                small_unweighted_graph, "socket",
                hosts=[f"127.0.0.1:{port}", f"127.0.0.1:{port}"],
                call_timeout=5.0,
            )
            with pytest.raises(ShardError, match="died mid-operation"):
                engine.transport.call(0, "memory_bytes")
            with pytest.raises(ShardError, match="broken"):
                engine.transport.call(1, "memory_bytes")
        finally:
            if engine is not None:
                engine.close()
            thread.join(timeout=5)
            listener.close()
        assert_fresh_engine_matches_monolithic(small_unweighted_graph, "socket")

    def test_client_short_header_ends_worker_session_cleanly(self):
        """A driver dying mid-header must not wedge or crash the worker."""
        address = {}
        ready = threading.Event()

        def run_worker():
            serve_shard(
                "127.0.0.1", 0, sessions=1,
                on_ready=lambda a: (address.update(addr=a), ready.set()),
            )

        thread = threading.Thread(target=run_worker, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        with socket.create_connection(address["addr"], timeout=5) as sock:
            sock.sendall(b"\x00\x00")  # half a length prefix, then EOF
        thread.join(timeout=10)
        assert not thread.is_alive()  # worker drained, no exception escaped


# ---------------------------------------------------------------------------
# framing + wire codec units
# ---------------------------------------------------------------------------


class TestFramingUnits:
    def test_roundtrip_and_short_read_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"hello shard")
            assert bytes(recv_frame(b)) == b"hello shard"
            # clean EOF between frames is None, not an error
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME.pack(100) + b"only-some-bytes")
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frames_refused_both_directions(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(FrameError, match="refusing to send"):
                send_frame(a, b"x" * 100, max_bytes=10)
            a.sendall(FRAME.pack(1 << 20))
            with pytest.raises(FrameError, match="exceeds ceiling"):
                recv_frame(b, max_bytes=10)
        finally:
            a.close()
            b.close()

    def test_frame_errors_join_the_taxonomy(self):
        assert issubclass(FrameError, ReproError)
        assert issubclass(ShardTimeoutError, ShardError)


class TestWireCodec:
    def test_value_roundtrip_bitwise(self):
        values = (
            None, True, False, 0, -7, 2**40, 3.25, float("inf"), "op-name",
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0, 1, 5, dtype=np.float32),
            np.array([], dtype=np.float64),
            np.ones((2, 2, 2), dtype=np.uint8),
            (1, "two", np.arange(3)),
            {0: (np.arange(2), np.arange(2.0)), 3: (np.array([7]),)},
        )
        payload = wire.encode_result(values)
        kind, decoded = wire.decode_message(payload)
        assert kind == wire.KIND_RESULT

        def check(expect, got):
            if isinstance(expect, np.ndarray):
                assert got.dtype == expect.dtype and got.shape == expect.shape
                assert np.array_equal(got, expect)
            elif isinstance(expect, tuple):
                assert isinstance(got, tuple) and len(got) == len(expect)
                for e, g in zip(expect, got):
                    check(e, g)
            elif isinstance(expect, dict):
                assert sorted(got) == sorted(expect)
                for key in expect:
                    check(expect[key], got[key])
            else:
                assert got == expect and type(got) is type(expect)

        check(values, decoded)

    def test_decoded_arrays_are_writable(self):
        # the receive path hands decode a bytearray (see recv_exactly), so
        # the zero-copy frombuffer views behave like locally allocated arrays
        payload = bytearray(wire.encode_result(np.arange(4)))
        __, decoded = wire.decode_message(payload)
        decoded[0] = 99
        assert decoded[0] == 99

    def test_unencodable_values_raise_at_the_sender(self):
        with pytest.raises(ShardError, match="cannot cross the shard wire"):
            wire.encode_result(object())
        with pytest.raises(ShardError, match="object-dtype"):
            wire.encode_result(np.array([object()]))

    def test_corrupt_payloads_raise_frame_error(self):
        with pytest.raises(FrameError, match="unknown shard message kind"):
            wire.decode_message(b"\xff")
        with pytest.raises(FrameError, match="unknown value tag"):
            wire.decode_message(bytes([wire.KIND_RESULT, 250]))
        with pytest.raises(FrameError, match="truncated"):
            wire.decode_message(bytes([wire.KIND_RESULT, 3, 0, 0]))  # int cut short
        good = wire.encode_result(5)
        with pytest.raises(FrameError, match="trailing bytes"):
            wire.decode_message(good + b"JUNK")
        with pytest.raises(FrameError, match="malformed CALL"):
            wire.decode_message(
                bytes([wire.KIND_CALL]) + wire.encode_result(1)[1:] * 2
            )
