"""Tests for the CSR graph storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, cycle_graph, path_graph


class TestConstruction:
    def test_basic_counts(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        assert g.num_nodes == 5
        assert g.num_edge_entries == 20
        assert g.num_undirected_edges == 10

    def test_offsets_validation(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_targets_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_unsorted_rows_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([1, 0]))

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([-1.0]))

    def test_misaligned_weights_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([1.0, 2.0]))

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_nodes == 0
        assert g.num_edge_entries == 0
        assert g.mean_degree == 0.0


class TestAccessors:
    def test_degree_matches_neighbors(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        for v in range(g.num_nodes):
            assert g.degree(v) == g.neighbors(v).size
        assert np.array_equal(g.degrees(), [g.degree(v) for v in range(5)])

    def test_neighbors_sorted(self, small_power_law_graph):
        g = small_power_law_graph
        for v in range(g.num_nodes):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_neighbor_weights_unweighted_defaults_to_ones(self):
        g = path_graph(4)
        assert np.array_equal(g.neighbor_weights(1), [1.0, 1.0])

    def test_edge_weight_at_scalar_and_array(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        off = g.edge_index(0, 2)
        assert g.edge_weight_at(off) == 2.0
        arr = g.edge_weight_at(np.array([off, off]))
        assert np.array_equal(arr, [2.0, 2.0])

    def test_edge_range(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        lo, hi = g.edge_range(0)
        assert hi - lo == g.degree(0)

    def test_mean_degree(self):
        g = cycle_graph(10)
        assert g.mean_degree == 2.0

    def test_weight_row_sums(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        sums = g.weight_row_sums()
        for v in range(g.num_nodes):
            assert sums[v] == pytest.approx(g.neighbor_weights(v).sum())

    def test_weight_row_sums_with_isolated_node(self):
        g = from_edge_arrays([0], [1], [2.5], num_nodes=3)
        sums = g.weight_row_sums()
        assert sums[2] == 0.0
        assert sums[0] == 2.5

    def test_edge_sources(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        src = g.edge_sources()
        for v in range(g.num_nodes):
            lo, hi = g.edge_range(v)
            assert np.all(src[lo:hi] == v)


class TestEdgeLookup:
    def test_edge_index_present_and_absent(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        off = g.edge_index(0, 3)
        assert g.targets[off] == 3
        assert g.edge_index(0, 0) == -1

    def test_has_edge_symmetry_for_undirected(self, small_power_law_graph):
        g = small_power_law_graph
        rng = np.random.default_rng(0)
        for __ in range(50):
            v = int(rng.integers(g.num_nodes))
            if g.degree(v) == 0:
                continue
            u = int(g.neighbors(v)[0])
            assert g.has_edge(v, u) and g.has_edge(u, v)

    def test_edge_index_batch_agrees_with_scalar(self, small_power_law_graph):
        g = small_power_law_graph
        rng = np.random.default_rng(1)
        src = rng.integers(0, g.num_nodes, 200)
        dst = rng.integers(0, g.num_nodes, 200)
        batch = g.edge_index_batch(src, dst)
        scalar = np.array([g.edge_index(int(s), int(d)) for s, d in zip(src, dst)])
        assert np.array_equal(batch, scalar)

    def test_edge_index_batch_on_real_edges(self, small_power_law_graph):
        g = small_power_law_graph
        src = g.edge_sources()[:100]
        dst = g.targets[:100]
        offs = g.edge_index_batch(src, dst)
        assert np.array_equal(offs, np.arange(100))

    def test_has_edge_batch(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        out = g.has_edge_batch(np.array([0, 0]), np.array([1, 0]))
        assert out.tolist() == [True, False]


class TestInterop:
    def test_networkx_round_trip(self, tiny_weighted_graph):
        nx_graph = tiny_weighted_graph.to_networkx()
        back = CSRGraph.from_networkx(nx_graph)
        assert back.num_nodes == tiny_weighted_graph.num_nodes
        assert np.array_equal(back.targets, tiny_weighted_graph.targets)
        assert np.allclose(back.weights, tiny_weighted_graph.weights)

    def test_degrees_match_networkx(self, small_power_law_graph):
        g = small_power_law_graph
        nx_graph = g.to_networkx()
        for v in range(g.num_nodes):
            assert nx_graph.out_degree(v) == g.degree(v)

    def test_edge_list_shapes(self, tiny_weighted_graph):
        src, dst, w = tiny_weighted_graph.edge_list()
        assert src.size == dst.size == w.size == 20

    def test_memory_bytes_positive(self, tiny_weighted_graph):
        assert tiny_weighted_graph.memory_bytes() > 0

    def test_with_node_types(self, small_unweighted_graph):
        g = small_unweighted_graph
        types = np.zeros(g.num_nodes, dtype=np.int16)
        typed = g.with_node_types(types)
        assert typed.is_heterogeneous
        assert typed.num_node_types == 1
        assert not g.is_heterogeneous

    def test_repr_mentions_kind(self, tiny_weighted_graph):
        assert "weighted=True" in repr(tiny_weighted_graph)


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=60,
    )
)
def test_property_round_trip_edges(edges):
    """Building from edges and reading them back yields the same set."""
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    g = from_edge_arrays(src, dst, num_nodes=15, duplicate_policy="first")
    expected = set()
    for s, d in edges:
        expected.add((s, d))
        expected.add((d, s))
    got_src, got_dst, __ = g.edge_list()
    got = set(zip(got_src.tolist(), got_dst.tolist()))
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=40,
    ),
    queries=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=20),
)
def test_property_edge_index_batch_matches_scalar(edges, queries):
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    g = from_edge_arrays(src, dst, num_nodes=10, duplicate_policy="first")
    qs = np.array([q[0] for q in queries])
    qd = np.array([q[1] for q in queries])
    batch = g.edge_index_batch(qs, qd)
    scalar = [g.edge_index(int(a), int(b)) for a, b in zip(qs, qd)]
    assert batch.tolist() == scalar


def test_complete_graph_edge_lookup_total():
    g = complete_graph(8)
    assert g.num_edge_entries == 8 * 7
    for v in range(8):
        for u in range(8):
            assert g.has_edge(v, u) == (u != v)
