"""Property-based tests on walk/sampler invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edge_arrays
from repro.sampling import DirectSampler, MetropolisHastingsSampler
from repro.sampling.base import NO_EDGE
from repro.walks.models import make_model
from repro.walks.state import WalkerState
from repro.walks.vectorized import VectorizedWalkEngine


def _graph_from_edges(edges, n):
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    return from_edge_arrays(src, dst, num_nodes=n, duplicate_policy="first")


edges_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda e: e[0] != e[1]),
    min_size=3,
    max_size=25,
)


@settings(max_examples=30, deadline=None)
@given(edges=edges_strategy, seed=st.integers(0, 500))
def test_property_mh_samples_stay_in_row(edges, seed):
    """Every M-H sample must be an out-edge of the walker's current node."""
    g = _graph_from_edges(edges, 8)
    model = make_model("node2vec", g, p=0.5, q=2.0)
    sampler = MetropolisHastingsSampler(g, model, initializer="random")
    rng = np.random.default_rng(seed)
    for v in range(g.num_nodes):
        if g.degree(v) == 0:
            continue
        s = int(g.neighbors(v)[0])
        state = WalkerState(current=v, previous=s, prev_edge_offset=g.edge_index(s, v), step=1)
        for __ in range(5):
            off = sampler.sample(g, model, state, rng)
            if off == NO_EDGE:
                break
            lo, hi = g.edge_range(v)
            assert lo <= off < hi


@settings(max_examples=25, deadline=None)
@given(edges=edges_strategy, seed=st.integers(0, 500))
def test_property_walks_are_paths(edges, seed):
    """Every consecutive pair of a generated walk must be an edge."""
    g = _graph_from_edges(edges, 8)
    eng = VectorizedWalkEngine(g, "deepwalk", sampler="mh", seed=seed)
    corpus = eng.generate(num_walks=1, walk_length=6)
    for walk in corpus.iter_walks():
        for a, b in zip(walk[:-1], walk[1:]):
            assert g.has_edge(int(a), int(b))


@settings(max_examples=25, deadline=None)
@given(
    edges=edges_strategy,
    seed=st.integers(0, 500),
    p=st.floats(0.1, 10.0),
    q=st.floats(0.1, 10.0),
)
def test_property_direct_sampler_support(edges, seed, p, q):
    """Direct samples land only on positive-dynamic-weight edges."""
    g = _graph_from_edges(edges, 8)
    model = make_model("node2vec", g, p=p, q=q)
    sampler = DirectSampler()
    rng = np.random.default_rng(seed)
    for v in range(g.num_nodes):
        if g.degree(v) == 0:
            continue
        s = int(g.neighbors(v)[0])
        state = WalkerState(current=v, previous=s, prev_edge_offset=g.edge_index(s, v), step=1)
        off = sampler.sample(g, model, state, rng)
        if off != NO_EDGE:
            assert model.dynamic_weight(g, state, off) > 0


@settings(max_examples=20, deadline=None)
@given(edges=edges_strategy, seed=st.integers(0, 200), length=st.integers(1, 8))
def test_property_corpus_shape_invariants(edges, seed, length):
    """Corpus lengths are within [1, walk_length]; padding only after end."""
    g = _graph_from_edges(edges, 8)
    eng = VectorizedWalkEngine(g, "deepwalk", sampler="direct", seed=seed)
    corpus = eng.generate(num_walks=1, walk_length=length)
    assert corpus.lengths.min() >= 1
    assert corpus.lengths.max() <= length
    for i, walk_len in enumerate(corpus.lengths):
        row = corpus.walks[i]
        assert np.all(row[:walk_len] >= 0)
        assert np.all(row[walk_len:] == -1)


@settings(max_examples=20, deadline=None)
@given(
    weights=st.lists(st.floats(0.01, 100.0), min_size=2, max_size=20),
    seed=st.integers(0, 300),
)
def test_property_mh_chain_matches_direct_on_star(weights, seed):
    """On a star row, long-run M-H frequencies approximate the exact law."""
    n = len(weights)
    src = np.zeros(n, dtype=np.int64)
    dst = np.arange(1, n + 1, dtype=np.int64)
    g = from_edge_arrays(src, dst, np.array(weights), num_nodes=n + 1,
                         duplicate_policy="first")
    model = make_model("deepwalk", g)
    sampler = MetropolisHastingsSampler(g, model, initializer="high-weight")
    rng = np.random.default_rng(seed)
    state = WalkerState(current=0)
    counts = np.zeros(n)
    lo, __ = g.edge_range(0)
    draws = 4000
    for __ in range(draws):
        counts[sampler.sample(g, model, state, rng) - lo] += 1
    expected = np.array(weights) / np.sum(weights)
    # loose bound: dependent samples, small run
    assert 0.5 * np.abs(counts / draws - expected).sum() < 0.25
