"""Tests for GraphBuilder and from_edge_arrays."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edge_arrays


class TestBasicBuild:
    def test_undirected_adds_both_directions(self):
        g = GraphBuilder().add_edge(0, 1).build()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edge_entries == 2

    def test_directed_adds_one_direction(self):
        g = GraphBuilder(directed=True).add_edge(0, 1).build()
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_num_nodes_inferred(self):
        g = GraphBuilder().add_edge(2, 7).build()
        assert g.num_nodes == 8

    def test_num_nodes_explicit_bound_checked(self):
        builder = GraphBuilder(num_nodes=3).add_edge(0, 4)
        with pytest.raises(GraphError):
            builder.build()

    def test_empty_build(self):
        g = GraphBuilder(num_nodes=4).build()
        assert g.num_nodes == 4
        assert g.num_edge_entries == 0

    def test_chaining(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_edge_entries == 4

    def test_num_pending_edges(self):
        builder = GraphBuilder()
        builder.add_edges([0, 1], [1, 2])
        assert builder.num_pending_edges == 2


class TestValidation:
    def test_self_loop_rejected_by_default(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(1, 1)

    def test_self_loop_allowed_when_requested(self):
        g = GraphBuilder(allow_self_loops=True).add_edge(1, 1).build()
        assert g.has_edge(1, 1)

    def test_negative_node_id_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(-1, 0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edges([0, 1], [1])

    def test_bad_weight_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edges([0], [1], [float("nan")])

    def test_unknown_duplicate_policy_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(duplicate_policy="bogus")


class TestDuplicates:
    def _dup_builder(self, policy):
        builder = GraphBuilder(directed=True, duplicate_policy=policy)
        builder.add_edges([0, 0, 0], [1, 1, 1], [1.0, 2.0, 4.0])
        return builder

    def test_sum_policy(self):
        g = self._dup_builder("sum").build()
        assert g.num_edge_entries == 1
        assert g.weights[0] == 7.0

    def test_first_policy(self):
        g = self._dup_builder("first").build()
        assert g.weights[0] == 1.0

    def test_max_policy(self):
        g = self._dup_builder("max").build()
        assert g.weights[0] == 4.0

    def test_error_policy(self):
        with pytest.raises(GraphError):
            self._dup_builder("error").build()

    def test_dedup_keeps_distinct_edges(self):
        builder = GraphBuilder(directed=True, duplicate_policy="sum")
        builder.add_edges([0, 0, 1], [1, 1, 0], [1.0, 1.0, 5.0])
        g = builder.build()
        assert g.num_edge_entries == 2
        assert g.weights[g.edge_index(0, 1)] == 2.0
        assert g.weights[g.edge_index(1, 0)] == 5.0


class TestNodeTypes:
    def test_types_attached(self):
        builder = GraphBuilder(num_nodes=3).add_edge(0, 1)
        builder.set_node_types([0, 1, 1])
        g = builder.build()
        assert g.is_heterogeneous
        assert g.num_node_types == 2

    def test_wrong_length_rejected(self):
        builder = GraphBuilder(num_nodes=3).add_edge(0, 1)
        builder.set_node_types([0, 1])
        with pytest.raises(GraphError):
            builder.build()

    def test_negative_type_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().set_node_types([-1])


class TestEdgeTypes:
    def test_edge_types_symmetrised(self):
        g = from_edge_arrays([0], [1], edge_types=[3], num_nodes=2)
        assert g.edge_types is not None
        assert g.edge_types[g.edge_index(0, 1)] == 3
        assert g.edge_types[g.edge_index(1, 0)] == 3

    def test_no_edge_types_by_default(self):
        g = from_edge_arrays([0], [1], num_nodes=2)
        assert g.edge_types is None


class TestFromEdgeArrays:
    def test_one_shot(self):
        g = from_edge_arrays([0, 1], [1, 2], [1.0, 2.0], num_nodes=3)
        assert g.is_weighted
        assert g.num_edge_entries == 4

    def test_weights_symmetric_for_undirected(self):
        g = from_edge_arrays([0], [1], [2.5], num_nodes=2)
        assert g.weights[g.edge_index(0, 1)] == 2.5
        assert g.weights[g.edge_index(1, 0)] == 2.5

    def test_node_types_passthrough(self):
        g = from_edge_arrays([0], [1], num_nodes=2, node_types=[1, 0])
        assert g.node_types.tolist() == [1, 0]
