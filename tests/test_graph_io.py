"""Tests for graph file IO."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.io import (
    load_edge_list,
    load_node_types,
    load_npz,
    save_edge_list,
    save_npz,
)


class TestEdgeList:
    def test_round_trip_unweighted(self, tmp_path, small_unweighted_graph):
        path = tmp_path / "g.txt"
        save_edge_list(small_unweighted_graph, path)
        back = load_edge_list(path, directed=True)
        assert np.array_equal(back.offsets, small_unweighted_graph.offsets)
        assert np.array_equal(back.targets, small_unweighted_graph.targets)

    def test_round_trip_weighted(self, tmp_path, tiny_weighted_graph):
        path = tmp_path / "g.txt"
        save_edge_list(tiny_weighted_graph, path)
        back = load_edge_list(path, directed=True, weighted=True)
        assert np.allclose(back.weights, tiny_weighted_graph.weights)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edge_entries == 4

    def test_undirected_load_symmetrises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path)
        assert g.has_edge(1, 0)

    def test_missing_weight_column_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path, weighted=True)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)


class TestNodeTypes:
    def test_load_node_types(self, tmp_path):
        path = tmp_path / "types.txt"
        path.write_text("0 1\n1 0\n2 2\n")
        types = load_node_types(path, 3)
        assert types.tolist() == [1, 0, 2]

    def test_missing_assignment_raises(self, tmp_path):
        path = tmp_path / "types.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_node_types(path, 2)

    def test_out_of_range_node_raises(self, tmp_path):
        path = tmp_path / "types.txt"
        path.write_text("5 1\n")
        with pytest.raises(GraphFormatError):
            load_node_types(path, 2)


class TestNpz:
    def test_round_trip_plain(self, tmp_path, small_unweighted_graph):
        path = tmp_path / "g.npz"
        save_npz(small_unweighted_graph, path)
        back = load_npz(path)
        assert np.array_equal(back.targets, small_unweighted_graph.targets)
        assert back.weights is None

    def test_round_trip_typed_weighted(self, tmp_path, academic):
        graph, __ = academic
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        back = load_npz(path)
        assert np.array_equal(back.node_types, graph.node_types)
        assert np.array_equal(back.edge_types, graph.edge_types)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz(tmp_path / "nope.npz")


def test_generated_graph_survives_both_formats(tmp_path):
    g = generators.erdos_renyi(60, 5.0, seed=1, weight_mode="uniform")
    p1 = tmp_path / "a.txt"
    p2 = tmp_path / "b.npz"
    save_edge_list(g, p1)
    save_npz(g, p2)
    from_txt = load_edge_list(p1, directed=True, weighted=True)
    from_npz = load_npz(p2)
    assert np.array_equal(from_txt.targets, from_npz.targets)
    assert np.allclose(from_txt.weights, from_npz.weights, atol=1e-9)
