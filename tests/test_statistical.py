"""Statistical test harness for the samplers (chi-square goodness of fit).

The paper's correctness claim is distributional: M-H walks *converge* to
the same laws the exact (alias/direct) samplers draw from. Unit tests
elsewhere check mechanics; this module checks the distributions
themselves, with fixed seeds (the draws are deterministic, so there is no
flake risk) and a generous alpha — a test fails only when the sampled
distribution is decisively wrong, not on ordinary sampling noise. Each
fit test is paired with a power check that the same statistic *rejects* a
wrong law, so a vacuously-passing harness cannot go unnoticed.
"""

import numpy as np
import pytest
from scipy import stats

from repro.graph import generators
from repro.graph.builder import from_edge_arrays
from repro.sampling.alias import SecondOrderAliasSampler
from repro.sampling.metropolis import MetropolisHastingsSampler
from repro.walks.vectorized import VectorizedWalkEngine
from repro.walks.models import make_model

#: reject the null only below this p-value. Generous on purpose: the
#: seeds are fixed, so this guards against decisive mismatches without
#: tripping on the sampling noise a tighter alpha would flag.
ALPHA = 1e-4


def _irregular_connected_graph(n: int = 24, extra: int = 30, seed: int = 99):
    """Connected, aperiodic, degree-diverse unweighted test graph.

    A path spine guarantees connectivity, two chords off the head create
    triangles (aperiodicity), and random extra edges spread the degrees
    so the degree-proportional law is far from uniform.
    """
    rng = np.random.default_rng(seed)
    src = list(range(n - 1)) + [0, 1]
    dst = list(range(1, n)) + [2, 3]
    for a, b in rng.integers(0, n, size=(extra, 2)):
        if a != b:
            src.append(int(a))
            dst.append(int(b))
    return from_edge_arrays(
        np.array(src), np.array(dst), None, num_nodes=n, duplicate_policy="first"
    )


def _endpoint_counts(graph, *, num_walks: int, walk_length: int, seed: int) -> np.ndarray:
    """Visit counts of walk *endpoints* — one ~independent draw per walk."""
    engine = VectorizedWalkEngine(graph, "deepwalk", sampler="mh", seed=seed)
    corpus = engine.generate(num_walks=num_walks, walk_length=walk_length)
    ends = corpus.walks[np.arange(corpus.num_walks), corpus.lengths - 1]
    return np.bincount(ends, minlength=graph.num_nodes).astype(np.float64)


class TestMHStationaryDistribution:
    """Long M-H walks converge to the degree-proportional stationary law."""

    @pytest.mark.parametrize(
        "graph_factory, seed",
        [
            (lambda: _irregular_connected_graph(), 7),
            (lambda: generators.barbell_graph(8, 3), 11),
        ],
        ids=["irregular", "barbell"],
    )
    def test_endpoints_match_degree_distribution(self, graph_factory, seed):
        graph = graph_factory()
        obs = _endpoint_counts(graph, num_walks=400, walk_length=60, seed=seed)
        degrees = graph.degrees().astype(np.float64)
        expected = degrees / degrees.sum() * obs.sum()
        assert expected.min() > 5, "chi-square needs >= 5 expected per cell"
        __, p = stats.chisquare(obs, expected)
        assert p > ALPHA, f"endpoint distribution rejects degree-proportional (p={p:.2e})"

    def test_thinned_visits_match_degree_distribution(self):
        graph = _irregular_connected_graph()
        engine = VectorizedWalkEngine(graph, "deepwalk", sampler="mh", seed=13)
        corpus = engine.generate(num_walks=400, walk_length=60)
        # drop a burn-in prefix and thin to tame the walk's autocorrelation
        visits = corpus.walks[:, 10::7]
        visits = visits[visits >= 0]
        obs = np.bincount(visits, minlength=graph.num_nodes).astype(np.float64)
        degrees = graph.degrees().astype(np.float64)
        expected = degrees / degrees.sum() * obs.sum()
        __, p = stats.chisquare(obs, expected)
        assert p > ALPHA
        tv = 0.5 * np.abs(obs / obs.sum() - degrees / degrees.sum()).sum()
        assert tv < 0.02

    def test_power_rejects_uniform(self):
        """The harness has teeth: the same statistic rejects a wrong law."""
        graph = _irregular_connected_graph()
        obs = _endpoint_counts(graph, num_walks=400, walk_length=60, seed=7)
        uniform = np.full(graph.num_nodes, obs.sum() / graph.num_nodes)
        __, p = stats.chisquare(obs, uniform)
        assert p < ALPHA


class TestNode2VecTransitionDistribution:
    """M-H acceptance reproduces the exact per-state transition law.

    For one fixed walker state, repeated M-H draws form a chain whose
    marginal converges to the normalised dynamic weights — the *same*
    distribution the per-state alias table samples exactly. Both samplers
    are compared against the analytic law and against each other.
    """

    @pytest.fixture
    def weighted_graph(self):
        src = np.array([0, 0, 0, 0, 1, 2, 3, 1, 3, 3])
        dst = np.array([1, 2, 3, 4, 2, 4, 1, 4, 2, 4])
        w = np.array([1.0, 2.0, 0.5, 3.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0])
        return from_edge_arrays(src, dst, w, num_nodes=5, duplicate_policy="first")

    def _state(self, graph, model, prev: int, current: int):
        offset = graph.edge_index(prev, current)
        assert offset >= 0
        return model.update_state(model.initial_state(prev), offset)

    def _frequencies(self, graph, model, sampler, state, *, draws: int, seed: int):
        lo, hi = graph.edge_range(state.current)
        counts = np.zeros(hi - lo)
        rng = np.random.default_rng(seed)
        for __ in range(draws):
            off = sampler.sample(graph, model, state, rng)
            counts[off - lo] += 1
        return counts

    @pytest.mark.parametrize("p,q", [(0.25, 4.0), (4.0, 0.25)])
    def test_mh_matches_alias_frequencies(self, weighted_graph, p, q):
        graph = weighted_graph
        model = make_model("node2vec", graph, p=p, q=q)
        state = self._state(graph, model, prev=1, current=0)
        weights = model.dynamic_weights_row(graph, state)
        exact = weights / weights.sum()
        draws = 60_000

        mh = MetropolisHastingsSampler(graph, model, initializer="random")
        mh_counts = self._frequencies(graph, model, mh, state, draws=draws, seed=42)
        alias = SecondOrderAliasSampler(graph, model)
        alias_counts = self._frequencies(graph, model, alias, state, draws=draws, seed=43)

        # alias draws are iid from the exact law: a clean chi-square fit
        __, p_alias = stats.chisquare(alias_counts, exact * draws)
        assert p_alias > ALPHA
        # M-H draws are a (fast-mixing) chain targeting the same law
        __, p_mh = stats.chisquare(mh_counts, exact * draws)
        assert p_mh > ALPHA
        # and the two samplers agree with each other within tolerance
        tv = 0.5 * np.abs(mh_counts / draws - alias_counts / draws).sum()
        assert tv < 0.02

    def test_power_mh_rejects_static_law_when_biased(self, weighted_graph):
        """With p, q far from 1 the dynamic law differs from the static
        weights — and the chi-square against the *static* law rejects."""
        graph = weighted_graph
        model = make_model("node2vec", graph, p=0.25, q=4.0)
        state = self._state(graph, model, prev=1, current=0)
        draws = 60_000
        mh = MetropolisHastingsSampler(graph, model, initializer="random")
        counts = self._frequencies(graph, model, mh, state, draws=draws, seed=44)
        static = graph.neighbor_weights(state.current)
        static = static / static.sum()
        __, p_static = stats.chisquare(counts, static * draws)
        assert p_static < ALPHA


class TestMutatedGraphDistribution:
    """Walks on a delta-mutated graph match walks on a cold-built one.

    The dynamic-graph claim is distributional: after ``apply_delta`` +
    affected-only sampler revalidation, the *surviving* M-H chain state
    must not bias the walk law — endpoints still follow the mutated
    graph's degree-proportional stationary distribution, and agree with
    an engine built fresh on the same edge set.
    """

    def _mutate(self, graph, seed: int):
        """A symmetric delta (the storage convention the degree law needs):
        3 undirected removals off the spine + 3 undirected additions."""
        from repro.graph.delta import DeltaPlan, GraphDelta

        rng = np.random.default_rng(seed)
        rem_src, rem_dst = [], []
        while len(rem_src) < 3:
            u = int(rng.integers(graph.num_nodes))
            for v in graph.neighbors(u):
                v = int(v)
                # keep the path spine (connectivity) and avoid duplicates
                if abs(u - v) != 1 and u < v and (u, v) not in zip(rem_src, rem_dst):
                    rem_src.append(u)
                    rem_dst.append(v)
                    break
        add_src, add_dst = [], []
        while len(add_src) < 3:
            u, v = int(rng.integers(graph.num_nodes)), int(rng.integers(graph.num_nodes))
            if u < v and not graph.has_edge(u, v) and (u, v) not in zip(add_src, add_dst):
                add_src.append(u)
                add_dst.append(v)
        delta = GraphDelta.remove_edges(rem_src, rem_dst, symmetric=True).compose(
            GraphDelta.add_edges(add_src, add_dst, symmetric=True)
        )
        return DeltaPlan.build(graph, delta), delta

    def test_mutated_endpoints_match_degree_distribution(self):
        graph = _irregular_connected_graph()
        plan, delta = self._mutate(graph, seed=23)
        engine = VectorizedWalkEngine(graph, "deepwalk", sampler="mh", seed=17)
        engine.generate(num_walks=50, walk_length=30)  # warm the chains
        engine.apply_delta(plan)

        corpus = engine.generate(num_walks=400, walk_length=60)
        ends = corpus.walks[np.arange(corpus.num_walks), corpus.lengths - 1]
        obs = np.bincount(ends, minlength=plan.new_graph.num_nodes).astype(np.float64)
        degrees = plan.new_graph.degrees().astype(np.float64)
        expected = degrees / degrees.sum() * obs.sum()
        keep = expected >= 5  # isolated leftovers fall out of the test
        __, p = stats.chisquare(obs[keep], expected[keep] / expected[keep].sum() * obs[keep].sum())
        assert p > ALPHA, f"mutated-graph endpoints reject degree law (p={p:.2e})"

        # and the surviving chains do not bias the walks relative to a
        # cold engine on the identical edge set
        cold = VectorizedWalkEngine(plan.new_graph, "deepwalk", sampler="mh", seed=91)
        cold_corpus = cold.generate(num_walks=400, walk_length=60)
        cold_ends = cold_corpus.walks[
            np.arange(cold_corpus.num_walks), cold_corpus.lengths - 1
        ]
        cold_obs = np.bincount(cold_ends, minlength=plan.new_graph.num_nodes).astype(np.float64)
        tv = 0.5 * np.abs(obs / obs.sum() - cold_obs / cold_obs.sum()).sum()
        assert tv < 0.05

    def test_power_mutated_walks_reject_premutation_law(self):
        """Teeth: walks on the mutated graph reject the *old* degree law
        when the delta moves enough mass."""
        graph = _irregular_connected_graph()
        from repro.graph.delta import DeltaPlan, GraphDelta

        hub = int(np.argmax(graph.degrees()))
        others = [v for v in range(graph.num_nodes) if v != hub and not graph.has_edge(hub, v)]
        delta = GraphDelta(
            add_src=[hub] * len(others) + others,
            add_dst=others + [hub] * len(others),
        )
        plan = DeltaPlan.build(graph, delta)
        engine = VectorizedWalkEngine(graph, "deepwalk", sampler="mh", seed=29)
        engine.generate(num_walks=20, walk_length=20)
        engine.apply_delta(plan)
        corpus = engine.generate(num_walks=400, walk_length=60)
        ends = corpus.walks[np.arange(corpus.num_walks), corpus.lengths - 1]
        obs = np.bincount(ends, minlength=graph.num_nodes).astype(np.float64)
        old_deg = graph.degrees().astype(np.float64)
        expected = old_deg / old_deg.sum() * obs.sum()
        __, p = stats.chisquare(obs, expected)
        assert p < ALPHA


class TestQuantizedDynamicServing:
    """The dynamic path composed with the codec path stays faithful.

    PR 4's contract is that ``update()`` + ``refresh_embeddings()``
    produces embeddings equivalent to a retrain; PR 5's is that a
    quantized export preserves the similarity structure. This check ties
    them together: after a delta + incremental refresh, the top-k
    neighbour sets served from int8/PQ re-exports must overlap the
    float32 read path above fixed-seed floors (generous slack — the
    draws are deterministic, so a failure is a decisive codec or
    dynamic-path defect, not noise).
    """

    def _refreshed_net(self):
        from repro import UniNet
        from repro.graph.delta import GraphDelta

        graph = generators.chung_lu_power_law(300, 8.0, seed=11, weight_mode="uniform")
        net = UniNet(graph, model="deepwalk", sampler="mh", seed=13)
        net.train(num_walks=6, walk_length=20, dimensions=32, negative_sharing=True)
        rng = np.random.default_rng(3)
        src = rng.integers(0, graph.num_nodes, size=12)
        dst = rng.integers(0, graph.num_nodes, size=12)
        keep = src != dst
        net.update(GraphDelta.add_edges(src[keep], dst[keep], symmetric=True))
        net.refresh_embeddings(num_walks=2)
        assert not net.embeddings_stale
        return net

    @staticmethod
    def _overlap(a, b):
        from repro.serving import topk_overlap

        return topk_overlap(a, b)

    def test_quantized_reexport_preserves_topk(self):
        net = self._refreshed_net()
        keys = np.asarray(net.last_embeddings.keys)
        exact = net.serve(cache_size=0).most_similar_batch(keys, topn=10)

        int8 = net.serve(codec="int8", cache_size=0)
        assert int8.store.is_quantized
        got = int8.most_similar_batch(keys, topn=10)
        overlap = self._overlap(exact, got)
        assert overlap >= 0.75, f"int8 top-10 overlap {overlap:.3f} after refresh"

        pq = net.serve(codec="pq", codec_params={"m": 8, "seed": 0}, cache_size=0)
        got = pq.most_similar_batch(keys, topn=10)
        overlap = self._overlap(exact, got)
        assert overlap >= 0.45, f"pq top-10 overlap {overlap:.3f} after refresh"

    def test_power_shuffled_codes_destroy_overlap(self):
        """Teeth: the same statistic rejects a store whose codes are
        misassigned, so a vacuously-high floor cannot hide breakage."""
        net = self._refreshed_net()
        keys = np.asarray(net.last_embeddings.keys)
        exact = net.serve(cache_size=0).most_similar_batch(keys, topn=10)
        service = net.serve(codec="int8", cache_size=0)
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(service.store))
        service.store.codes = np.asarray(service.store.codes)[perm]
        service.refresh()
        got = service.most_similar_batch(keys, topn=10)
        assert self._overlap(exact, got) < 0.3
