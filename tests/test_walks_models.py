"""Tests for the five random-walk models and the unified abstraction."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graph.builder import from_edge_arrays
from repro.walks.models import MODELS, make_model
from repro.walks.state import NO_PREVIOUS, WalkerState


class TestRegistry:
    def test_all_five_models_present(self):
        assert set(MODELS) == {"deepwalk", "node2vec", "metapath2vec", "edge2vec", "fairwalk"}

    def test_make_model_by_name(self, small_unweighted_graph):
        model = make_model("deepwalk", small_unweighted_graph)
        assert model.name == "deepwalk"

    def test_make_model_passthrough(self, small_unweighted_graph):
        model = make_model("deepwalk", small_unweighted_graph)
        assert make_model(model, small_unweighted_graph) is model

    def test_unknown_model(self, small_unweighted_graph):
        with pytest.raises(ModelError):
            make_model("gnn", small_unweighted_graph)

    def test_heterogeneous_models_need_types(self, small_unweighted_graph):
        for name in ("metapath2vec", "fairwalk"):
            with pytest.raises(ModelError):
                make_model(name, small_unweighted_graph)

    def test_edge2vec_needs_edge_types(self, typed_graph):
        # typed_graph has node+edge types, so this works
        make_model("edge2vec", typed_graph)
        # but a graph with node types only does not
        bare = typed_graph.with_node_types(typed_graph.node_types, None)
        with pytest.raises(ModelError):
            make_model("edge2vec", bare)


class TestDeepWalk:
    def test_dynamic_equals_static(self, tiny_weighted_graph):
        model = make_model("deepwalk", tiny_weighted_graph)
        state = WalkerState(current=0)
        row = model.dynamic_weights_row(tiny_weighted_graph, state)
        assert np.allclose(row, tiny_weighted_graph.neighbor_weights(0))

    def test_state_space_is_nodes(self, tiny_weighted_graph):
        model = make_model("deepwalk", tiny_weighted_graph)
        assert model.state_space_size(tiny_weighted_graph) == 5
        assert model.state_index(tiny_weighted_graph, WalkerState(current=3)) == 3

    def test_is_static_flag(self, tiny_weighted_graph):
        assert make_model("deepwalk", tiny_weighted_graph).is_static
        assert not make_model("node2vec", tiny_weighted_graph).is_static


class TestNode2Vec:
    def test_alpha_classes(self, tiny_weighted_graph):
        """Eq. 2: w/p for the return edge, w for d=1, w/q for d=2."""
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        # neighbours of 0: 1 (adj to 3), 2 (adj to 3), 3 (return), 4 (adj to 3)
        w_ret = model.calculate_weight(state, g.edge_index(0, 3))
        assert w_ret == pytest.approx(0.5 / 0.5)  # w=0.5, alpha=1/p=2
        w_d1 = model.calculate_weight(state, g.edge_index(0, 1))
        assert w_d1 == pytest.approx(1.0)  # w=1, alpha=1 (3-1 edge exists)

    def test_distance_two_case(self):
        # path 0-1-2 plus 1-3: from state (0,1), node 3 is at distance 2 from 0
        g = from_edge_arrays([0, 1, 1], [1, 2, 3], num_nodes=4)
        model = make_model("node2vec", g, p=1.0, q=4.0)
        state = WalkerState(current=1, previous=0, prev_edge_offset=g.edge_index(0, 1), step=1)
        assert model.calculate_weight(state, g.edge_index(1, 3)) == pytest.approx(0.25)

    def test_first_step_uses_static(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.1, q=10.0)
        state = WalkerState(current=0)
        assert state.at_start
        row = model.dynamic_weights_row(g, state)
        assert np.allclose(row, g.neighbor_weights(0))

    def test_state_space_is_edges(self, tiny_weighted_graph):
        model = make_model("node2vec", tiny_weighted_graph)
        assert model.state_space_size(tiny_weighted_graph) == tiny_weighted_graph.num_edge_entries

    def test_start_state_has_no_index(self, tiny_weighted_graph):
        model = make_model("node2vec", tiny_weighted_graph)
        with pytest.raises(ModelError):
            model.state_index(tiny_weighted_graph, WalkerState(current=0))

    def test_invalid_params(self, tiny_weighted_graph):
        with pytest.raises(ModelError):
            make_model("node2vec", tiny_weighted_graph, p=0.0)
        with pytest.raises(ModelError):
            make_model("node2vec", tiny_weighted_graph, q=-1.0)

    def test_alpha_bound(self, tiny_weighted_graph):
        model = make_model("node2vec", tiny_weighted_graph, p=0.25, q=4.0)
        assert model.alpha_bound(tiny_weighted_graph) == 4.0

    def test_batch_matches_scalar(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        lo, hi = g.edge_range(0)
        offs = np.arange(lo, hi)
        batch = model.batch_dynamic_weight(
            np.full(offs.size, 3), np.full(offs.size, g.edge_index(3, 0)),
            np.full(offs.size, 0), 1, offs,
        )
        scalar = [model.calculate_weight(state, int(o)) for o in offs]
        assert np.allclose(batch, scalar)

    def test_fold_outliers_only_when_profitable(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        folding = make_model("node2vec", g, p=0.1, q=1.0)
        offsets, bulk = folding.fold_outliers(g, state)
        assert offsets.tolist() == [g.edge_index(0, 3)]
        assert bulk == 1.0
        no_fold = make_model("node2vec", g, p=2.0, q=1.0)
        assert no_fold.fold_outliers(g, state) is None

    def test_update_state(self, tiny_weighted_graph):
        g = tiny_weighted_graph
        model = make_model("node2vec", g)
        state = WalkerState(current=0)
        off = g.edge_index(0, 2)
        new = model.update_state(state, off)
        assert new.current == 2
        assert new.previous == 0
        assert new.prev_edge_offset == off
        assert new.step == 1


class TestMetaPath2Vec:
    def test_target_type_cycles(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APVPA")
        expected = [1, 2, 1, 0, 1, 2, 1, 0]  # P V P A repeating
        assert [model.target_type(s) for s in range(8)] == expected

    def test_non_cyclic_rejected(self, academic):
        graph, __ = academic
        with pytest.raises(ModelError):
            make_model("metapath2vec", graph, metapath="AP")

    def test_type_out_of_range_rejected(self, academic):
        graph, __ = academic
        with pytest.raises(ModelError):
            make_model("metapath2vec", graph, metapath=[0, 7, 0])

    def test_valid_start_nodes(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        starts = model.valid_start_nodes()
        assert np.all(graph.node_types[starts] == 0)

    def test_weights_zero_off_path(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        author = int(np.flatnonzero(graph.node_types == 0)[0])
        state = WalkerState(current=author, step=0)
        row = model.dynamic_weights_row(graph, state)
        nbr_types = graph.node_types[graph.neighbors(author)]
        assert np.all((row > 0) == (nbr_types == 1))

    def test_state_space_size(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        assert model.state_space_size(graph) == graph.num_nodes * graph.num_node_types

    def test_state_index_layout(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        state = WalkerState(current=5, step=0)
        assert model.state_index(graph, state) == 5 * graph.num_node_types + 1


class TestEdge2Vec:
    def test_matrix_modulates_weight(self, academic):
        graph, __ = academic
        t = graph.num_edge_types
        matrix = np.ones((t, t))
        # author-paper edges have the symmetric pair id of types (0, 1)
        ap = 1
        matrix[ap, ap] = 0.0
        model = make_model("edge2vec", graph, p=1.0, q=1.0, transition_matrix=matrix)
        author = int(np.flatnonzero(graph.node_types == 0)[0])
        paper = int(graph.neighbors(author)[0])
        off_in = graph.edge_index(author, paper)
        state = WalkerState(current=paper, previous=author, prev_edge_offset=off_in, step=1)
        row = model.dynamic_weights_row(graph, state)
        nbr_types = graph.node_types[graph.neighbors(paper)]
        # transitions AP -> PA are zeroed; AP -> PV keep weight
        assert np.all(row[nbr_types == 0] == 0)
        assert np.all(row[nbr_types == 2] > 0)

    def test_bad_matrix_shape(self, academic):
        graph, __ = academic
        with pytest.raises(ModelError):
            make_model("edge2vec", graph, transition_matrix=np.ones((2, 2)))

    def test_negative_matrix_rejected(self, academic):
        graph, __ = academic
        t = graph.num_edge_types
        with pytest.raises(ModelError):
            make_model("edge2vec", graph, transition_matrix=-np.ones((t, t)))

    def test_alpha_bound_includes_matrix(self, academic):
        graph, __ = academic
        t = graph.num_edge_types
        matrix = np.full((t, t), 0.5)
        model = make_model("edge2vec", graph, p=0.25, q=1.0, transition_matrix=matrix)
        assert model.alpha_bound(graph) == pytest.approx(2.0)

    def test_default_matrix_reduces_to_node2vec(self, academic):
        graph, __ = academic
        e2v = make_model("edge2vec", graph, p=0.5, q=2.0)
        n2v = make_model("node2vec", graph, p=0.5, q=2.0)
        author = int(np.flatnonzero(graph.node_types == 0)[0])
        paper = int(graph.neighbors(author)[0])
        off = graph.edge_index(author, paper)
        state = WalkerState(current=paper, previous=author, prev_edge_offset=off, step=1)
        assert np.allclose(
            e2v.dynamic_weights_row(graph, state), n2v.dynamic_weights_row(graph, state)
        )


class TestFairWalk:
    def test_group_mass_equalised(self):
        """Eq. 5: each neighbour *type* gets equal total unnormalised mass."""
        # node 0 has 3 neighbours of type 1 and 1 neighbour of type 2
        g = from_edge_arrays([0, 0, 0, 0], [1, 2, 3, 4], num_nodes=5)
        typed = g.with_node_types(np.array([0, 1, 1, 1, 2], dtype=np.int16))
        model = make_model("fairwalk", typed, p=1.0, q=1.0)
        state = WalkerState(current=0)
        row = model.dynamic_weights_row(typed, state)
        nbr_types = typed.node_types[typed.neighbors(0)]
        mass_t1 = row[nbr_types == 1].sum()
        mass_t2 = row[nbr_types == 2].sum()
        assert mass_t1 == pytest.approx(mass_t2)

    def test_type_counts_precomputed(self, academic):
        graph, __ = academic
        model = make_model("fairwalk", graph)
        paper = int(np.flatnonzero(graph.node_types == 1)[0])
        nbr_types = graph.node_types[graph.neighbors(paper)]
        for t in range(graph.num_node_types):
            assert model.type_counts[paper, t] == (nbr_types == t).sum()

    def test_alpha_bound(self, academic):
        graph, __ = academic
        model = make_model("fairwalk", graph, p=0.2, q=2.0)
        assert model.alpha_bound(graph) == pytest.approx(5.0)

    def test_batch_matches_scalar(self, academic):
        graph, __ = academic
        model = make_model("fairwalk", graph, p=0.5, q=2.0)
        author = int(np.flatnonzero(graph.node_types == 0)[0])
        paper = int(graph.neighbors(author)[0])
        off = graph.edge_index(author, paper)
        state = WalkerState(current=paper, previous=author, prev_edge_offset=off, step=1)
        lo, hi = graph.edge_range(paper)
        offs = np.arange(lo, hi)
        batch = model.batch_dynamic_weight(
            np.full(offs.size, author), np.full(offs.size, off),
            np.full(offs.size, paper), 1, offs,
        )
        scalar = [model.calculate_weight(state, int(o)) for o in offs]
        assert np.allclose(batch, scalar)


class TestStateContexts:
    @pytest.mark.parametrize("name", ["deepwalk", "node2vec"])
    def test_context_shapes(self, small_unweighted_graph, name):
        g = small_unweighted_graph
        model = make_model(name, g)
        ctx = model.enumerate_state_contexts(g)
        size = model.state_space_size(g)
        for key in ("prev", "prev_off", "cur", "step", "valid"):
            assert ctx[key].shape == (size,)

    def test_second_order_contexts_consistent(self, small_unweighted_graph):
        g = small_unweighted_graph
        model = make_model("node2vec", g)
        ctx = model.enumerate_state_contexts(g)
        # state e = directed edge (prev -> cur)
        assert np.array_equal(ctx["cur"], g.targets)
        assert np.array_equal(ctx["prev"], g.edge_sources())

    def test_metapath_contexts_mark_offpath_invalid(self, academic):
        graph, __ = academic
        model = make_model("metapath2vec", graph, metapath="APA")
        ctx = model.enumerate_state_contexts(graph)
        # type V(=2) never appears as a target of "APA"
        idx_type = np.tile(np.arange(graph.num_node_types), graph.num_nodes)
        assert not ctx["valid"][idx_type == 2].any()

    def test_state_table_degrees(self, small_unweighted_graph):
        g = small_unweighted_graph
        model = make_model("node2vec", g)
        table_deg = model.state_table_degrees(g)
        assert np.array_equal(table_deg, g.degrees()[g.targets])
        assert model.alias_entries(g) == int(table_deg.sum())
