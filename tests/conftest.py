"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.builder import from_edge_arrays
from repro.graph.hetero import academic_graph, assign_random_types


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_weighted_graph():
    """5-node weighted graph with a mix of triangles and non-adjacent pairs.

    Handy because node 0's neighbours {1, 2, 3, 4} fall into all three
    node2vec alpha classes relative to a predecessor.
    """
    src = np.array([0, 0, 0, 0, 1, 2, 3, 1, 3, 3])
    dst = np.array([1, 2, 3, 4, 2, 4, 1, 4, 2, 4])
    w = np.array([1.0, 2.0, 0.5, 3.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0])
    return from_edge_arrays(src, dst, w, num_nodes=5, duplicate_policy="first")


@pytest.fixture
def small_power_law_graph():
    return generators.chung_lu_power_law(300, 8.0, seed=42, weight_mode="uniform")


@pytest.fixture
def small_unweighted_graph():
    return generators.chung_lu_power_law(200, 6.0, seed=7)


@pytest.fixture
def typed_graph():
    """Random-typed homogeneous graph (the paper's Section V-D device)."""
    base = generators.chung_lu_power_law(200, 8.0, seed=3)
    return assign_random_types(base, num_types=3, seed=3)


@pytest.fixture
def academic():
    """Small author/paper/venue network plus author-area labels."""
    return academic_graph(num_authors=120, num_papers=200, num_venues=8, seed=5)


@pytest.fixture
def barbell():
    return generators.barbell_graph(10, 3)
