"""Tests for the memory-aware sampler and the simulated memory budget."""

import numpy as np
import pytest

from repro.errors import SamplerError, SimulatedOutOfMemoryError
from repro.sampling import (
    MemoryAwareSampler,
    MemoryBudget,
    MetropolisHastingsSampler,
    RejectionSampler,
    SecondOrderAliasSampler,
    sampler_memory_estimate,
)
from repro.sampling.memory_aware import assign_states_greedily
from repro.sampling.memory_model import (
    ALIAS_ENTRY_BYTES,
    first_order_alias_bytes,
    mh_bytes,
    rejection_bytes,
    second_order_alias_bytes,
)
from repro.walks.models import make_model
from repro.walks.state import WalkerState


def tv_distance(p, q):
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


class TestMemoryBudget:
    def test_charge_within_budget(self):
        budget = MemoryBudget(1000)
        budget.charge(600)
        assert budget.remaining_bytes == 400

    def test_charge_over_budget_raises(self):
        budget = MemoryBudget(1000)
        with pytest.raises(SimulatedOutOfMemoryError) as err:
            budget.charge(1500, "alias")
        assert err.value.required_bytes == 1500
        assert err.value.what == "alias"

    def test_cumulative_charges(self):
        budget = MemoryBudget(1000)
        budget.charge(600)
        with pytest.raises(SimulatedOutOfMemoryError):
            budget.charge(600)

    def test_release(self):
        budget = MemoryBudget(1000)
        budget.charge(800)
        budget.release(500)
        budget.charge(600)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(10).charge(-1)


class TestEstimates:
    def test_ordering_matches_paper(self, small_power_law_graph):
        """alias(2nd) >> rejection >= M-H-scale structures >> direct."""
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        alias2 = sampler_memory_estimate("alias", g, model)
        rej = sampler_memory_estimate("rejection", g, model)
        mh = sampler_memory_estimate("mh", g, model)
        direct = sampler_memory_estimate("direct", g, model)
        assert alias2 > rej > direct
        assert alias2 > mh > direct
        # M-H stores one int per state; rejection needs a full alias table
        assert rej > mh / 2

    def test_mh_bytes_formula(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=1, q=1)
        assert mh_bytes(g, model) == 16 * g.num_edge_entries

    def test_alias_second_order_formula(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=1, q=1)
        degrees = g.degrees()
        expected = int(degrees[g.targets].sum()) * ALIAS_ENTRY_BYTES
        assert second_order_alias_bytes(g, model) == expected

    def test_rejection_free_for_unweighted(self, small_unweighted_graph):
        assert rejection_bytes(small_unweighted_graph) < 1024

    def test_rejection_costs_alias_for_weighted(self, small_power_law_graph):
        assert rejection_bytes(small_power_law_graph) == first_order_alias_bytes(
            small_power_law_graph
        )

    def test_unknown_kind(self, small_power_law_graph):
        model = make_model("deepwalk", small_power_law_graph)
        with pytest.raises(ValueError):
            sampler_memory_estimate("bogus", small_power_law_graph, model)


class TestBudgetEnforcement:
    def test_alias_ooms_under_tight_budget(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        budget = MemoryBudget(second_order_alias_bytes(g, model) // 2)
        with pytest.raises(SimulatedOutOfMemoryError):
            SecondOrderAliasSampler(g, model, budget=budget)

    def test_mh_fits_where_alias_ooms(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        budget = MemoryBudget(second_order_alias_bytes(g, model) // 2)
        MetropolisHastingsSampler(g, model, budget=budget)  # must not raise

    def test_rejection_charges_budget(self, small_power_law_graph):
        g = small_power_law_graph
        budget = MemoryBudget(rejection_bytes(g) + 64)
        RejectionSampler(g, budget=budget)
        assert budget.used_bytes >= rejection_bytes(g)


class TestMemoryAwareSampler:
    def test_assignment_respects_budget(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        budget_bytes = 40_000
        mask = assign_states_greedily(g, model, budget_bytes)
        cost = int(model.state_table_degrees(g)[mask].sum()) * ALIAS_ENTRY_BYTES
        assert cost <= budget_bytes

    def test_assignment_prefers_high_degree_states(self, small_power_law_graph):
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        mask = assign_states_greedily(g, model, 20_000)
        table_degrees = model.state_table_degrees(g)
        if mask.any() and not mask.all():
            assert table_degrees[mask].min() >= np.median(table_degrees[~mask])

    def test_zero_budget_means_all_direct(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.5, q=2.0)
        sampler = MemoryAwareSampler(g, model, table_budget_bytes=0)
        assert sampler.num_assigned_states == 0
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        assert sampler.sample(g, model, state, rng) >= 0

    def test_distribution_exact_in_both_regimes(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        state = WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)
        exact = model.dynamic_weights_row(g, state)
        exact = exact / exact.sum()
        lo, __ = g.edge_range(0)
        for budget_bytes in (0, 10_000_000):
            sampler = MemoryAwareSampler(g, model, table_budget_bytes=budget_bytes)
            counts = np.zeros(g.degree(0))
            for __ in range(30000):
                counts[sampler.sample(g, model, state, rng) - lo] += 1
            assert tv_distance(counts / counts.sum(), exact) < 0.025

    def test_negative_budget_rejected(self, tiny_weighted_graph):
        model = make_model("deepwalk", tiny_weighted_graph)
        with pytest.raises(SamplerError):
            MemoryAwareSampler(tiny_weighted_graph, model, table_budget_bytes=-1)
