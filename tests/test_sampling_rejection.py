"""Tests for rejection sampling and KnightKing outlier folding."""

import numpy as np
import pytest

from repro.sampling import KnightKingSampler, RejectionSampler
from repro.walks.models import make_model
from repro.walks.state import WalkerState


def tv_distance(p, q):
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def empirical(sampler, graph, model, state, rng, n=40000):
    lo, hi = graph.edge_range(state.current)
    counts = np.zeros(hi - lo)
    for __ in range(n):
        off = sampler.sample(graph, model, state, rng)
        counts[off - lo] += 1
    return counts / counts.sum()


@pytest.fixture
def n2v_state(tiny_weighted_graph):
    g = tiny_weighted_graph
    return WalkerState(current=0, previous=3, prev_edge_offset=g.edge_index(3, 0), step=1)


class TestRejectionSampler:
    def test_unbiased_for_node2vec(self, tiny_weighted_graph, n2v_state, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.25, q=4.0)
        sampler = RejectionSampler(g)
        exact = model.dynamic_weights_row(g, n2v_state)
        exact = exact / exact.sum()
        assert tv_distance(empirical(sampler, g, model, n2v_state, rng), exact) < 0.02

    def test_acceptance_one_for_deepwalk(self, tiny_weighted_graph, rng):
        g = tiny_weighted_graph
        model = make_model("deepwalk", g)
        sampler = RejectionSampler(g)
        state = WalkerState(current=0)
        for __ in range(500):
            sampler.sample(g, model, state, rng)
        assert sampler.stats.acceptance_ratio == pytest.approx(1.0)

    def test_acceptance_degrades_with_skewed_params(self, small_power_law_graph, rng):
        """Table II's effect: acceptance falls as (p, q) skew the target."""
        g = small_power_law_graph
        ratios = {}
        for p, q in [(1.0, 1.0), (0.25, 1.0)]:
            model = make_model("node2vec", g, p=p, q=q)
            sampler = RejectionSampler(g)
            state = None
            count = 0
            rng_local = np.random.default_rng(5)
            for v in range(0, g.num_nodes, 3):
                if g.degree(v) == 0:
                    continue
                s = int(g.neighbors(v)[0])
                state = WalkerState(current=v, previous=s, prev_edge_offset=g.edge_index(s, v), step=1)
                for __ in range(20):
                    sampler.sample(g, model, state, rng_local)
                    count += 1
            ratios[(p, q)] = sampler.stats.acceptance_ratio
        assert ratios[(1.0, 1.0)] > 0.95
        assert ratios[(0.25, 1.0)] < 0.7

    def test_max_tries_validated(self, tiny_weighted_graph):
        with pytest.raises(Exception):
            RejectionSampler(tiny_weighted_graph, max_tries=0)


class TestKnightKing:
    def test_folding_preserves_distribution(self, tiny_weighted_graph, n2v_state, rng):
        """The excess/bulk mixture must stay exact (small p triggers folding)."""
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=0.1, q=1.0)
        assert model.supports_folding
        sampler = KnightKingSampler(g)
        exact = model.dynamic_weights_row(g, n2v_state)
        exact = exact / exact.sum()
        assert tv_distance(empirical(sampler, g, model, n2v_state, rng), exact) < 0.02

    def test_folding_beats_plain_rejection_acceptance(self, small_power_law_graph, rng):
        """With a 1/p outlier, folding should raise the acceptance ratio."""
        g = small_power_law_graph
        model = make_model("node2vec", g, p=0.1, q=1.0)
        results = {}
        for cls in (RejectionSampler, KnightKingSampler):
            sampler = cls(g)
            rng_local = np.random.default_rng(6)
            for v in range(0, g.num_nodes, 5):
                if g.degree(v) == 0:
                    continue
                s = int(g.neighbors(v)[0])
                state = WalkerState(current=v, previous=s, prev_edge_offset=g.edge_index(s, v), step=1)
                for __ in range(10):
                    sampler.sample(g, model, state, rng_local)
            results[cls.__name__] = sampler.stats.acceptance_ratio
        assert results["KnightKingSampler"] > results["RejectionSampler"]

    def test_falls_back_without_outliers(self, tiny_weighted_graph, n2v_state, rng):
        g = tiny_weighted_graph
        model = make_model("node2vec", g, p=4.0, q=1.0)  # 1/p < bulk: no folding
        assert not model.supports_folding
        sampler = KnightKingSampler(g)
        exact = model.dynamic_weights_row(g, n2v_state)
        exact = exact / exact.sum()
        assert tv_distance(empirical(sampler, g, model, n2v_state, rng), exact) < 0.02

    def test_folding_not_used_for_hetero_models(self, academic, rng):
        """edge2vec/fairwalk report no foldable outliers (paper V-D)."""
        graph, __ = academic
        for name in ("edge2vec", "fairwalk"):
            model = make_model(name, graph, p=0.1, q=1.0)
            assert model.fold_outliers(graph, None) is None
