"""Tests for the embedding subsystem: vocab, negatives, word2vec, vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError, VocabularyError
from repro.embedding import KeyedVectors, NegativeSampler, Vocabulary, Word2Vec
from repro.embedding.word2vec import scatter_add_rows
from repro.walks.corpus import WalkCorpus


class TestVocabulary:
    def test_frequency_ordering(self):
        vocab = Vocabulary(np.array([3, 10, 1, 7]))
        assert vocab.tokens.tolist() == [1, 3, 0, 2]
        assert vocab.counts.tolist() == [10, 7, 3, 1]

    def test_min_count_filters(self):
        vocab = Vocabulary(np.array([3, 10, 1, 7]), min_count=3)
        assert 2 not in vocab.tokens
        assert vocab.size == 3

    def test_index_lookup(self):
        vocab = Vocabulary(np.array([3, 10, 1]))
        assert vocab.index(1) == 0
        assert vocab.index(2) == vocab.tokens.tolist().index(2)
        assert vocab.index(99) == -1

    def test_encode_handles_padding_and_dropped(self):
        vocab = Vocabulary(np.array([5, 0, 5]), min_count=2)
        encoded = vocab.encode(np.array([0, 1, 2, -1]))
        assert encoded[1] == -1  # dropped by min_count
        assert encoded[3] == -1  # padding
        assert encoded[0] >= 0 and encoded[2] >= 0

    def test_encode_out_of_range_ids(self):
        vocab = Vocabulary(np.array([5, 3]))
        encoded = vocab.encode(np.array([0, 1, 2, 99]))
        assert encoded[2] == -1 and encoded[3] == -1

    def test_from_corpus(self):
        corpus = WalkCorpus.from_lists([[0, 1, 1], [2, 1]])
        vocab = Vocabulary.from_corpus(corpus, 3)
        assert vocab.tokens[0] == 1  # most frequent first
        assert vocab.total_count == 5

    def test_empty_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary(np.array([0, 0]))

    def test_subsample_probs(self):
        vocab = Vocabulary(np.array([100000, 10]))
        probs = vocab.subsample_keep_probs(1e-3)
        assert probs[0] < 1.0  # frequent token gets subsampled
        assert probs[1] == 1.0  # rare token always kept
        assert np.all(vocab.subsample_keep_probs(0) == 1.0)


class TestNegativeSampler:
    def test_distribution_follows_power(self, rng):
        counts = np.array([1000.0, 100.0, 10.0])
        sampler = NegativeSampler(counts)
        expected = counts**0.75
        expected /= expected.sum()
        draws = sampler.draw(rng, 200000)
        freq = np.bincount(draws, minlength=3) / 200000
        assert 0.5 * np.abs(freq - expected).sum() < 0.01

    def test_probabilities_sum_to_one(self):
        sampler = NegativeSampler(np.array([5.0, 2.0, 3.0]))
        assert sampler.probabilities().sum() == pytest.approx(1.0)

    def test_shape_passthrough(self, rng):
        sampler = NegativeSampler(np.array([1.0, 1.0]))
        assert sampler.draw(rng, (4, 5)).shape == (4, 5)

    def test_invalid_counts(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([]))
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([-1.0, 2.0]))
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([0.0, 0.0]))


class TestScatterAddRows:
    def test_matches_add_at(self, rng):
        matrix = rng.standard_normal((20, 8)).astype(np.float32)
        reference = matrix.copy()
        rows = rng.integers(0, 20, 100)
        updates = rng.standard_normal((100, 8)).astype(np.float32)
        scatter_add_rows(matrix, rows, updates)
        np.add.at(reference, rows, updates)
        assert np.allclose(matrix, reference, atol=1e-4)

    def test_clip_bounds_row_step(self, rng):
        matrix = np.zeros((4, 8), dtype=np.float32)
        rows = np.zeros(50, dtype=np.int64)
        updates = np.ones((50, 8), dtype=np.float32)
        scatter_add_rows(matrix, rows, updates, clip=1.0)
        assert np.linalg.norm(matrix[0]) == pytest.approx(1.0, rel=1e-5)

    def test_empty_noop(self):
        matrix = np.ones((2, 2), dtype=np.float32)
        scatter_add_rows(matrix, np.empty(0, dtype=np.int64), np.empty((0, 2), dtype=np.float32))
        assert np.all(matrix == 1.0)


class TestWord2VecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimensions": 0},
            {"window": 0},
            {"negative": 0},
            {"epochs": 0},
            {"alpha": 0.0},
            {"mode": "glove"},
        ],
    )
    def test_bad_params(self, kwargs):
        base = {"dimensions": 8}
        base.update(kwargs)
        with pytest.raises(TrainingError):
            Word2Vec(**base)

    def test_too_short_walks_rejected(self):
        corpus = WalkCorpus.from_lists([[0], [1]])
        with pytest.raises(TrainingError):
            Word2Vec(dimensions=4).fit(corpus, num_nodes=2)


class TestWord2VecTraining:
    @pytest.fixture
    def barbell_corpus(self, barbell):
        from repro.walks.vectorized import VectorizedWalkEngine

        eng = VectorizedWalkEngine(barbell, "deepwalk", sampler="mh", seed=1)
        return barbell, eng.generate(num_walks=15, walk_length=30)

    def test_loss_decreases(self, barbell_corpus):
        graph, corpus = barbell_corpus
        w2v = Word2Vec(dimensions=24, epochs=3, seed=2)
        w2v.fit(corpus, num_nodes=graph.num_nodes)
        first = np.mean(w2v.training_loss_[:5])
        last = np.mean(w2v.training_loss_[-5:])
        assert last < first

    @pytest.mark.parametrize("mode", ["skipgram", "cbow"])
    def test_learns_community_structure(self, barbell_corpus, mode):
        graph, corpus = barbell_corpus
        kv = Word2Vec(dimensions=24, epochs=4, mode=mode, seed=3).fit(
            corpus, num_nodes=graph.num_nodes
        )
        within = kv.similarity(0, 1)
        across = kv.similarity(0, graph.num_nodes - 1)
        assert within > across + 0.15

    def test_negative_sharing_equivalent_quality(self, barbell_corpus):
        graph, corpus = barbell_corpus
        kv = Word2Vec(dimensions=24, epochs=4, negative_sharing=True, seed=4).fit(
            corpus, num_nodes=graph.num_nodes
        )
        assert kv.similarity(0, 1) > kv.similarity(0, graph.num_nodes - 1) + 0.15

    def test_deterministic_given_seed(self, barbell_corpus):
        graph, corpus = barbell_corpus
        kv1 = Word2Vec(dimensions=8, epochs=1, seed=5).fit(corpus, num_nodes=graph.num_nodes)
        kv2 = Word2Vec(dimensions=8, epochs=1, seed=5).fit(corpus, num_nodes=graph.num_nodes)
        assert np.array_equal(kv1.vectors, kv2.vectors)

    def test_all_nodes_embedded(self, barbell_corpus):
        graph, corpus = barbell_corpus
        kv = Word2Vec(dimensions=8, epochs=1, seed=6).fit(corpus, num_nodes=graph.num_nodes)
        assert len(kv) == graph.num_nodes

    def test_min_count_drops_rare(self):
        corpus = WalkCorpus.from_lists([[0, 1, 0, 1, 0, 1, 2]])
        kv = Word2Vec(dimensions=4, epochs=1, min_count=2, seed=7).fit(corpus, num_nodes=3)
        assert 2 not in kv
        assert 0 in kv

    def test_subsample_runs(self, barbell_corpus):
        graph, corpus = barbell_corpus
        kv = Word2Vec(dimensions=8, epochs=1, subsample=1e-2, seed=8).fit(
            corpus, num_nodes=graph.num_nodes
        )
        assert kv.dimensions == 8

    def test_pair_generation_counts(self, rng):
        w2v = Word2Vec(dimensions=4, window=2, seed=9)
        encoded = np.array([[0, 1, 2, 3]])
        totals = []
        for __ in range(300):
            c, o = w2v._generate_pairs(encoded, rng)
            totals.append(c.size)
        # distance-1 pairs always kept (3*2), distance-2 kept w.p. 1/2 (2*2)
        assert abs(np.mean(totals) - (6 + 2)) < 0.5

    def test_pair_positions_align(self, rng):
        w2v = Word2Vec(dimensions=4, window=2, seed=10)
        encoded = np.array([[4, 5, 6]])
        c, o, pos = w2v._generate_pairs(encoded, rng, with_positions=True)
        for center, position in zip(c, pos):
            assert encoded.ravel()[position] == center


class TestKeyedVectors:
    @pytest.fixture
    def kv(self):
        keys = np.array([3, 7, 9])
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        return KeyedVectors(keys, vectors)

    def test_lookup(self, kv):
        assert np.array_equal(kv[7], [0.0, 1.0])
        assert 7 in kv and 4 not in kv
        with pytest.raises(VocabularyError):
            kv.vector(4)

    def test_similarity(self, kv):
        assert kv.similarity(3, 7) == pytest.approx(0.0)
        assert kv.similarity(3, 9) == pytest.approx(1 / np.sqrt(2))

    def test_most_similar_by_key(self, kv):
        result = kv.most_similar(3, topn=2)
        assert result[0][0] == 9
        assert all(key != 3 for key, __ in result)

    def test_most_similar_by_vector(self, kv):
        result = kv.most_similar(np.array([1.0, 0.0]), topn=1)
        assert result[0][0] == 3

    def test_matrix_for(self, kv):
        mat = kv.matrix_for([9, 3])
        assert np.array_equal(mat, [[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(VocabularyError):
            kv.matrix_for([4])
        zeros = kv.matrix_for([4, 7], missing="zeros")
        assert np.array_equal(zeros[0], [0.0, 0.0])

    def test_save_load(self, kv, tmp_path):
        path = tmp_path / "kv.npz"
        kv.save_npz(path)
        back = KeyedVectors.load_npz(path)
        assert np.array_equal(back.keys, kv.keys)
        assert np.array_equal(back.vectors, kv.vectors)

    def test_save_load_without_npz_suffix(self, kv, tmp_path):
        # numpy appends ".npz" to a suffix-less save path; load_npz must
        # find the file numpy actually wrote
        path = tmp_path / "vectors"
        kv.save_npz(path)
        assert not path.exists() and path.with_suffix(".npz").exists()
        back = KeyedVectors.load_npz(path)
        assert np.array_equal(back.keys, kv.keys)
        assert np.array_equal(back.vectors, kv.vectors)

    def test_load_missing_file_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            KeyedVectors.load_npz(tmp_path / "nothing-here")

    def test_most_similar_excludes_query_key(self, kv):
        for key in (3, 7, 9):
            result = kv.most_similar(key, topn=10)
            assert all(other != key for other, __ in result)

    def test_most_similar_topn_exceeds_size(self, kv):
        # key query: everything except the key itself
        assert len(kv.most_similar(3, topn=100)) == len(kv) - 1
        # vector query: everything (no exclusion)
        assert len(kv.most_similar(np.array([1.0, 0.5]), topn=100)) == len(kv)

    def test_matrix_for_missing_branches(self, kv):
        with pytest.raises(VocabularyError, match="node 4"):
            kv.matrix_for([3, 4], missing="error")
        zeros = kv.matrix_for([4, 9, -1], missing="zeros")
        assert np.array_equal(zeros[0], [0.0, 0.0])
        assert np.array_equal(zeros[1], kv[9])
        assert np.array_equal(zeros[2], [0.0, 0.0])

    def test_matrix_for_empty(self, kv):
        assert kv.matrix_for([]).shape == (0, 2)

    def test_misaligned_rejected(self):
        with pytest.raises(VocabularyError):
            KeyedVectors(np.array([1]), np.zeros((2, 3)))


@settings(max_examples=25, deadline=None)
@given(counts=st.lists(st.integers(1, 500), min_size=2, max_size=40))
def test_property_vocab_total_preserved(counts):
    vocab = Vocabulary(np.array(counts))
    assert vocab.total_count == sum(counts)
    assert np.all(np.diff(vocab.counts) <= 0)  # frequency-sorted
