"""End-to-end integration tests across the whole stack.

These are the "does the reproduction actually work" checks: every model x
sampler combination trains, embeddings carry enough structure for
downstream classification to beat chance, and the simulated-memory story
(alias OOMs, M-H fits) holds on one realistic configuration.
"""

import numpy as np
import pytest

from repro import UniNet
from repro.errors import SimulatedOutOfMemoryError
from repro.evaluation import classification_sweep
from repro.graph import datasets
from repro.sampling import MemoryBudget
from repro.sampling.memory_model import mh_bytes, second_order_alias_bytes
from repro.walks.models import make_model


@pytest.fixture(scope="module")
def labeled_graph():
    return datasets.load("blogcatalog", scale=0.15, seed=11)


@pytest.fixture(scope="module")
def hetero_graph():
    return datasets.load("aminer", scale=0.05, seed=12)


class TestEveryModelTrains:
    @pytest.mark.parametrize("sampler", ["mh", "direct", "rejection"])
    def test_deepwalk_and_node2vec(self, labeled_graph, sampler):
        graph, __ = labeled_graph
        for model, params in [("deepwalk", {}), ("node2vec", {"p": 0.5, "q": 2.0})]:
            net = UniNet(graph, model=model, sampler=sampler, seed=13, **params)
            result = net.train(num_walks=1, walk_length=10, dimensions=8, epochs=1)
            assert len(result.embeddings) > 0

    @pytest.mark.parametrize(
        "model,params",
        [
            ("metapath2vec", {"metapath": "APA"}),
            ("metapath2vec", {"metapath": "APVPA"}),
            ("edge2vec", {"p": 0.5, "q": 2.0}),
            ("fairwalk", {"p": 0.5, "q": 2.0}),
        ],
    )
    def test_heterogeneous_models(self, hetero_graph, model, params):
        graph, __ = hetero_graph
        net = UniNet(graph, model=model, sampler="mh", seed=14, **params)
        result = net.train(num_walks=1, walk_length=9, dimensions=8, epochs=1)
        assert len(result.embeddings) > 0


class TestDownstreamAccuracy:
    def test_deepwalk_beats_chance_on_multilabel(self, labeled_graph):
        graph, labels = labeled_graph
        net = UniNet(graph, model="deepwalk", seed=15)
        result = net.train(
            num_walks=6, walk_length=30, dimensions=48, epochs=2, negative_sharing=True
        )
        sweep = classification_sweep(
            result.embeddings, labels, train_fractions=(0.5,), trials=2, seed=16
        )
        # random guessing on ~20 overlapping groups scores far below this
        assert sweep[0]["micro_f1_mean"] > 0.25

    def test_metapath2vec_classifies_authors(self, hetero_graph):
        graph, labels = hetero_graph
        net = UniNet(graph, model="metapath2vec", metapath="APVPA", seed=17)
        result = net.train(
            num_walks=8, walk_length=25, dimensions=48, epochs=3, negative_sharing=True
        )
        sweep = classification_sweep(
            result.embeddings, labels, train_fractions=(0.5,), trials=2, seed=18
        )
        num_classes = labels.num_classes
        assert sweep[0]["micro_f1_mean"] > 1.5 / num_classes


class TestMemoryStory:
    def test_alias_ooms_mh_fits_same_budget(self, labeled_graph):
        """Table VII's central claim at test scale."""
        graph, __ = labeled_graph
        model = make_model("node2vec", graph, p=0.5, q=2.0)
        budget_bytes = second_order_alias_bytes(graph, model) // 2
        assert budget_bytes > mh_bytes(graph, model)

        with pytest.raises(SimulatedOutOfMemoryError):
            UniNet(
                graph, model="node2vec", sampler="alias",
                budget=MemoryBudget(budget_bytes), p=0.5, q=2.0, seed=19,
            ).generate_walks(num_walks=1, walk_length=5)

        net = UniNet(
            graph, model="node2vec", sampler="mh",
            budget=MemoryBudget(budget_bytes), p=0.5, q=2.0, seed=19,
        )
        corpus = net.generate_walks(num_walks=1, walk_length=5)
        assert corpus.token_count > 0


class TestInitializationStrategies:
    def test_high_weight_at_least_as_accurate_as_random(self, labeled_graph):
        """Fig. 5's observation: with node2vec's skewed targets, random
        initialization costs accuracy while high-weight keeps it. At the
        small walk counts used here each chain is consulted only a few
        times, so the effect is amplified relative to the paper's
        full-scale runs — the *ordering* is the claim under test."""
        graph, labels = labeled_graph
        scores = {}
        for strategy in ("random", "high-weight"):
            net = UniNet(
                graph, model="node2vec", sampler="mh", initializer=strategy,
                p=0.25, q=2.0, seed=20,
            )
            result = net.train(
                num_walks=5, walk_length=25, dimensions=32, epochs=2,
                negative_sharing=True,
            )
            sweep = classification_sweep(
                result.embeddings, labels, train_fractions=(0.5,), trials=2, seed=21
            )
            scores[strategy] = sweep[0]["micro_f1_mean"]
        assert scores["high-weight"] >= scores["random"] - 0.05
        assert scores["high-weight"] > 0.3


class TestAcceptanceRatioShape:
    def test_table2_shape(self, labeled_graph):
        """Rejection acceptance: ~1.0 at (1,1), degraded at (0.25,1)."""
        graph, __ = labeled_graph
        ratios = {}
        for p, q in [(1.0, 1.0), (0.25, 1.0)]:
            net = UniNet(graph, model="node2vec", sampler="rejection", p=p, q=q, seed=22)
            config = net.walk_config(1, 10)
            from repro.core.pipeline import generate_walks

            __, engine, ___ = generate_walks(graph, net.model, config, seed=22)
            ratios[(p, q)] = engine.stats()["acceptance_ratio"]
        assert ratios[(1.0, 1.0)] > 0.95
        assert ratios[(0.25, 1.0)] < ratios[(1.0, 1.0)]
