"""Randomized correctness/recall harness for the serving codec layer.

Three layers of certification, mirroring the chi-square suite's
philosophy of fixed seeds + generous thresholds (deterministic draws, so
a failure is a decisive defect, never sampling noise):

* *property tests* — int8 reconstruction error is bounded by the stored
  per-dimension scale, PQ encoding is idempotent on its own
  reconstructions, and store files round-trip bitwise through
  save/open/save, across random shapes and degenerate inputs (constant
  rows, zero vectors, a single row);
* *recall regressions* — on a clustered 5k x 64 synthetic store, the
  quantized read path keeps fixed floors of the exact float32 top-10;
* *contract tests* — PR-3-era (version 1) store files open as float32,
  and ``upsert`` on a quantized store re-encodes through the trained
  codec (with the read-only mmap guard intact).
"""

import struct

from pathlib import Path

import numpy as np
import pytest

from repro.embedding import KeyedVectors
from repro.errors import ServingError
from repro.serving import (
    CODEC_REGISTRY,
    EmbeddingStore,
    Float32Codec,
    Int8Codec,
    IVFIndex,
    PQCodec,
    QueryService,
    make_codec,
    register_codec,
    topk_overlap,
)

DATA_DIR = Path(__file__).resolve().parent / "data"

#: (n, dim) shapes the round-trip properties are checked across.
SHAPES = [(1, 8), (17, 3), (100, 16), (64, 64), (5, 160)]


def _random_matrix(shape, seed, scale=3.0):
    rng = np.random.default_rng(seed)
    return (scale * rng.standard_normal(shape)).astype(np.float32)


def _clustered_matrix(n, dim, seed, clusters=500, spread=0.25):
    """Balanced Gaussian mixture — the geometry of trained embeddings.

    ~``n/clusters`` points per center with a real margin between
    clusters, so each point's top-10 is a well-separated set (the
    regime recall@10 measures); a broken codebook or ADC path craters
    the overlap instead of shuffling near-ties.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, dim)).astype(np.float32)
    assign = rng.permutation(np.arange(n) % clusters)
    noise = spread * rng.standard_normal((n, dim)).astype(np.float32)
    return centers[assign] + noise


_recall = topk_overlap


class TestCodecRegistry:
    def test_builtins_registered(self):
        assert {"float32", "int8", "pq"} <= set(CODEC_REGISTRY)
        assert CODEC_REGISTRY.canonical("fp32") == "float32"
        assert CODEC_REGISTRY.canonical("sq8") == "int8"
        assert CODEC_REGISTRY.canonical("product-quantization") == "pq"

    def test_unknown_codec_raises(self):
        with pytest.raises(ServingError, match="registered"):
            make_codec("zstd")

    def test_third_party_codec_plugs_in(self, tmp_path):
        @register_codec("half-dim")
        class HalfDimCodec(Float32Codec):
            """Keeps only the first half of each vector (lossy, silly)."""

            name = "half-dim"

            @property
            def is_identity(self):
                return False

            @property
            def code_width(self):
                self._require_trained()
                return max(self.dim // 2, 1)

            def encode(self, vectors):
                return np.asarray(vectors, dtype=np.float32)[:, : self.code_width].copy()

            def decode(self, codes):
                out = np.zeros((codes.shape[0], self.dim), dtype=np.float32)
                out[:, : self.code_width] = codes
                return out

        try:
            kv = KeyedVectors(np.arange(20), _random_matrix((20, 8), 0))
            store = EmbeddingStore.from_keyed_vectors(kv, codec="half-dim")
            assert store.is_quantized and store.codes.shape == (20, 4)
            path = store.save(tmp_path / "half.embstore")
            back = EmbeddingStore.open(path)
            assert back.codec.name == "half-dim"
            assert np.array_equal(np.asarray(back.codes), store.codes)
        finally:
            CODEC_REGISTRY.unregister("half-dim")

    def test_untrained_codec_refuses_encode(self):
        with pytest.raises(ServingError, match="not trained"):
            Int8Codec().encode(np.zeros((2, 4), dtype=np.float32))

    def test_trained_dim_enforced_on_identity_fast_path(self):
        codec = Float32Codec().fit(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ServingError, match="dim=4"):
            codec.encode(np.zeros((3, 8), dtype=np.float32))

    def test_instance_with_params_rejected(self):
        codec = Int8Codec().fit(np.eye(4, dtype=np.float32))
        with pytest.raises(ServingError, match="registry name"):
            EmbeddingStore.from_keyed_vectors(
                KeyedVectors(np.arange(4), np.eye(4)), codec=codec, m=2
            )


class TestInt8Properties:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reconstruction_error_bounded_by_half_scale(self, shape, seed):
        x = _random_matrix(shape, seed)
        codec = Int8Codec().fit(x)
        err = np.abs(codec.decode(codec.encode(x)) - x)
        # nearest-level rounding: at most scale/2 per dimension, plus
        # float32 arithmetic slack
        bound = codec.scale / 2 + 1e-4 * (np.abs(codec.offset) + 255 * codec.scale)
        assert np.all(err <= bound[None, :])

    def test_constant_rows_exact(self):
        x = np.full((6, 5), 2.5, dtype=np.float32)
        codec = Int8Codec().fit(x)
        assert np.array_equal(codec.decode(codec.encode(x)), x)

    def test_zero_matrix_exact(self):
        x = np.zeros((4, 7), dtype=np.float32)
        codec = Int8Codec().fit(x)
        assert np.array_equal(codec.encode(x), np.zeros((4, 7), dtype=np.uint8))
        assert np.array_equal(codec.decode(codec.encode(x)), x)

    def test_single_row_exact(self):
        x = _random_matrix((1, 12), 5)
        codec = Int8Codec().fit(x)
        assert np.allclose(codec.decode(codec.encode(x)), x, atol=1e-6)

    def test_adc_matches_decoded_dot(self):
        x = _random_matrix((50, 16), 3)
        codec = Int8Codec().fit(x)
        codes = codec.encode(x)
        q = _random_matrix((4, 16), 9)
        sims = codec.make_adc(q)(codes)
        assert sims.shape == (4, 50)
        assert np.allclose(sims, q @ codec.decode(codes).T, atol=1e-3)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ServingError, match="empty"):
            Int8Codec().fit(np.zeros((0, 4), dtype=np.float32))

    def test_bytes_per_vector(self):
        codec = Int8Codec().fit(_random_matrix((10, 32), 0))
        assert codec.bytes_per_vector() == 32  # d bytes vs 4d for float32


class TestPQProperties:
    @pytest.mark.parametrize("shape,m", [((128, 16), 4), ((200, 64), 16), ((64, 24), 8)])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_encode_of_decode_is_idempotent(self, shape, m, seed):
        x = _random_matrix(shape, seed)
        codec = PQCodec(m=m, k=32, seed=seed).fit(x)
        codes = codec.encode(x)
        assert codes.dtype == np.uint8 and codes.shape == (shape[0], codec.m)
        assert np.array_equal(codec.encode(codec.decode(codes)), codes)

    def test_m_lowered_to_divisor(self):
        x = _random_matrix((30, 10), 0)
        codec = PQCodec(m=16, k=8).fit(x)  # 16 does not divide 10
        assert codec.m == 10 and codec.subdim == 1

    def test_k_clamped_to_sample(self):
        x = _random_matrix((5, 8), 1)
        codec = PQCodec(m=2, k=256).fit(x)
        assert codec.k == 5
        assert np.all(codec.encode(x) < 5)

    def test_single_row_reconstructs_exactly(self):
        x = _random_matrix((1, 8), 2)
        codec = PQCodec(m=4, k=16).fit(x)
        assert np.allclose(codec.decode(codec.encode(x)), x, atol=1e-6)

    def test_zero_matrix(self):
        x = np.zeros((10, 8), dtype=np.float32)
        codec = PQCodec(m=4, k=4).fit(x)
        assert np.array_equal(codec.decode(codec.encode(x)), x)

    def test_adc_lut_and_gemm_paths_agree(self):
        x = _random_matrix((80, 16), 4)
        codec = PQCodec(m=4, k=16, seed=0).fit(x)
        codes = codec.encode(x)
        q = _random_matrix((20, 16), 11)
        # small batch -> lookup tables; large batch -> chunk-decode GEMM
        lut = codec.make_adc(q[:2])(codes)
        gemm = codec.make_adc(q)(codes)
        assert lut.shape == (2, 80) and gemm.shape == (20, 80)
        assert np.allclose(lut, gemm[:2], atol=1e-3)
        assert np.allclose(gemm, q @ codec.decode(codes).T, atol=1e-3)

    def test_bad_params_rejected(self):
        with pytest.raises(ServingError, match="m >= 1"):
            PQCodec(m=0)
        with pytest.raises(ServingError, match="one byte"):
            PQCodec(k=512)
        with pytest.raises(ServingError, match="train_sample"):
            PQCodec(train_sample=0)
        with pytest.raises(ServingError, match="empty"):
            PQCodec().fit(np.zeros((0, 8), dtype=np.float32))

    def test_training_is_deterministic(self):
        x = _random_matrix((100, 16), 6)
        a = PQCodec(m=4, k=16, seed=3).fit(x)
        b = PQCodec(m=4, k=16, seed=3).fit(x)
        assert np.array_equal(a.codebooks, b.codebooks)
        assert np.array_equal(a.encode(x), b.encode(x))


class TestStoreRoundTrip:
    @pytest.mark.parametrize("codec_name,params", [
        ("float32", {}),
        ("int8", {}),
        ("pq", {"m": 4, "k": 16}),
    ])
    @pytest.mark.parametrize("shape", [(1, 8), (57, 16), (200, 12)])
    def test_save_open_bitwise(self, tmp_path, codec_name, params, shape):
        kv = KeyedVectors(np.arange(shape[0]) * 2, _random_matrix(shape, 13))
        store = EmbeddingStore.from_keyed_vectors(kv, codec=codec_name, **params)
        path = store.save(tmp_path / "rt.embstore")
        back = EmbeddingStore.open(path)
        assert back.codec.name == codec_name
        assert np.array_equal(np.asarray(back.keys), np.asarray(store.keys))
        assert np.array_equal(np.asarray(back.codes), np.asarray(store.codes))
        assert np.array_equal(np.asarray(back.norms), np.asarray(store.norms))
        # and the reopened store re-serialises to the identical bytes
        again = back.save(tmp_path / "rt2.embstore")
        assert again.read_bytes() == path.read_bytes()

    def test_quantized_store_survives_reopen_without_mmap(self, tmp_path):
        kv = KeyedVectors(np.arange(40), _random_matrix((40, 8), 21))
        path = EmbeddingStore.from_keyed_vectors(kv, codec="int8").save(
            tmp_path / "q.embstore"
        )
        back = EmbeddingStore.open(path, mmap=False)
        assert back.is_quantized and not isinstance(back.codes, np.memmap)
        assert back.codes.dtype == np.uint8

    def test_quantized_store_vectors_attribute_raises(self):
        kv = KeyedVectors(np.arange(10), _random_matrix((10, 8), 2))
        store = EmbeddingStore.from_keyed_vectors(kv, codec="int8")
        with pytest.raises(ServingError, match="decode_rows"):
            store.vectors
        assert store.decode_rows([0, 3]).shape == (2, 8)
        assert store.decode_all().shape == (10, 8)

    def test_recode_preserves_keys_and_norms(self):
        kv = KeyedVectors(np.arange(30) * 5, _random_matrix((30, 16), 8))
        base = EmbeddingStore.from_keyed_vectors(kv)
        pq = base.recode("pq", m=4, k=16)
        assert pq.is_quantized
        assert np.array_equal(np.asarray(pq.keys), np.asarray(base.keys))
        assert np.array_equal(np.asarray(pq.norms), np.asarray(base.norms))
        assert pq.codes.nbytes < base.codes.nbytes / 8

    def test_constructor_rejects_ambiguous_inputs(self):
        x = _random_matrix((4, 8), 0)
        with pytest.raises(ServingError, match="exactly one"):
            EmbeddingStore(np.arange(4))
        with pytest.raises(ServingError, match="trained"):
            EmbeddingStore(np.arange(4), codes=np.zeros((4, 8), np.uint8), codec="int8")
        codec = Int8Codec().fit(x)
        with pytest.raises(ServingError, match="exactly one"):
            EmbeddingStore(np.arange(4), x, codes=codec.encode(x), codec=codec)


class TestRecallRegression:
    """Quantized recall floors on a clustered 5k x 64 store (fixed seed).

    The thresholds carry slack below typical observed recall so the
    suite is not flaky: int8 usually lands > 0.98 (floor 0.95) and PQ
    m=16 > 0.90 on clustered geometry (floor 0.85).
    """

    N, DIM, TOPK, QUERIES = 5000, 64, 10, 200

    @pytest.fixture(scope="class")
    def stores(self):
        vectors = _clustered_matrix(self.N, self.DIM, seed=77)
        base = EmbeddingStore(np.arange(self.N), vectors)
        query_keys = np.random.default_rng(5).choice(self.N, self.QUERIES, replace=False)
        exact = QueryService(base, cache_size=0).most_similar_batch(
            query_keys, topn=self.TOPK
        )
        return base, query_keys, exact

    def test_int8_recall_floor(self, stores):
        base, query_keys, exact = stores
        got = QueryService(base.recode("int8"), cache_size=0).most_similar_batch(
            query_keys, topn=self.TOPK
        )
        assert _recall(exact, got) >= 0.95

    def test_pq_recall_floor(self, stores):
        base, query_keys, exact = stores
        pq = base.recode("pq", m=16, seed=0)
        got = QueryService(pq, cache_size=0).most_similar_batch(
            query_keys, topn=self.TOPK
        )
        assert _recall(exact, got) >= 0.85

    def test_ivf_composes_with_pq(self, stores):
        base, query_keys, exact = stores
        pq = base.recode("pq", m=16, seed=0)
        nlist = 16
        index = IVFIndex(pq, nlist=nlist, nprobe=nlist // 2, seed=1)
        got = QueryService(pq, index=index, cache_size=0).most_similar_batch(
            query_keys, topn=self.TOPK
        )
        assert _recall(exact, got) >= 0.8


class TestBackwardCompat:
    """PR-3-era (version 1) files keep opening under the v2 reader."""

    def _v1_expected(self):
        keys = np.arange(8, dtype=np.int64) * 3
        vectors = (np.arange(40, dtype=np.float32).reshape(8, 5) - 20.0) / 7.0
        return keys, vectors

    def test_committed_v1_fixture_opens_as_float32(self):
        store = EmbeddingStore.open(DATA_DIR / "store_v1.embstore")
        keys, vectors = self._v1_expected()
        assert not store.is_quantized and store.codec.name == "float32"
        assert np.array_equal(np.asarray(store.keys), keys)
        assert np.array_equal(np.asarray(store.vectors), vectors)
        assert np.allclose(
            np.asarray(store.norms), np.linalg.norm(vectors, axis=1), atol=1e-6
        )
        # the old public surface still works on the old file
        (result,) = QueryService(store, cache_size=0).most_similar_batch([0], topn=3)
        assert len(result) == 3

    def test_handrolled_v1_bytes_open(self, tmp_path):
        # the v1 writer, inlined: header + keys + float32 matrix + norms
        keys, vectors = self._v1_expected()
        norms = np.linalg.norm(vectors, axis=1).astype(np.float32)
        count, dim = vectors.shape
        keys_off = 64
        vec_off = (keys_off + 8 * count + 63) // 64 * 64
        norm_off = (vec_off + 4 * count * dim + 63) // 64 * 64
        path = tmp_path / "v1.embstore"
        with open(path, "wb") as fh:
            fh.write(struct.pack("<8sIIQ", b"UNINETES", 1, dim, count).ljust(64, b"\0"))
            fh.seek(keys_off)
            keys.tofile(fh)
            fh.seek(vec_off)
            vectors.tofile(fh)
            fh.seek(norm_off)
            norms.tofile(fh)
            fh.truncate(norm_off + 4 * count)
        store = EmbeddingStore.open(path)
        assert np.array_equal(np.asarray(store.vectors), vectors)

    def test_resaving_v1_store_upgrades_to_v2(self, tmp_path):
        v1 = EmbeddingStore.open(DATA_DIR / "store_v1.embstore")
        path = v1.save(tmp_path / "upgraded.embstore")
        version = struct.unpack_from("<8sI", path.read_bytes())[1]
        assert version == 2
        back = EmbeddingStore.open(path)
        assert np.array_equal(np.asarray(back.vectors), np.asarray(v1.vectors))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.embstore"
        path.write_bytes(struct.pack("<8sIIQQ", b"UNINETES", 9, 4, 0, 0).ljust(256, b"\0"))
        with pytest.raises(ServingError, match="version 9"):
            EmbeddingStore.open(path)

    @pytest.mark.parametrize("blob", [
        b"\x02\x00\x00\x00[]",                      # manifest is not an object
        b"\x02\x00\x00\x00{}",                      # no codec name
        b"\xff\xff\xff\xff{}",                      # head length overruns
        b'\x10\x00\x00\x00{"codec": "pq"}x',        # no arrays entry
    ])
    def test_corrupt_codec_section_raises_serving_error(self, tmp_path, blob):
        path = tmp_path / "corrupt.embstore"
        header = struct.pack("<8sIIQQ", b"UNINETES", 2, 4, 0, len(blob))
        path.write_bytes(header.ljust(64, b"\0") + blob)
        with pytest.raises(ServingError, match="corrupt codec section"):
            EmbeddingStore.open(path)

    def test_huge_meta_len_rejected_before_read(self, tmp_path):
        # a corrupt header demanding a multi-GB codec section must fail
        # the size check, not attempt the read
        path = tmp_path / "huge.embstore"
        header = struct.pack("<8sIIQQ", b"UNINETES", 2, 4, 0, 1 << 40)
        path.write_bytes(header.ljust(64, b"\0"))
        with pytest.raises(ServingError, match="truncated"):
            EmbeddingStore.open(path)


class TestQuantizedUpsert:
    """The chosen contract: upsert re-encodes through the trained codec."""

    def _quantized(self, n=60, dim=8, codec="int8"):
        kv = KeyedVectors(np.arange(n), _random_matrix((n, dim), 31))
        return EmbeddingStore.from_keyed_vectors(kv, codec=codec)

    def test_upsert_reencodes_known_key(self):
        store = self._quantized()
        replacement = np.full(8, 0.5, dtype=np.float32)
        report = store.upsert([7], replacement)
        assert report == {"updated": 1, "inserted": 0}
        # the row now holds the codec's encoding of the new vector
        expected = store.codec.decode(store.codec.encode(replacement[None, :]))[0]
        assert np.array_equal(store.decode_rows([7])[0], expected)
        # norms come from the raw vector, not the reconstruction
        assert store.norms[7] == pytest.approx(np.linalg.norm(replacement), abs=1e-6)

    def test_upsert_appends_new_key_encoded(self):
        store = self._quantized(codec="pq")
        before = len(store)
        vec = _random_matrix((1, 8), 99)[0]
        report = store.upsert([500], vec)
        assert report == {"updated": 0, "inserted": 1}
        assert len(store) == before + 1
        assert store.codes.shape == (before + 1, store.codec.code_width)
        assert 500 in store
        # the appended row round-trips through the codec like any other
        assert np.array_equal(
            store.codes[-1], store.codec.encode(vec[None, :])[0]
        )

    def test_save_onto_own_backing_file(self, tmp_path):
        # the open(mmap) -> save(same path) shape must not truncate the
        # file the store's own sections are mapped from
        store = self._quantized()
        path = store.save(tmp_path / "self.embstore")
        reopened = EmbeddingStore.open(path)
        again = reopened.save(path)
        back = EmbeddingStore.open(again)
        assert np.array_equal(np.asarray(back.codes), np.asarray(store.codes))
        assert np.array_equal(np.asarray(back.norms), np.asarray(store.norms))

    def test_readonly_mmap_guard(self, tmp_path):
        store = self._quantized()
        path = store.save(tmp_path / "ro.embstore")
        served = EmbeddingStore.open(path)  # mmap mode="r"
        with pytest.raises(ServingError, match="read-only"):
            served.upsert([0], np.zeros(8, dtype=np.float32))
        # the documented escape hatch: reopen in-memory, upsert, re-save
        writable = EmbeddingStore.open(path, mmap=False)
        writable.upsert([0], np.ones(8, dtype=np.float32))
        writable.save(path)
        assert np.array_equal(
            EmbeddingStore.open(path).codes[0],
            writable.codec.encode(np.ones((1, 8), dtype=np.float32))[0],
        )

    def test_service_refresh_after_quantized_upsert(self):
        store = self._quantized()
        service = QueryService(store, cache_size=4)
        service.most_similar_batch([0], topn=3)
        store.upsert([0], np.full(8, 2.0, dtype=np.float32))
        service.refresh()
        (result,) = service.most_similar_batch([0], topn=3)
        assert len(result) == 3


class TestQuantizedServingWiring:
    def test_uninet_serve_codec(self, barbell):
        from repro import UniNet

        net = UniNet(barbell, model="deepwalk", seed=3)
        net.train(num_walks=3, walk_length=10, dimensions=8, negative_sharing=True)
        service = net.serve(codec="pq", codec_params={"m": 4, "k": 16}, cache_size=0)
        assert service.store.is_quantized
        assert service.stats()["codec"] == "pq"
        (result,) = service.most_similar_batch([0], topn=3)
        assert len(result) == 3

    def test_serve_to_path_round_trips_codec(self, barbell, tmp_path):
        from repro import UniNet

        net = UniNet(barbell, model="deepwalk", seed=3)
        net.train(num_walks=3, walk_length=10, dimensions=8, negative_sharing=True)
        path = tmp_path / "net.pq.embstore"
        service = net.serve(store_path=path, codec="int8")
        assert isinstance(service.store.codes, np.memmap)
        assert service.store.codes.dtype == np.uint8
        assert EmbeddingStore.open(path).codec.name == "int8"

    def test_runspec_serving_codec_metrics(self):
        from repro import RunSpec, run

        report = run(
            {
                "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
                "walk": {"num_walks": 1, "walk_length": 8},
                "train": {"dimensions": 8, "negative_sharing": True},
                "serving": {
                    "codec": "int8",
                    "probe_queries": 16,
                    "topn": 3,
                },
            }
        )
        serving = report.metrics["serving"]
        assert serving["codec"] == "int8"
        assert serving["compression_ratio"] == pytest.approx(4.0)
        assert 0.0 <= serving["recall_probe"] <= 1.0
        assert serving["recall_probe"] >= 0.5  # int8 at d=8 is near-exact
        # the spec round-trips with the codec block
        spec = RunSpec.from_dict(
            {"graph": {"dataset": "amazon"}, "serving": {"codec": "pq", "codec_params": {"m": 4}}}
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_runspec_float32_approximate_index_probe_measured(self):
        from repro import run

        report = run(
            {
                "graph": {"dataset": "amazon", "scale": 0.05, "seed": 1},
                "walk": {"num_walks": 1, "walk_length": 8},
                "train": {"dimensions": 8, "negative_sharing": True},
                "serving": {
                    "index": "ivf",
                    "index_params": {"nprobe": 1},
                    "probe_queries": 32,
                    "topn": 5,
                },
            }
        )
        probe = report.metrics["serving"]["recall_probe"]
        # float32 through a 1-cell IVF probe is genuinely lossy; the
        # metric must be the measured overlap, not a hard-coded 1.0
        assert 0.0 < probe < 1.0

    def test_runspec_unknown_codec_rejected(self):
        from repro import RunSpec

        spec = RunSpec.from_dict(
            {"graph": {"dataset": "amazon"}, "serving": {"codec": "zstd"}}
        )
        with pytest.raises(ServingError, match="registered"):
            spec.validate()

    def test_cli_export_query_quantized(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(4)
        kv = KeyedVectors(np.arange(120), rng.standard_normal((120, 16)))
        npz = tmp_path / "v.npz"
        kv.save_npz(npz)
        out_pq = tmp_path / "v.pq.embstore"
        assert main(
            [
                "export-store", "--vectors", str(npz), "--output", str(out_pq),
                "--codec", "pq", "--pq-m", "4", "--pq-k", "16",
            ]
        ) == 0
        assert main(["query", "--store", str(out_pq), "--keys", "0", "5", "--topn", "3"]) == 0
        out = capsys.readouterr().out
        assert "codec pq" in out
        assert "16.0x vs float32" in out  # 4 bytes/vector vs 64

    def test_cli_codec_alias_and_generic_params(self, tmp_path, capsys):
        from repro.cli import main

        kv = KeyedVectors(np.arange(60), _random_matrix((60, 8), 7))
        npz = tmp_path / "v.npz"
        kv.save_npz(npz)
        out = tmp_path / "v.embstore"
        # a registry alias resolves AND --codec-param overrides the sugar flags
        assert main(
            [
                "export-store", "--vectors", str(npz), "--output", str(out),
                "--codec", "product-quantization", "--pq-m", "2",
                "--codec-param", "m=4", "--codec-param", "k=16",
            ]
        ) == 0
        store = EmbeddingStore.open(out)
        assert store.codec.name == "pq" and store.codec.m == 4 and store.codec.k == 16
        # a parameter the codec does not accept is a clean error
        assert main(
            [
                "export-store", "--vectors", str(npz), "--output", str(out),
                "--codec", "int8", "--codec-param", "bogus=1",
            ]
        ) == 2
        assert "rejected its parameters" in capsys.readouterr().err

    def test_cli_export_unknown_codec(self, tmp_path, capsys):
        from repro.cli import main

        kv = KeyedVectors(np.arange(4), np.eye(4))
        npz = tmp_path / "v.npz"
        kv.save_npz(npz)
        code = main(
            ["export-store", "--vectors", str(npz), "--output",
             str(tmp_path / "x.embstore"), "--codec", "lz4"]
        )
        assert code == 2
        assert "registered" in capsys.readouterr().err
