"""Final coverage batch: examples compile, protocol conformance, misc."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


class TestExamplesCompile:
    """Examples are documentation; they must at least stay syntactically
    valid and import-clean (full runs live outside the unit suite)."""

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_at_least_quickstart_and_two_scenarios(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(names) >= 3


class TestTransitionModelProtocol:
    def test_all_models_satisfy_sampler_protocol(self, typed_graph):
        from repro.sampling.base import TransitionModel
        from repro.walks.models import MODELS, make_model

        for name in MODELS:
            kwargs = {"metapath": [0, 1, 0]} if name == "metapath2vec" else {}
            model = make_model(name, typed_graph, **kwargs)
            assert isinstance(model, TransitionModel)

    def test_scalar_and_batch_weights_agree_for_all_models(self, typed_graph):
        """calculate_weight and batch_dynamic_weight are the same law."""
        from repro.walks.models import MODELS, make_model
        from repro.walks.state import WalkerState

        g = typed_graph
        rng = np.random.default_rng(0)
        for name in MODELS:
            kwargs = {"metapath": [0, 1, 0]} if name == "metapath2vec" else {}
            model = make_model(name, g, **kwargs)
            for __ in range(5):
                e = int(rng.integers(g.num_edge_entries))
                v = int(g.targets[e])
                if g.degree(v) == 0:
                    continue
                s = int(g.edge_sources()[e])
                state = WalkerState(current=v, previous=s, prev_edge_offset=e, step=1)
                lo, hi = g.edge_range(v)
                offs = np.arange(lo, hi)
                batch = model.batch_dynamic_weight(
                    np.full(offs.size, s), np.full(offs.size, e),
                    np.full(offs.size, v), 1, offs,
                )
                scalar = [model.calculate_weight(state, int(o)) for o in offs]
                assert np.allclose(batch, scalar), name


class TestScalarEngineFirstStep:
    def test_fairwalk_first_step_group_fair_in_reference_engine(self):
        from repro.graph.builder import from_edge_arrays
        from repro.walks.engine import ReferenceWalkEngine

        src = np.zeros(10, dtype=np.int64)
        dst = np.arange(1, 11)
        g = from_edge_arrays(src, dst, num_nodes=11)
        types = np.zeros(11, dtype=np.int16)
        types[1:10] = 1
        types[10] = 2
        typed = g.with_node_types(types)
        eng = ReferenceWalkEngine(typed, "fairwalk", sampler="direct", p=1, q=1, seed=0)
        hits_type2 = 0
        trials = 600
        for __ in range(trials):
            walk = eng.walk(0, 2)
            hits_type2 += walk[1] == 10
        assert abs(hits_type2 / trials - 0.5) < 0.07


class TestMiscEdgeCases:
    def test_degree_histogram_uniform_graph(self):
        from repro.graph.generators import cycle_graph
        from repro.graph.stats import degree_histogram

        edges, counts = degree_histogram(cycle_graph(10))
        assert counts.sum() == 10

    def test_train_result_defaults(self):
        from repro.core.pipeline import TrainResult

        result = TrainResult(embeddings=None, corpus=None)
        assert result.ti == 0.0 and result.tw == 0.0 and result.tl == 0.0
        assert result.tt == 0.0

    def test_timer_total_matches_reported_phases(self, small_unweighted_graph):
        from repro.core.config import WalkConfig
        from repro.core.pipeline import train_pipeline

        result = train_pipeline(
            small_unweighted_graph,
            "deepwalk",
            WalkConfig(num_walks=1, walk_length=6),
            seed=1,
            skip_learning=True,
        )
        assert result.tt == pytest.approx(result.ti + result.tw + result.tl)

    def test_chain_store_borrowed_by_scalar_and_vectorized(self, small_unweighted_graph):
        """Scalar sampler and vectorized engine can share one chain array."""
        from repro.sampling import MetropolisHastingsSampler
        from repro.walks.manager import ChainStore
        from repro.walks.models import make_model
        from repro.walks.state import WalkerState
        from repro.walks.vectorized import VectorizedWalkEngine

        g = small_unweighted_graph
        model = make_model("deepwalk", g)
        store = ChainStore(g, model)
        engine = VectorizedWalkEngine(g, model, sampler="mh", chain_store=store, seed=2)
        engine.generate(num_walks=1, walk_length=6)
        touched = store.num_initialized
        scalar = MetropolisHastingsSampler(g, model, chain_store=store)
        rng = np.random.default_rng(3)
        v = int(np.argmax(g.degrees()))
        scalar.sample(g, model, WalkerState(current=v), rng)
        assert store.num_initialized >= touched
