"""Tests for the extension features: clustering, parallel walks, CLI."""

import numpy as np
import pytest

from repro.errors import EvaluationError, WalkError
from repro.evaluation.clustering import (
    clustering_experiment,
    kmeans,
    normalized_mutual_information,
)


class TestKMeans:
    def test_separable_clusters_recovered(self, rng):
        centers = np.array([[0.0, 8.0], [8.0, 0.0], [-8.0, -8.0]])
        x = np.vstack([rng.normal(c, 0.5, (40, 2)) for c in centers])
        truth = np.repeat([0, 1, 2], 40)
        assignments, __, inertia = kmeans(x, 3, seed=1)
        assert normalized_mutual_information(truth, assignments) > 0.95
        assert inertia >= 0

    def test_k_one(self, rng):
        x = rng.normal(size=(20, 3))
        assignments, centers, __ = kmeans(x, 1, seed=2)
        assert np.all(assignments == 0)
        assert np.allclose(centers[0], x.mean(axis=0), atol=1e-8)

    def test_invalid_inputs(self, rng):
        with pytest.raises(EvaluationError):
            kmeans(rng.normal(size=(2, 2)), 5)
        with pytest.raises(EvaluationError):
            kmeans(rng.normal(size=(5, 2)), 0)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(50, 4))
        a1, __, ___ = kmeans(x, 3, seed=7)
        a2, __, ___ = kmeans(x, 3, seed=7)
        assert np.array_equal(a1, a2)


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_single_cluster_each(self):
        a = np.zeros(10, dtype=int)
        assert normalized_mutual_information(a, a) == 1.0

    def test_invalid(self):
        with pytest.raises(EvaluationError):
            normalized_mutual_information([0, 1], [0])


class TestClusteringExperiment:
    def test_community_graph_clusters_well(self):
        from repro import UniNet
        from repro.graph.generators import planted_partition

        graph, labels = planted_partition(
            300, 3, within_degree=16.0, between_degree=2.0, seed=3
        )
        net = UniNet(graph, model="deepwalk", seed=3)
        result = net.train(
            num_walks=6, walk_length=30, dimensions=32, epochs=2, negative_sharing=True
        )
        out = clustering_experiment(result.embeddings, labels, seed=4)
        assert out["nmi"] > 0.4
        assert out["num_clusters"] == 3

    def test_multilabel_rejected(self, rng):
        from repro.embedding import KeyedVectors
        from repro.graph.labels import NodeLabels

        kv = KeyedVectors(np.arange(4), rng.normal(size=(4, 2)))
        labels = NodeLabels(np.arange(4), np.ones((4, 2), dtype=bool))
        with pytest.raises(EvaluationError):
            clustering_experiment(kv, labels)


class TestParallelWalks:
    def test_single_worker_matches_engine_semantics(self, small_unweighted_graph):
        from repro.walks.parallel import parallel_generate

        corpus = parallel_generate(
            small_unweighted_graph, "deepwalk",
            num_walks=2, walk_length=10, num_workers=1, seed=5,
        )
        assert corpus.num_walks == 2 * small_unweighted_graph.num_nodes
        for walk in list(corpus.iter_walks())[:20]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert small_unweighted_graph.has_edge(int(a), int(b))

    def test_multi_worker_covers_all_starts(self, small_unweighted_graph):
        from repro.walks.parallel import parallel_generate

        corpus = parallel_generate(
            small_unweighted_graph, "deepwalk",
            num_walks=1, walk_length=6, num_workers=2, seed=6,
        )
        starts = set(corpus.walks[:, 0].tolist())
        assert starts == set(range(small_unweighted_graph.num_nodes))

    def test_model_instances_rejected(self, small_unweighted_graph):
        from repro.walks.models import make_model
        from repro.walks.parallel import parallel_generate

        model = make_model("deepwalk", small_unweighted_graph)
        with pytest.raises(WalkError):
            parallel_generate(small_unweighted_graph, model)

    def test_reproducible_for_fixed_workers(self, small_unweighted_graph):
        from repro.walks.parallel import parallel_generate

        a = parallel_generate(
            small_unweighted_graph, "deepwalk",
            num_walks=1, walk_length=8, num_workers=2, seed=7,
        )
        b = parallel_generate(
            small_unweighted_graph, "deepwalk",
            num_walks=1, walk_length=8, num_workers=2, seed=7,
        )
        assert np.array_equal(a.walks, b.walks)


class TestCli:
    def test_stats_dataset(self, capsys):
        from repro.cli import main

        assert main(["stats", "--dataset", "acm", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "num_nodes" in out and "num_edges" in out

    def test_stats_edge_list(self, tmp_path, capsys, small_unweighted_graph):
        from repro.cli import main
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.txt"
        save_edge_list(small_unweighted_graph, path)
        assert main(["stats", "--edge-list", str(path)]) == 0

    def test_walk_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.walks.corpus import WalkCorpus

        out_path = tmp_path / "walks.npz"
        rc = main(
            [
                "walk", "--dataset", "amazon", "--scale", "0.1",
                "--num-walks", "1", "--walk-length", "8",
                "--output", str(out_path),
            ]
        )
        assert rc == 0
        corpus = WalkCorpus.load_npz(out_path)
        assert corpus.token_count > 0

    def test_train_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.embedding import KeyedVectors

        out_path = tmp_path / "vec.npz"
        rc = main(
            [
                "train", "--dataset", "amazon", "--scale", "0.1",
                "--model", "node2vec", "--p", "0.5", "--q", "2.0",
                "--num-walks", "1", "--walk-length", "10",
                "--dimensions", "16", "--output", str(out_path),
            ]
        )
        assert rc == 0
        kv = KeyedVectors.load_npz(out_path)
        assert kv.dimensions == 16

    def test_classify_command(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "classify", "--dataset", "reddit", "--scale", "0.1",
                "--num-walks", "2", "--walk-length", "12",
                "--dimensions", "16", "--epochs", "1",
                "--fractions", "0.5", "--trials", "1",
            ]
        )
        assert rc == 0
        assert "micro_f1_mean" in capsys.readouterr().out

    def test_classify_requires_labels(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "classify", "--dataset", "amazon", "--scale", "0.1",
                "--num-walks", "1", "--walk-length", "6",
            ]
        )
        assert rc == 2
