"""Declarative experiment specifications — experiments as data.

A :class:`RunSpec` captures everything one UniNet experiment needs —
graph source, model + parameters, sampler, walk and training settings,
optional downstream evaluation — as a JSON-serialisable dataclass. Specs
round-trip losslessly (``RunSpec.from_dict(spec.to_dict()) == spec``),
validate their component names against the registries at build time, and
execute with :func:`repro.core.runner.run` (also exported as
``repro.run``) or from the CLI via ``python -m repro run --spec
spec.json``.

Example spec file::

    {
      "name": "n2v-mh",
      "graph": {"dataset": "blogcatalog", "scale": 0.3, "seed": 7},
      "model": "node2vec",
      "model_params": {"p": 0.25, "q": 4.0},
      "walk": {"num_walks": 10, "walk_length": 80, "sampler": "mh"},
      "train": {"dimensions": 64, "epochs": 2},
      "evaluation": {"task": "classification", "train_fractions": [0.5]}
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.core.config import ShardingConfig, StreamingConfig, TrainConfig, WalkConfig
from repro.errors import SpecError

#: Downstream evaluation protocols runnable from a spec.
EVALUATION_TASKS = ("classification", "clustering")

#: Top-level convenience keys accepted by :meth:`RunSpec.from_dict` that
#: really live on the nested ``walk`` config.
_WALK_SUGAR = ("sampler", "initializer", "num_walks", "walk_length", "backend")


def _dataclass_from_dict(cls, data, where: str):
    """Build ``cls`` from a mapping, rejecting unknown keys helpfully."""
    if isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise SpecError(f"{where} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown {where} key(s) {unknown}; known keys: {sorted(known)}"
        )
    return cls(**data)


@dataclass
class GraphSpec:
    """Where the network comes from: a synthetic dataset or an edge list.

    Exactly one of ``dataset`` (a name in
    :data:`repro.graph.datasets.DATASETS`) or ``edge_list`` (a path to a
    ``src dst [weight]`` file) must be set.
    """

    dataset: str | None = None
    edge_list: str | None = None
    scale: float = 1.0
    weight_mode: str | None = None
    weighted: bool = False
    seed: int = 0

    def validate(self) -> "GraphSpec":
        if (self.dataset is None) == (self.edge_list is None):
            raise SpecError(
                "graph spec needs exactly one of 'dataset' or 'edge_list'"
            )
        if self.dataset is not None:
            from repro.graph import datasets

            if str(self.dataset).lower() not in datasets.DATASETS:
                raise SpecError(
                    f"unknown dataset {self.dataset!r}; "
                    f"available: {sorted(datasets.DATASETS)}"
                )
        return self

    def cache_key(self) -> tuple:
        """Hashable identity of this graph source (for load caching).

        Two specs with equal keys materialise identical graphs; used by
        :func:`repro.core.runner.run_many` to load a sweep's shared
        graph once, and seedable by callers that already hold the graph
        (``cache[spec.cache_key()] = (graph, labels)``).
        """
        return tuple(sorted(asdict(self).items()))

    def load(self):
        """Materialise the graph; returns ``(graph, labels_or_None)``."""
        self.validate()
        if self.dataset is not None:
            from repro.graph import datasets

            loaded = datasets.load(
                self.dataset, scale=self.scale, weight_mode=self.weight_mode,
                seed=self.seed,
            )
            if isinstance(loaded, tuple):
                return loaded
            return loaded, None
        from repro.graph.io import load_edge_list

        return load_edge_list(self.edge_list, weighted=self.weighted), None


@dataclass
class EvalSpec:
    """Downstream evaluation to run on the learned embeddings."""

    task: str = "classification"
    train_fractions: tuple[float, ...] = (0.1, 0.5, 0.9)
    trials: int = 3
    seed: int = 0

    def __post_init__(self):
        self.train_fractions = tuple(self.train_fractions)

    def validate(self) -> "EvalSpec":
        if self.task not in EVALUATION_TASKS:
            raise SpecError(
                f"unknown evaluation task {self.task!r}; "
                f"available: {list(EVALUATION_TASKS)}"
            )
        if self.trials < 1:
            raise SpecError("evaluation trials must be >= 1")
        return self


@dataclass
class ServingSpec:
    """Query-side serving to stand up after training.

    A serving block makes :func:`repro.core.runner.run` build a
    :class:`~repro.serving.service.QueryService` over the learned
    embeddings, fire a probe batch of ``probe_queries`` keys, and record
    the service's latency/throughput counters under
    ``report.metrics["serving"]`` — the read-path health check next to
    the downstream-task metrics. A non-float32 ``codec`` serves a
    compressed store and additionally records ``compression_ratio`` and
    ``recall_probe`` (top-``topn`` overlap of the probe batch against
    the exact float32 answers) — the accuracy/memory trade in numbers.

    A ``server`` block additionally stands up an asyncio
    :class:`~repro.serving.server.QueryServer` over the same store,
    drives the probe keys through concurrent in-process clients (so the
    micro-batching path is exercised), and records the server's
    p50/p99/QPS stats under ``report.metrics["serving"]["server"]``.
    """

    #: registered index name (see :data:`repro.serving.INDEX_REGISTRY`).
    index: str = "bruteforce"
    #: forwarded to the index factory (``nlist``, ``nprobe``, ...).
    index_params: dict = field(default_factory=dict)
    #: registered codec name (see :data:`repro.serving.CODEC_REGISTRY`).
    codec: str = "float32"
    #: forwarded to the codec constructor (``m``, ``k``, ...).
    codec_params: dict = field(default_factory=dict)
    cache_size: int = 4096
    topn: int = 10
    #: keys queried by the probe batch (clamped to the store size).
    probe_queries: int = 64
    #: None, or :class:`~repro.serving.server.QueryServer` knobs
    #: (``max_batch``, ``max_wait_us``, ``queue_size``) for a batching
    #: server probe.
    server: dict | None = None

    _SERVER_KNOBS = frozenset({"max_batch", "max_wait_us", "queue_size"})

    def validate(self) -> "ServingSpec":
        from repro.serving.codec import CODEC_REGISTRY
        from repro.serving.index import INDEX_REGISTRY

        self.index = INDEX_REGISTRY.canonical(self.index)
        self.codec = CODEC_REGISTRY.canonical(self.codec)
        if self.topn < 1:
            raise SpecError("serving.topn must be >= 1")
        if self.probe_queries < 1:
            raise SpecError("serving.probe_queries must be >= 1")
        if self.cache_size < 0:
            raise SpecError("serving.cache_size must be >= 0")
        if not isinstance(self.index_params, dict):
            raise SpecError("serving.index_params must be a mapping")
        if not isinstance(self.codec_params, dict):
            raise SpecError("serving.codec_params must be a mapping")
        if self.server is not None:
            if self.server is True:
                self.server = {}
            if not isinstance(self.server, dict):
                raise SpecError("serving.server must be a mapping (or null)")
            unknown = set(self.server) - self._SERVER_KNOBS
            if unknown:
                raise SpecError(
                    f"unknown serving.server knobs {sorted(unknown)}; "
                    f"supported: {sorted(self._SERVER_KNOBS)}"
                )
        return self


@dataclass
class UpdatesSpec:
    """A scripted delta schedule replayed after the initial training.

    Each step is a plain delta record (the
    :meth:`~repro.graph.delta.GraphDelta.from_dict` format: ``add`` /
    ``remove`` / ``reweight`` / ``add_nodes`` keys), so sweeps can
    replay recorded edge streams declaratively: the runner applies the
    steps in order through :meth:`UniNet.update`, optionally refreshing
    the embeddings incrementally after each step, and records per-step
    update/refresh costs under ``report.metrics["updates"]``.
    """

    #: delta records applied in order (see :meth:`GraphDelta.from_dict`).
    steps: list = field(default_factory=list)
    #: expand each edge row to both directed entries.
    symmetric: bool = True
    #: sampler revalidation policy per step (``affected``/``full``/``none``).
    refresh: str = "affected"
    #: incrementally re-train after each step (horizon re-walk +
    #: ``partial_fit``); final metrics/serving then use fresh embeddings.
    retrain: bool = True
    #: re-walk sizing for the incremental pass (defaults to the run's
    #: walk config).
    num_walks: int | None = None
    walk_length: int | None = None

    def __post_init__(self):
        self.steps = [dict(step) for step in self.steps]

    def validate(self) -> "UpdatesSpec":
        if self.refresh not in ("affected", "full", "none"):
            raise SpecError(
                f"updates.refresh must be 'affected', 'full' or 'none', got {self.refresh!r}"
            )
        if self.num_walks is not None and self.num_walks < 1:
            raise SpecError("updates.num_walks must be >= 1")
        if self.walk_length is not None and self.walk_length < 1:
            raise SpecError("updates.walk_length must be >= 1")
        if not self.steps:
            raise SpecError("updates.steps must contain at least one delta record")
        from repro.errors import DeltaError

        try:
            self.deltas()
        except DeltaError as err:
            raise SpecError(f"invalid updates step: {err}") from None
        return self

    def deltas(self):
        """Materialise the schedule as :class:`GraphDelta` objects."""
        from repro.graph.delta import GraphDelta

        return [
            GraphDelta.from_dict(step, symmetric=self.symmetric) for step in self.steps
        ]


@dataclass
class RunSpec:
    """One declarative UniNet experiment.

    ``model`` / ``walk.sampler`` / ``walk.initializer`` are registry
    names, so third-party components registered through
    :mod:`repro.registry` work here with no package edits. ``train=None``
    stops after walk generation (the setting of the paper's walk-phase
    tables); ``evaluation`` requires ``train`` and a labeled graph. A
    ``streaming`` block runs the bounded-memory shard-streaming pipeline
    (see :class:`~repro.core.config.StreamingConfig`); a ``sharding``
    block generates the walks on the partitioned
    :class:`~repro.sharding.engine.ShardedWalkEngine` (see
    :class:`~repro.core.config.ShardingConfig`) — results are bitwise
    identical, only the execution changes; a ``serving`` block stands up
    the query-side read path after training (see :class:`ServingSpec`).
    """

    graph: GraphSpec = field(default_factory=GraphSpec)
    model: str = "deepwalk"
    model_params: dict = field(default_factory=dict)
    walk: WalkConfig = field(default_factory=WalkConfig)
    train: TrainConfig | None = field(default_factory=TrainConfig)
    evaluation: EvalSpec | None = None
    streaming: StreamingConfig | None = None
    sharding: ShardingConfig | None = None
    serving: ServingSpec | None = None
    updates: UpdatesSpec | None = None
    seed: int = 0
    name: str = ""

    # -- convenience views ----------------------------------------------
    @property
    def sampler(self) -> str:
        return self.walk.sampler

    @property
    def initializer(self):
        return self.walk.initializer

    def label(self) -> str:
        """Display name: explicit ``name`` or a model/sampler summary."""
        return self.name or f"{self.model}+{self.walk.sampler}"

    def walk_config(self) -> WalkConfig:
        """An independent :class:`WalkConfig` copy for the engine."""
        return replace(self.walk)

    # -- validation ------------------------------------------------------
    def validate(self) -> "RunSpec":
        """Registry-validate all component names; returns ``self``.

        Model names resolve through
        :data:`repro.registry.MODEL_REGISTRY` (unknown names raise
        :class:`~repro.errors.ModelError` with suggestions), and
        ``model_params`` keys are checked against the model's declared
        ``param_spec`` capability when it has one. Sampler/initializer
        names were already validated by :class:`WalkConfig`.
        """
        from repro.registry import MODEL_REGISTRY

        if not isinstance(self.model, str):
            raise SpecError(
                "RunSpec.model must be a registry name (register custom "
                "models with repro.register_model)"
            )
        entry = MODEL_REGISTRY.entry(self.model)
        param_spec = entry.capabilities.get("param_spec")
        if param_spec is not None:
            unknown = sorted(set(self.model_params) - set(param_spec))
            if unknown:
                raise SpecError(
                    f"unknown parameter(s) {unknown} for model "
                    f"{entry.name!r}; declared: {sorted(param_spec)}"
                )
        self.graph.validate()
        if (
            self.streaming is not None
            and self.streaming.enabled
            and self.sharding is not None
            and self.sharding.enabled
            and self.train is not None
        ):
            raise SpecError(
                "streaming and sharding blocks cannot both be enabled: the "
                "sharded engine has no shard-stream generator; disable one "
                "(e.g. --set streaming.enabled=false)"
            )
        if self.evaluation is not None:
            self.evaluation.validate()
            if self.train is None:
                raise SpecError("evaluation requires a train config")
        if self.serving is not None:
            self.serving.validate()
            if self.train is None:
                raise SpecError("serving requires a train config")
        if self.updates is not None:
            self.updates.validate()
            if self.train is None:
                raise SpecError("updates require a train config")
            if not self.updates.retrain and (
                self.evaluation is not None or self.serving is not None
            ):
                raise SpecError(
                    "updates.retrain=false leaves the embeddings stale after "
                    "the delta schedule; evaluation/serving would silently "
                    "consume pre-update vectors — enable retrain or drop "
                    "those blocks"
                )
        return self

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "seed": self.seed,
            "graph": asdict(self.graph),
            "model": self.model,
            "model_params": dict(self.model_params),
            "walk": asdict(self.walk),
            "train": None if self.train is None else asdict(self.train),
            "evaluation": None if self.evaluation is None else asdict(self.evaluation),
            "streaming": None if self.streaming is None else asdict(self.streaming),
            "sharding": None if self.sharding is None else asdict(self.sharding),
            "serving": None if self.serving is None else asdict(self.serving),
            "updates": None if self.updates is None else asdict(self.updates),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Build a spec from a plain dict (e.g. parsed JSON).

        Nested sections may be partial (missing keys take the dataclass
        defaults); unknown keys raise :class:`~repro.errors.SpecError`.
        The walk settings ``sampler`` / ``initializer`` / ``num_walks`` /
        ``walk_length`` / ``backend`` are also accepted at the top level
        as sugar.
        """
        if not isinstance(data, dict):
            raise SpecError(f"RunSpec data must be a mapping, got {type(data).__name__}")
        data = dict(data)
        walk_data = data.pop("walk", {})
        if isinstance(walk_data, WalkConfig):
            walk_data = asdict(walk_data)
        walk_data = dict(walk_data) if isinstance(walk_data, dict) else walk_data
        for key in _WALK_SUGAR:
            if key in data and isinstance(walk_data, dict):
                walk_data[key] = data.pop(key)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown RunSpec key(s) {unknown}; known keys: "
                f"{sorted(known | set(_WALK_SUGAR))}"
            )
        graph = _dataclass_from_dict(GraphSpec, data.get("graph", {}), "graph spec")
        walk = _dataclass_from_dict(WalkConfig, walk_data, "walk config")
        train_data = data.get("train", TrainConfig())
        train = (
            None
            if train_data is None
            else _dataclass_from_dict(TrainConfig, train_data, "train config")
        )
        eval_data = data.get("evaluation")
        evaluation = (
            None
            if eval_data is None
            else _dataclass_from_dict(EvalSpec, eval_data, "evaluation spec")
        )
        streaming_data = data.get("streaming")
        streaming = (
            None
            if streaming_data is None
            else _dataclass_from_dict(StreamingConfig, streaming_data, "streaming config")
        )
        sharding_data = data.get("sharding")
        sharding = (
            None
            if sharding_data is None
            else _dataclass_from_dict(ShardingConfig, sharding_data, "sharding config")
        )
        serving_data = data.get("serving")
        serving = (
            None
            if serving_data is None
            else _dataclass_from_dict(ServingSpec, serving_data, "serving spec")
        )
        updates_data = data.get("updates")
        updates = (
            None
            if updates_data is None
            else _dataclass_from_dict(UpdatesSpec, updates_data, "updates spec")
        )
        return cls(
            graph=graph,
            model=data.get("model", "deepwalk"),
            model_params=dict(data.get("model_params", {})),
            walk=walk,
            train=train,
            evaluation=evaluation,
            streaming=streaming,
            sharding=sharding,
            serving=serving,
            updates=updates,
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the spec as JSON to ``path``."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())
