"""The two-step UniNet pipeline with Table VI's phase decomposition.

    Walks      = RandomWalkGeneration(G, N, L)      -> Tw (+ Ti)
    Embeddings = Word2Vec(Walks)                    -> Tl

``Ti`` (initialisation) covers sampler preprocessing: engine/table/
proposal construction *plus* the time the M-H sampler spends running its
lazy per-state initialization strategy during the walk (the paper
accounts burn-in/high-weight/random costs there, which is what makes the
Fig. 6 initialization bars comparable). ``Tw`` is the remaining walk
time; ``Tt = Ti + Tw + Tl``.

Streaming mode
--------------
With a :class:`~repro.core.config.StreamingConfig`, the walk engine
yields bounded :class:`~repro.walks.corpus.WalkCorpus` shards that the
word2vec trainer absorbs incrementally (``build_vocab`` →
``partial_fit`` per shard → ``finalize``), so peak corpus memory is
O(shard) instead of O(total corpus). With ``overlap=True`` a producer
thread generates shards into a bounded queue while the main thread
trains — Tw and Tl share the wall clock, and ``timings["total"]`` is the
true wall time (less than Ti+Tw+Tl when overlap wins). The monolithic
path is the same trainer code run as one shard.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.embedding.word2vec import Word2Vec
from repro.walks.corpus import WalkCorpus
from repro.walks.vectorized import VectorizedWalkEngine


@dataclass
class WalkResult:
    """Output of the walk-generation phase with its engine observables.

    Carries the corpus *plus* the Ti/Tw timings, the sampler counter
    snapshot and the resident sampler bytes, so walk-only callers (e.g.
    :meth:`repro.core.uninet.UniNet.generate_walks`) can observe them
    without re-running or re-querying the engine. Long-lived holders may
    ``dataclasses.replace(result, engine=None, corpus=None)`` to keep
    only the small observables.
    """

    corpus: WalkCorpus | None
    #: ``{"init": Ti, "walk": Tw}`` in seconds.
    timings: dict[str, float]
    #: Engine counter snapshot taken once after generation — the same
    #: keys as :attr:`TrainResult.sampler_stats`.
    stats: dict[str, float]
    #: Resident sampler bytes (chains / tables / proposals).
    memory_bytes: int
    #: Resident corpus bytes (walk matrix + lengths) — the other half of
    #: the walk phase's memory footprint, next to the sampler's.
    corpus_bytes: int = 0
    engine: VectorizedWalkEngine = field(repr=False, default=None)

    @property
    def ti(self) -> float:
        """Initialisation seconds (sampler construction + lazy M-H init)."""
        return self.timings.get("init", 0.0)

    @property
    def tw(self) -> float:
        """Walk-generation seconds (excluding initialisation)."""
        return self.timings.get("walk", 0.0)


@dataclass
class TrainResult:
    """Everything a pipeline run produces."""

    embeddings: object | None
    corpus: WalkCorpus | None
    #: Phase seconds keyed ``"init"`` / ``"walk"`` / ``"learn"`` /
    #: ``"total"`` (the paper's Ti / Tw / Tl / Tt; see the properties).
    #: In overlapped streaming mode ``walk`` and ``learn`` are per-phase
    #: busy times and ``total`` is the wall clock, so ``total`` may be
    #: *less* than their sum — that difference is the overlap win.
    timings: dict[str, float] = field(default_factory=dict)
    #: Sampler counter snapshot from :meth:`VectorizedWalkEngine.stats`,
    #: taken once at the end of walk generation: ``samples``,
    #: ``proposals``, ``accepts``, ``initializations``, ``init_seconds``,
    #: ``acceptance_ratio`` and ``setup_seconds`` (all numbers).
    sampler_stats: dict[str, float] = field(default_factory=dict)
    sampler_memory_bytes: int = 0
    #: ``num_walks`` / ``token_count`` of the corpus — populated in both
    #: modes, so reporting never needs the (possibly absent) corpus.
    corpus_summary: dict[str, int] = field(default_factory=dict)
    #: Peak corpus-resident bytes observed during the run: the whole
    #: corpus when monolithic, the tracked shard/queue/buffer high-water
    #: mark when streaming.
    peak_corpus_bytes: int = 0
    #: True when the run streamed shards (``corpus`` is None then).
    streaming: bool = False
    #: The live :class:`~repro.embedding.word2vec.Word2Vec` trainer
    #: (vocab + weight matrices) — what makes incremental re-training
    #: after a graph delta possible (``UniNet.refresh_embeddings`` calls
    #: its ``partial_fit``). None for walk-only runs.
    trainer: object | None = field(default=None, repr=False)

    @property
    def ti(self) -> float:
        """Initialisation seconds (sampler construction + lazy M-H init)."""
        return self.timings.get("init", 0.0)

    @property
    def tw(self) -> float:
        """Walk-generation seconds (excluding initialisation)."""
        return self.timings.get("walk", 0.0)

    @property
    def tl(self) -> float:
        """Embedding-learning seconds."""
        return self.timings.get("learn", 0.0)

    @property
    def tt(self) -> float:
        """Total seconds."""
        return self.timings.get("total", self.ti + self.tw + self.tl)


def _shard_model_spec(model):
    """``(name, params)`` for the sharded engine's per-shard model rebuild.

    Shard workers reconstruct the model from its registry name plus the
    ``param_spec``-declared constructor parameters, which every builtin
    model stores verbatim under the declared attribute names. Declared
    names an instance does not carry (e.g. metapath2vec's ``type_names``,
    folded into the parsed ``metapath``) fall back to their constructor
    defaults.
    """
    if isinstance(model, str):
        return model, {}
    from repro.errors import ReproError, ShardError
    from repro.walks.models import MODEL_REGISTRY

    name = getattr(model, "name", None)
    try:
        spec = MODEL_REGISTRY.entry(name).capabilities.get("param_spec", {})
    except ReproError:
        raise ShardError(
            f"cannot shard model {name!r}: workers rebuild models from their "
            "registry name, and this instance's name is not registered"
        ) from None
    params = {p: getattr(model, p) for p in spec if hasattr(model, p)}
    return name, params


def _build_sharded_engine(graph, model, walk_config, sharding, *, budget=None, seed=None):
    """Construct the :class:`ShardedWalkEngine` a sharding block asks for."""
    from repro.sharding.engine import ShardedWalkEngine

    name, params = _shard_model_spec(model)
    return ShardedWalkEngine(
        graph,
        name,
        sampler=walk_config.sampler,
        num_shards=sharding.shards,
        partitioner=sharding.partitioner,
        transport=sharding.transport,
        hosts=sharding.hosts,
        connect_timeout=sharding.connect_timeout,
        call_timeout=sharding.call_timeout,
        initializer=walk_config.initializer,
        init_sample_cap=walk_config.init_sample_cap,
        burn_in_iterations=walk_config.burn_in_iterations,
        table_budget_bytes=walk_config.table_budget_bytes,
        max_reject_rounds=walk_config.max_reject_rounds,
        backend=walk_config.backend,
        budget=budget,
        seed=seed,
        **params,
    )


def generate_walk_result(
    graph, model, walk_config, *, seed=None, budget=None, start_nodes=None, sharding=None
) -> WalkResult:
    """Walk-generation step with Ti/Tw accounting.

    The engine's counter snapshot is taken exactly once, after
    generation, and shared by the Ti computation and the returned
    :class:`WalkResult` (so downstream consumers never re-query
    ``engine.stats()``).

    ``sharding`` takes a :class:`~repro.core.config.ShardingConfig` (or
    an equivalent dict) to generate the walks on the partitioned
    :class:`~repro.sharding.engine.ShardedWalkEngine` instead — same
    corpus bit-for-bit, and the returned stats gain the migration and
    partition-balance counters.
    """
    from repro.core.config import ShardingConfig

    if isinstance(sharding, dict):
        sharding = ShardingConfig(**sharding)
    start = time.perf_counter()
    if sharding is not None and sharding.enabled:
        engine = _build_sharded_engine(
            graph, model, walk_config, sharding, budget=budget, seed=seed
        )
    else:
        engine = VectorizedWalkEngine(
            graph,
            model,
            sampler=walk_config.sampler,
            initializer=walk_config.initializer,
            init_sample_cap=walk_config.init_sample_cap,
            burn_in_iterations=walk_config.burn_in_iterations,
            table_budget_bytes=walk_config.table_budget_bytes,
            max_reject_rounds=walk_config.max_reject_rounds,
            backend=walk_config.backend,
            budget=budget,
            seed=seed,
        )
    corpus = engine.generate(
        num_walks=walk_config.num_walks,
        walk_length=walk_config.walk_length,
        start_nodes=start_nodes,
    )
    elapsed = time.perf_counter() - start
    stats = engine.stats()
    ti = stats["setup_seconds"] + stats["init_seconds"]
    timings = {"init": ti, "walk": max(elapsed - ti, 0.0)}
    return WalkResult(
        corpus=corpus,
        timings=timings,
        stats=stats,
        memory_bytes=engine.memory_bytes(),
        corpus_bytes=corpus.nbytes,
        engine=engine,
    )


def generate_walks(
    graph, model, walk_config, *, seed=None, budget=None, start_nodes=None, sharding=None
):
    """Walk-generation step; returns ``(corpus, engine, timings)``.

    Backward-compatible tuple form of :func:`generate_walk_result`;
    timings has ``init`` and ``walk`` entries.
    """
    result = generate_walk_result(
        graph,
        model,
        walk_config,
        seed=seed,
        budget=budget,
        start_nodes=start_nodes,
        sharding=sharding,
    )
    return result.corpus, result.engine, result.timings


def _expected_degree_counts(graph, total_tokens: int) -> np.ndarray:
    """Degree-proportional token-frequency estimate for streamed vocab.

    The stationary distribution of a first-order walk on an undirected
    graph puts mass exactly ∝ degree on each node, so the expected visit
    counts of a ``total_tokens``-token corpus are degree-proportional.
    Every node keeps a floor count of 1 so the vocabulary covers the full
    id space (isolated nodes still start length-1 walks).
    """
    degrees = np.diff(graph.offsets).astype(np.float64)
    total_degree = degrees.sum()
    if total_degree <= 0:
        return np.ones(graph.num_nodes, dtype=np.int64)
    expected = np.floor(total_tokens * degrees / total_degree).astype(np.int64)
    return expected + 1


class _CorpusResidency:
    """Thread-safe high-water mark of corpus bytes resident in the pipeline."""

    def __init__(self):
        self._lock = threading.Lock()
        self._live = 0
        self.peak = 0

    def acquire(self, nbytes: int) -> None:
        with self._lock:
            self._live += nbytes
            self.peak = max(self.peak, self._live)

    def release(self, nbytes: int) -> None:
        with self._lock:
            self._live -= nbytes

    def observe(self, extra: int = 0) -> None:
        with self._lock:
            self.peak = max(self.peak, self._live + extra)


def train_streaming_pipeline(
    graph,
    model,
    walk_config,
    train_config,
    streaming,
    *,
    seed=None,
    budget=None,
    start_nodes=None,
) -> TrainResult:
    """Shard-streaming walk→train with bounded corpus memory.

    Walk shards come from :meth:`VectorizedWalkEngine.generate_stream`
    (rebuilt identically for the exact-vocab counting pass, since the
    engine seed is pinned first) and feed :meth:`Word2Vec.partial_fit`.
    ``overlap=True`` moves generation into a producer thread with a
    bounded queue; numpy kernels release the GIL, so walk and learn work
    genuinely overlap.
    """
    from repro.utils.rng import as_rng
    from repro.walks.models import make_model

    # pin a concrete engine seed so the stream is re-creatable (exact
    # vocab pass + training pass see identical walks); integer seeds pass
    # through untouched so a streamed run walks the same corpus as a
    # monolithic run with the same seed
    if not isinstance(seed, (int, np.integer)):
        seed = int(as_rng(seed).integers(2**31))
    seed = int(seed)
    bound = make_model(model, graph)
    starts = (
        bound.valid_start_nodes()
        if start_nodes is None
        else np.asarray(start_nodes, dtype=np.int64)
    )
    if starts.size == 0:
        from repro.errors import WalkError

        raise WalkError("no valid start nodes for this model/graph")
    total_walks = walk_config.num_walks * starts.size
    shard_walks = streaming.resolve_shard_walks(walk_config.walk_length, starts.size)

    engine_cell: dict[str, VectorizedWalkEngine] = {}

    def shard_iter(charge_budget: bool):
        engine = VectorizedWalkEngine(
            graph,
            bound,
            sampler=walk_config.sampler,
            initializer=walk_config.initializer,
            init_sample_cap=walk_config.init_sample_cap,
            burn_in_iterations=walk_config.burn_in_iterations,
            table_budget_bytes=walk_config.table_budget_bytes,
            max_reject_rounds=walk_config.max_reject_rounds,
            backend=walk_config.backend,
            budget=budget if charge_budget else None,
            seed=seed,
        )
        engine_cell["engine"] = engine
        return engine.generate_stream(
            num_walks=walk_config.num_walks,
            walk_length=walk_config.walk_length,
            start_nodes=starts,
            shard_walks=shard_walks,
        )

    wall_start = time.perf_counter()
    walk_seconds = 0.0
    learn_seconds = 0.0

    trainer_kwargs = train_config.word2vec_kwargs()
    if streaming.block_walks is not None:
        trainer_kwargs["block_walks"] = streaming.block_walks
    elif "block_walks" not in trainer_kwargs:
        # align canonical blocks with the shards so the trainer's partial
        # block buffer never outgrows one shard — the memory bound stays
        # O(shard). (Set streaming.block_walks explicitly — e.g. to the
        # trainer default — to reproduce a monolithic run bit-for-bit.)
        trainer_kwargs["block_walks"] = shard_walks
    trainer = Word2Vec(train_config.dimensions, seed=seed, **trainer_kwargs)

    ti_counting_pass = 0.0
    if streaming.vocab == "exact":
        t0 = time.perf_counter()
        counts = np.zeros(graph.num_nodes, dtype=np.int64)
        for shard in shard_iter(charge_budget=True):
            counts += shard.node_frequencies(graph.num_nodes)
        walk_seconds += time.perf_counter() - t0
        # the counting pass built its own engine; account its setup/init
        # as Ti, not Tw, like every other engine
        count_stats = engine_cell["engine"].stats()
        ti_counting_pass = count_stats["setup_seconds"] + count_stats["init_seconds"]
        charge_training_pass = False
    else:
        counts = _expected_degree_counts(
            graph, total_walks * walk_config.walk_length
        )
        charge_training_pass = True
    trainer.build_vocab(counts, total_walks=total_walks)

    residency = _CorpusResidency()
    summary = {"num_walks": 0, "token_count": 0}

    def consume(shard) -> None:
        nonlocal learn_seconds
        residency.observe(trainer.buffered_bytes())
        t0 = time.perf_counter()
        trainer.partial_fit(shard)
        learn_seconds += time.perf_counter() - t0
        summary["num_walks"] += shard.num_walks
        summary["token_count"] += shard.token_count
        residency.release(shard.nbytes)
        residency.observe(trainer.buffered_bytes())

    if not streaming.overlap:
        t0 = time.perf_counter()
        shards = shard_iter(charge_budget=charge_training_pass)
        walk_seconds += time.perf_counter() - t0  # engine construction
        while True:
            t0 = time.perf_counter()
            shard = next(shards, None)
            walk_seconds += time.perf_counter() - t0
            if shard is None:
                break
            residency.acquire(shard.nbytes)
            consume(shard)
    else:
        shard_queue: queue.Queue = queue.Queue(maxsize=streaming.queue_shards)
        _DONE = object()
        stop = threading.Event()
        producer_state = {"walk_seconds": 0.0, "error": None}

        def produce():
            try:
                t0 = time.perf_counter()
                shards = shard_iter(charge_budget=charge_training_pass)
                producer_state["walk_seconds"] += time.perf_counter() - t0
                while not stop.is_set():
                    t0 = time.perf_counter()
                    shard = next(shards, None)
                    producer_state["walk_seconds"] += time.perf_counter() - t0
                    if shard is None:
                        break
                    residency.acquire(shard.nbytes)
                    # bounded put that re-checks stop, so a dying consumer
                    # never strands this thread on a full queue
                    while not stop.is_set():
                        try:
                            shard_queue.put(shard, timeout=0.1)
                            break
                        except queue.Full:
                            continue
            except BaseException as err:  # repro-lint: ignore[RPR004] — transported to and re-raised on the consumer side
                producer_state["error"] = err
            finally:
                stop.set()  # unblock anyone; mark end-of-stream
                try:
                    shard_queue.put_nowait(_DONE)
                except queue.Full:
                    pass  # consumer is gone or will see stop via timeout

        producer = threading.Thread(target=produce, name="walk-producer", daemon=True)
        producer.start()
        try:
            while True:
                try:
                    item = shard_queue.get(timeout=0.1)
                except queue.Empty:
                    if stop.is_set() and not producer.is_alive():
                        break
                    continue
                if item is _DONE:
                    break
                consume(item)
        finally:
            # whatever path exits the loop (done, consumer exception),
            # release the producer and reap the thread
            stop.set()
            while producer.is_alive():
                try:
                    shard_queue.get_nowait()
                except queue.Empty:
                    producer.join(timeout=0.1)
            producer.join()
        if producer_state["error"] is not None:
            raise producer_state["error"]
        walk_seconds += producer_state["walk_seconds"]

    t0 = time.perf_counter()
    embeddings = trainer.finalize()
    learn_seconds += time.perf_counter() - t0

    wall = time.perf_counter() - wall_start
    engine = engine_cell["engine"]
    stats = engine.stats()
    ti = ti_counting_pass + stats["setup_seconds"] + stats["init_seconds"]
    timings = {
        "init": ti,
        "walk": max(walk_seconds - ti, 0.0),
        "learn": learn_seconds,
        "total": wall,
    }
    return TrainResult(
        embeddings=embeddings,
        corpus=None,
        timings=timings,
        sampler_stats=stats,
        sampler_memory_bytes=engine.memory_bytes(),
        corpus_summary=dict(summary),
        peak_corpus_bytes=residency.peak,
        streaming=True,
        trainer=trainer,
    )


def train_pipeline(
    graph,
    model,
    walk_config=None,
    train_config=None,
    *,
    seed=None,
    budget=None,
    start_nodes=None,
    skip_learning: bool = False,
    streaming=None,
    sharding=None,
) -> TrainResult:
    """Run the full pipeline for one (graph, model, sampler) configuration.

    ``skip_learning=True`` stops after walk generation (the setting of
    the paper's Table VII / Fig. 6-7, which time only the walk phase).
    ``streaming`` takes a :class:`~repro.core.config.StreamingConfig`
    (or an equivalent dict) to run the shard-streaming path; walk-only
    runs ignore it, since without a trainer there is nothing to stream
    into. ``sharding`` takes a
    :class:`~repro.core.config.ShardingConfig` (or dict) to generate the
    walks on the partitioned engine — corpus (and thus embeddings) stay
    bitwise identical; streaming and sharding are mutually exclusive
    (the sharded engine has no shard-stream generator).
    """
    from repro.core.config import ShardingConfig, StreamingConfig, TrainConfig, WalkConfig

    walk_config = walk_config or WalkConfig()
    train_config = train_config or TrainConfig()
    if isinstance(streaming, dict):
        streaming = StreamingConfig(**streaming)
    if isinstance(sharding, dict):
        sharding = ShardingConfig(**sharding)
    if (
        sharding is not None
        and sharding.enabled
        and streaming is not None
        and streaming.enabled
        and not skip_learning
    ):
        from repro.errors import WalkError

        raise WalkError(
            "streaming and sharding cannot be combined: the sharded engine "
            "materialises whole waves and has no shard-stream generator; "
            "disable one block (e.g. --set streaming.enabled=false)"
        )

    if streaming is not None and streaming.enabled and not skip_learning:
        return train_streaming_pipeline(
            graph,
            model,
            walk_config,
            train_config,
            streaming,
            seed=seed,
            budget=budget,
            start_nodes=start_nodes,
        )

    walked = generate_walk_result(
        graph,
        model,
        walk_config,
        seed=seed,
        budget=budget,
        start_nodes=start_nodes,
        sharding=sharding,
    )

    embeddings = None
    trainer = None
    learn_seconds = 0.0
    if not skip_learning:
        t0 = time.perf_counter()
        trainer = Word2Vec(
            train_config.dimensions, seed=seed, **train_config.word2vec_kwargs()
        )
        embeddings = trainer.fit(walked.corpus, num_nodes=graph.num_nodes)
        learn_seconds = time.perf_counter() - t0

    timings = dict(walked.timings)
    timings["learn"] = learn_seconds
    timings["total"] = timings["init"] + timings["walk"] + learn_seconds
    return TrainResult(
        embeddings=embeddings,
        corpus=walked.corpus,
        timings=timings,
        sampler_stats=walked.stats,
        sampler_memory_bytes=walked.memory_bytes,
        corpus_summary={
            "num_walks": walked.corpus.num_walks,
            "token_count": walked.corpus.token_count,
        },
        peak_corpus_bytes=walked.corpus_bytes,
        streaming=False,
        trainer=trainer,
    )
