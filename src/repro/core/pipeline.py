"""The two-step UniNet pipeline with Table VI's phase decomposition.

    Walks      = RandomWalkGeneration(G, N, L)      -> Tw (+ Ti)
    Embeddings = Word2Vec(Walks)                    -> Tl

``Ti`` (initialisation) covers sampler preprocessing: engine/table/
proposal construction *plus* the time the M-H sampler spends running its
lazy per-state initialization strategy during the walk (the paper
accounts burn-in/high-weight/random costs there, which is what makes the
Fig. 6 initialization bars comparable). ``Tw`` is the remaining walk
time; ``Tt = Ti + Tw + Tl``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.embedding.word2vec import Word2Vec
from repro.walks.corpus import WalkCorpus
from repro.walks.vectorized import VectorizedWalkEngine


@dataclass
class WalkResult:
    """Output of the walk-generation phase with its engine observables.

    Carries the corpus *plus* the Ti/Tw timings, the sampler counter
    snapshot and the resident sampler bytes, so walk-only callers (e.g.
    :meth:`repro.core.uninet.UniNet.generate_walks`) can observe them
    without re-running or re-querying the engine. Long-lived holders may
    ``dataclasses.replace(result, engine=None, corpus=None)`` to keep
    only the small observables.
    """

    corpus: WalkCorpus | None
    #: ``{"init": Ti, "walk": Tw}`` in seconds.
    timings: dict[str, float]
    #: Engine counter snapshot taken once after generation — the same
    #: keys as :attr:`TrainResult.sampler_stats`.
    stats: dict[str, float]
    #: Resident sampler bytes (chains / tables / proposals).
    memory_bytes: int
    engine: VectorizedWalkEngine = field(repr=False, default=None)

    @property
    def ti(self) -> float:
        """Initialisation seconds (sampler construction + lazy M-H init)."""
        return self.timings.get("init", 0.0)

    @property
    def tw(self) -> float:
        """Walk-generation seconds (excluding initialisation)."""
        return self.timings.get("walk", 0.0)


@dataclass
class TrainResult:
    """Everything a pipeline run produces."""

    embeddings: object | None
    corpus: WalkCorpus | None
    #: Phase seconds keyed ``"init"`` / ``"walk"`` / ``"learn"`` /
    #: ``"total"`` (the paper's Ti / Tw / Tl / Tt; see the properties).
    timings: dict[str, float] = field(default_factory=dict)
    #: Sampler counter snapshot from :meth:`VectorizedWalkEngine.stats`,
    #: taken once at the end of walk generation: ``samples``,
    #: ``proposals``, ``accepts``, ``initializations``, ``init_seconds``,
    #: ``acceptance_ratio`` and ``setup_seconds`` (all numbers).
    sampler_stats: dict[str, float] = field(default_factory=dict)
    sampler_memory_bytes: int = 0

    @property
    def ti(self) -> float:
        """Initialisation seconds (sampler construction + lazy M-H init)."""
        return self.timings.get("init", 0.0)

    @property
    def tw(self) -> float:
        """Walk-generation seconds (excluding initialisation)."""
        return self.timings.get("walk", 0.0)

    @property
    def tl(self) -> float:
        """Embedding-learning seconds."""
        return self.timings.get("learn", 0.0)

    @property
    def tt(self) -> float:
        """Total seconds."""
        return self.timings.get("total", self.ti + self.tw + self.tl)


def generate_walk_result(
    graph, model, walk_config, *, seed=None, budget=None, start_nodes=None
) -> WalkResult:
    """Walk-generation step with Ti/Tw accounting.

    The engine's counter snapshot is taken exactly once, after
    generation, and shared by the Ti computation and the returned
    :class:`WalkResult` (so downstream consumers never re-query
    ``engine.stats()``).
    """
    start = time.perf_counter()
    engine = VectorizedWalkEngine(
        graph,
        model,
        sampler=walk_config.sampler,
        initializer=walk_config.initializer,
        init_sample_cap=walk_config.init_sample_cap,
        burn_in_iterations=walk_config.burn_in_iterations,
        table_budget_bytes=walk_config.table_budget_bytes,
        max_reject_rounds=walk_config.max_reject_rounds,
        budget=budget,
        seed=seed,
    )
    corpus = engine.generate(
        num_walks=walk_config.num_walks,
        walk_length=walk_config.walk_length,
        start_nodes=start_nodes,
    )
    elapsed = time.perf_counter() - start
    stats = engine.stats()
    ti = stats["setup_seconds"] + stats["init_seconds"]
    timings = {"init": ti, "walk": max(elapsed - ti, 0.0)}
    return WalkResult(
        corpus=corpus,
        timings=timings,
        stats=stats,
        memory_bytes=engine.memory_bytes(),
        engine=engine,
    )


def generate_walks(graph, model, walk_config, *, seed=None, budget=None, start_nodes=None):
    """Walk-generation step; returns ``(corpus, engine, timings)``.

    Backward-compatible tuple form of :func:`generate_walk_result`;
    timings has ``init`` and ``walk`` entries.
    """
    result = generate_walk_result(
        graph, model, walk_config, seed=seed, budget=budget, start_nodes=start_nodes
    )
    return result.corpus, result.engine, result.timings


def train_pipeline(
    graph,
    model,
    walk_config=None,
    train_config=None,
    *,
    seed=None,
    budget=None,
    start_nodes=None,
    skip_learning: bool = False,
) -> TrainResult:
    """Run the full pipeline for one (graph, model, sampler) configuration.

    ``skip_learning=True`` stops after walk generation (the setting of
    the paper's Table VII / Fig. 6-7, which time only the walk phase).
    """
    from repro.core.config import TrainConfig, WalkConfig

    walk_config = walk_config or WalkConfig()
    train_config = train_config or TrainConfig()

    walked = generate_walk_result(
        graph, model, walk_config, seed=seed, budget=budget, start_nodes=start_nodes
    )

    embeddings = None
    learn_seconds = 0.0
    if not skip_learning:
        t0 = time.perf_counter()
        trainer = Word2Vec(
            train_config.dimensions, seed=seed, **train_config.word2vec_kwargs()
        )
        embeddings = trainer.fit(walked.corpus, num_nodes=graph.num_nodes)
        learn_seconds = time.perf_counter() - t0

    timings = dict(walked.timings)
    timings["learn"] = learn_seconds
    timings["total"] = timings["init"] + timings["walk"] + learn_seconds
    return TrainResult(
        embeddings=embeddings,
        corpus=walked.corpus,
        timings=timings,
        sampler_stats=walked.stats,
        sampler_memory_bytes=walked.memory_bytes,
    )
