"""The UniNet framework facade.

:class:`~repro.core.uninet.UniNet` ties the packages together into the
paper's two-step pipeline (walk generation -> word2vec) with the phase
timing decomposition (Ti / Tw / Tl / Tt) that Table VI reports.
"""

from repro.core.config import TrainConfig, WalkConfig
from repro.core.pipeline import TrainResult, train_pipeline
from repro.core.uninet import UniNet

__all__ = ["UniNet", "WalkConfig", "TrainConfig", "train_pipeline", "TrainResult"]
