"""The UniNet framework facade and the declarative experiment layer.

:class:`~repro.core.uninet.UniNet` ties the packages together into the
paper's two-step pipeline (walk generation -> word2vec) with the phase
timing decomposition (Ti / Tw / Tl / Tt) that Table VI reports.

:class:`~repro.core.spec.RunSpec` captures one experiment as data
(JSON-serialisable, registry-validated) and
:func:`~repro.core.runner.run` / :func:`~repro.core.runner.run_many`
execute it, returning structured :class:`~repro.core.runner.RunReport`
objects.
"""

from repro.core.config import StreamingConfig, TrainConfig, WalkConfig
from repro.core.pipeline import (
    TrainResult,
    WalkResult,
    generate_walk_result,
    generate_walks,
    train_pipeline,
    train_streaming_pipeline,
)
from repro.core.runner import RunReport, expand_grid, expand_variations, run, run_many
from repro.core.spec import EvalSpec, GraphSpec, RunSpec
from repro.core.uninet import UniNet

__all__ = [
    "UniNet",
    "WalkConfig",
    "TrainConfig",
    "StreamingConfig",
    "train_pipeline",
    "train_streaming_pipeline",
    "generate_walks",
    "generate_walk_result",
    "TrainResult",
    "WalkResult",
    "RunSpec",
    "GraphSpec",
    "EvalSpec",
    "RunReport",
    "run",
    "run_many",
    "expand_grid",
    "expand_variations",
]
