"""Declarative experiment execution: ``repro.run`` / ``repro.run_many``.

:func:`run` executes one :class:`~repro.core.spec.RunSpec` end to end —
load graph, resolve the model through the registry, generate walks, learn
embeddings, evaluate — and returns a structured :class:`RunReport` with
the paper's phase timings (Ti/Tw/Tl/Tt), the sampler counter snapshot,
and any evaluation metrics.

:func:`run_many` expands a grid over spec fields (the multi-configuration
loops every benchmark used to hand-roll)::

    reports = repro.run_many(base_spec, grid={
        "sampler": ["mh", "direct", "rejection"],
        "model": ["deepwalk", "node2vec"],
    })

Grid keys are dotted paths into the spec dict (``"walk.num_walks"``,
``"model_params.p"``, ``"train.dimensions"``); the walk sugar keys
``sampler`` / ``initializer`` / ``num_walks`` / ``walk_length`` work at
the top level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TrainConfig
from repro.core.pipeline import train_pipeline
from repro.core.spec import RunSpec
from repro.errors import SpecError

#: Top-level grid keys rewritten to their real dotted location.
_GRID_SUGAR = {
    "sampler": "walk.sampler",
    "initializer": "walk.initializer",
    "num_walks": "walk.num_walks",
    "walk_length": "walk.walk_length",
    "backend": "walk.backend",
    "shards": "sharding.shards",
    "partitioner": "sharding.partitioner",
}


def _jsonable(value):
    """Coerce numpy scalars/arrays and tuples so ``json.dumps`` works."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


@dataclass
class RunReport:
    """Structured outcome of one :func:`run` call."""

    spec: RunSpec
    #: Phase seconds: ``init`` (Ti), ``walk`` (Tw), ``learn`` (Tl),
    #: ``total`` (Tt).
    timings: dict[str, float]
    #: Engine counter snapshot (``acceptance_ratio``, ``setup_seconds``,
    #: ``init_seconds``, ...), taken once after walk generation.
    sampler_stats: dict[str, float]
    sampler_memory_bytes: int
    #: Corpus shape: ``num_walks``, ``token_count`` and
    #: ``peak_corpus_bytes`` (the whole corpus when monolithic, the
    #: shard/queue high-water mark when streaming).
    corpus_summary: dict[str, int]
    #: Evaluation results keyed by task name (empty when no evaluation).
    metrics: dict = field(default_factory=dict)
    embeddings: object | None = field(default=None, repr=False)
    corpus: object | None = field(default=None, repr=False)

    @property
    def ti(self) -> float:
        return self.timings.get("init", 0.0)

    @property
    def tw(self) -> float:
        return self.timings.get("walk", 0.0)

    @property
    def tl(self) -> float:
        return self.timings.get("learn", 0.0)

    @property
    def tt(self) -> float:
        return self.timings.get("total", self.ti + self.tw + self.tl)

    def to_dict(self) -> dict:
        """JSON-ready dict (embeddings and corpus are not serialised)."""
        return _jsonable(
            {
                "spec": self.spec.to_dict(),
                "timings": self.timings,
                "sampler_stats": self.sampler_stats,
                "sampler_memory_bytes": self.sampler_memory_bytes,
                "corpus_summary": self.corpus_summary,
                "metrics": self.metrics,
            }
        )

    def summary_row(self) -> dict:
        """One flat table row (benchmark/CLI reporting convenience)."""
        row = {
            "run": self.spec.label(),
            "model": self.spec.model,
            "sampler": self.spec.walk.sampler,
            "init_s": self.ti,
            "walk_s": self.tw,
            "learn_s": self.tl,
            "total_s": self.tt,
            "acceptance": self.sampler_stats.get("acceptance_ratio", 1.0),
            "memory_bytes": self.sampler_memory_bytes,
        }
        for task, result in self.metrics.items():
            if isinstance(result, dict):
                for key, value in result.items():
                    if isinstance(value, (int, float)):
                        row[f"{task}.{key}"] = value
        return row


def _evaluate(spec: RunSpec, result, labels) -> dict:
    ev = spec.evaluation
    if ev is None:
        return {}
    if labels is None:
        raise SpecError(
            f"evaluation task {ev.task!r} needs a labeled dataset; "
            f"{spec.graph.dataset or spec.graph.edge_list!r} has no labels"
        )
    if ev.task == "classification":
        from repro.evaluation import classification_sweep

        sweep = classification_sweep(
            result.embeddings,
            labels,
            train_fractions=ev.train_fractions,
            trials=ev.trials,
            seed=ev.seed,
        )
        return {"classification": sweep}
    from repro.evaluation import clustering_experiment

    return {"clustering": clustering_experiment(result.embeddings, labels, seed=ev.seed)}


def _serve_probe(spec: RunSpec, embeddings) -> dict:
    """Stand up the spec's serving block and fire one probe batch.

    Returns the :class:`~repro.serving.service.QueryService` counter
    snapshot (qps, mean batch latency, cache hit rate) — the read-path
    numbers recorded next to the evaluation metrics. With a non-float32
    codec the store is quantized first and the snapshot additionally
    carries ``compression_ratio`` (float32 matrix bytes over encoded
    bytes) and ``recall_probe`` (the probe batch's top-``topn`` overlap
    with the exact float32 brute-force answers).
    """
    from repro.serving import EmbeddingStore, QueryService

    sv = spec.serving
    base = EmbeddingStore.from_keyed_vectors(embeddings)
    store = base if sv.codec == "float32" else base.recode(sv.codec, **sv.codec_params)
    service = QueryService(
        store, index=sv.index, cache_size=sv.cache_size, **sv.index_params
    )
    probe_keys = np.asarray(service.store.keys)[: min(sv.probe_queries, len(service.store))]
    results = service.most_similar_batch(probe_keys, topn=sv.topn)
    stats = service.stats()
    stats["topn"] = sv.topn
    stats["compression_ratio"] = base.codes.nbytes / max(store.codes.nbytes, 1)
    # anything approximate in the path — a lossy codec or a non-exact
    # index — gets its recall measured against the exact float32 scan;
    # only exact-on-exact is 1.0 by construction
    from repro.serving.index import INDEX_REGISTRY

    index_exact = bool(INDEX_REGISTRY.entry(sv.index).capabilities.get("exact", False))
    if store is not base or not index_exact:
        from repro.serving import topk_overlap

        exact = QueryService(base, index="bruteforce", cache_size=0).most_similar_batch(
            probe_keys, topn=sv.topn
        )
        stats["recall_probe"] = topk_overlap(exact, results)
    else:
        stats["recall_probe"] = 1.0
    if sv.server is not None:
        stats["server"] = _server_probe(sv, store, probe_keys)
    return stats


def _server_probe(sv, store, probe_keys) -> dict:
    """Drive the probe keys through a batching :class:`QueryServer`.

    One concurrent in-process client per probe key, so the dispatcher
    actually coalesces — the recorded ``mean_batch``/``p99_ms``/``qps``
    reflect the micro-batching path, not a sequential loop.
    """
    import asyncio

    from repro.serving import InProcessClient, QueryServer

    server = QueryServer(
        store, index=sv.index, cache_size=sv.cache_size, **sv.server, **sv.index_params
    )

    async def drive() -> dict:
        await server.start()
        client = InProcessClient(server)
        await asyncio.gather(
            *(client.most_similar(int(k), topn=sv.topn) for k in probe_keys)
        )
        stats = server.stats()
        await server.stop()
        return stats

    stats = asyncio.run(drive())
    return {
        key: stats[key]
        for key in (
            "answered",
            "shed",
            "batches",
            "mean_batch",
            "p50_ms",
            "p99_ms",
            "qps",
            "max_batch",
            "max_wait_us",
            "queue_size",
        )
    }


def _run_with_updates(spec: RunSpec, graph, model):
    """Train, then replay the spec's delta schedule through the facade.

    Returns the (possibly refreshed) :class:`TrainResult` plus one
    metrics row per update step — the per-step sampler revalidation and
    incremental-retrain costs that ``report.metrics["updates"]`` records.
    """
    import dataclasses

    from repro.core.uninet import UniNet

    net = UniNet(
        graph,
        model=model,
        sampler=spec.walk.sampler,
        initializer=spec.walk.initializer,
        table_budget_bytes=spec.walk.table_budget_bytes,
        backend=spec.walk.backend,
        seed=spec.seed,
    )
    result = net.train_from_configs(
        spec.walk_config(),
        spec.train or TrainConfig(),
        streaming=spec.streaming,
        sharding=spec.sharding,
    )
    upd = spec.updates
    rows = []
    for i, delta in enumerate(upd.deltas()):
        ur = net.update(delta, refresh=upd.refresh)
        row = {
            "step": i,
            "added": int(delta.add_src.size),
            "removed": int(delta.remove_src.size),
            "reweighted": int(delta.reweight_src.size),
            "add_nodes": int(delta.add_nodes),
            "update_s": ur.seconds,
            "invalidated_states": int(ur.sampler_refresh.get("invalidated_states", 0)),
            "rebuilt_nodes": int(ur.sampler_refresh.get("rebuilt_nodes", 0)),
            "rebuild_cost_bytes": int(ur.sampler_refresh.get("rebuild_cost_bytes", 0)),
        }
        if upd.retrain:
            rr = net.refresh_embeddings(
                num_walks=upd.num_walks, walk_length=upd.walk_length
            )
            row["refresh_s"] = rr.tt
            row["rewalked"] = int(rr.corpus_summary.get("num_walks", 0))
        rows.append(row)
    return dataclasses.replace(result, embeddings=net.last_embeddings), rows


def run(
    spec,
    *,
    keep_embeddings: bool = True,
    keep_corpus: bool = False,
    graph_cache: dict | None = None,
) -> RunReport:
    """Execute one declarative experiment; returns a :class:`RunReport`.

    ``spec`` may be a :class:`RunSpec` or a plain dict (parsed JSON).
    Set ``keep_corpus=True`` to retain the walk corpus on the report
    (off by default — corpora dwarf everything else in memory).
    ``graph_cache`` maps :meth:`GraphSpec.cache_key` to ``(graph,
    labels)``; pass one to reuse already-materialised graphs (callers
    holding the graph can seed it: ``{spec.graph.cache_key(): (graph,
    labels)}``) — :func:`run_many` threads one through a whole sweep.
    """
    if isinstance(spec, dict):
        spec = RunSpec.from_dict(spec)
    elif not isinstance(spec, RunSpec):
        raise SpecError(
            f"run() needs a RunSpec or a spec mapping, got {type(spec).__name__}"
        )
    spec.validate()

    cache_key = spec.graph.cache_key()
    if graph_cache is not None and cache_key in graph_cache:
        graph, labels = graph_cache[cache_key]
    else:
        graph, labels = spec.graph.load()
        if graph_cache is not None:
            graph_cache[cache_key] = (graph, labels)
    from repro.walks.models import make_model

    model = make_model(spec.model, graph, **spec.model_params)
    update_rows = None
    if spec.updates is not None:
        result, update_rows = _run_with_updates(spec, graph, model)
    else:
        result = train_pipeline(
            graph,
            model,
            spec.walk_config(),
            spec.train or TrainConfig(),
            seed=spec.seed,
            skip_learning=spec.train is None,
            streaming=spec.streaming,
            sharding=spec.sharding,
        )
    metrics = _jsonable(_evaluate(spec, result, labels))
    if update_rows is not None:
        metrics["updates"] = _jsonable(update_rows)
    if spec.serving is not None:
        metrics["serving"] = _jsonable(_serve_probe(spec, result.embeddings))
    corpus_summary = {k: int(v) for k, v in result.corpus_summary.items()}
    corpus_summary["peak_corpus_bytes"] = int(result.peak_corpus_bytes)
    return RunReport(
        spec=spec,
        timings=dict(result.timings),
        sampler_stats=dict(result.sampler_stats),
        sampler_memory_bytes=result.sampler_memory_bytes,
        corpus_summary=corpus_summary,
        metrics=metrics,
        embeddings=result.embeddings if keep_embeddings else None,
        corpus=result.corpus if keep_corpus else None,
    )


def apply_override(data: dict, key: str, value) -> dict:
    """Set a dotted-path ``key`` inside a spec dict (in place).

    ``"train.dimensions"`` descends into the ``train`` section (creating
    it when it is missing or ``None``); the walk sugar keys map onto the
    ``walk`` section. Returns ``data`` for chaining.
    """
    path = _GRID_SUGAR.get(key, key).split(".")
    if path[0] == "walk" and len(path) == 2 and path[1] in _GRID_SUGAR:
        # a spec dict may carry the same setting as a top-level sugar key
        # (RunSpec.from_dict lets sugar win) — drop it so the override
        # written into the walk section cannot be shadowed by stale sugar
        data.pop(path[1], None)
    node = data
    for part in path[:-1]:
        if not isinstance(node.get(part), dict):
            node[part] = {}
        node = node[part]
    node[path[-1]] = value
    return data


def expand_variations(spec, variations, *, names=None) -> list[RunSpec]:
    """One independent spec per ``{dotted-path: value}`` override dict.

    The base ``spec`` (RunSpec or dict) is deep-copied per variation and
    the overrides applied with :func:`apply_override`; ``names``
    optionally relabels each result. When a variation overrides
    ``model``, the base ``model_params`` are restricted to what the new
    model declares in its ``param_spec`` — so "all samplers x models"
    sweeps work even though e.g. deepwalk takes none of node2vec's
    parameters.
    """
    if isinstance(spec, RunSpec):
        spec = spec.to_dict()
    elif not isinstance(spec, dict):
        raise SpecError("expand_variations needs a RunSpec or a spec dict")
    specs = []
    for i, variation in enumerate(variations):
        data = RunSpec.from_dict(spec).to_dict()  # deep, independent copy
        for key, value in variation.items():
            apply_override(data, key, value)
        if "model" in variation and data.get("model_params"):
            from repro.registry import MODEL_REGISTRY

            param_spec = MODEL_REGISTRY.entry(data["model"]).capabilities.get("param_spec")
            if param_spec is not None:
                data["model_params"] = {
                    k: v for k, v in data["model_params"].items() if k in param_spec
                }
        if names is not None:
            data["name"] = names[i]
        specs.append(RunSpec.from_dict(data))
    return specs


def expand_grid(spec, grid: dict) -> list[RunSpec]:
    """All grid combinations of ``spec`` as independent specs.

    ``grid`` maps dotted spec paths to value lists; the cartesian product
    is expanded in the given key order and each combination is named
    ``<base>[k=v, ...]`` for reporting. Per-combination semantics are
    those of :func:`expand_variations`.
    """
    if isinstance(spec, RunSpec):
        spec = spec.to_dict()
    elif not isinstance(spec, dict):
        raise SpecError("expand_grid needs a RunSpec or a spec dict")
    if not grid:
        return [RunSpec.from_dict(spec)]
    keys = list(grid)
    combos = list(itertools.product(*(grid[k] for k in keys)))
    base_name = spec.get("name") or ""
    names = []
    for combo in combos:
        tag = ", ".join(f"{k}={v}" for k, v in zip(keys, combo))
        names.append(f"{base_name}[{tag}]" if base_name else tag)
    return expand_variations(
        spec, [dict(zip(keys, combo)) for combo in combos], names=names
    )


def run_many(
    spec_or_specs,
    grid: dict | None = None,
    *,
    graph_cache: dict | None = None,
    **run_kwargs,
) -> list[RunReport]:
    """Run a grid sweep (or an explicit spec list); returns the reports.

    Pass a base spec plus ``grid`` to sweep combinations, or a
    list/tuple of specs to run them as-is. Specs sharing an identical
    graph spec load the graph once for the whole sweep; pass a
    pre-seeded ``graph_cache`` (see :func:`run`) to reuse a graph you
    already hold. Extra keyword arguments are forwarded to :func:`run`.
    """
    if isinstance(spec_or_specs, (list, tuple)):
        if grid:
            raise SpecError("pass either a spec list or a base spec + grid, not both")
        specs = [RunSpec.from_dict(s) if isinstance(s, dict) else s for s in spec_or_specs]
    else:
        specs = expand_grid(spec_or_specs, grid or {})
    if graph_cache is None:
        graph_cache = {}
    return [run(s, graph_cache=graph_cache, **run_kwargs) for s in specs]
