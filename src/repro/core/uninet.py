"""UniNet — the user-facing facade of the framework.

One object binds a network to a random-walk model and exposes the paper's
pipeline: generate walks with a pluggable edge sampler (M-H by default)
and learn embeddings with word2vec. Example::

    from repro import UniNet, datasets

    graph, labels = datasets.load("blogcatalog", scale=0.5, seed=7)
    net = UniNet(graph, model="node2vec", p=0.25, q=4.0, seed=7)
    result = net.train(num_walks=10, walk_length=80, dimensions=64)
    result.embeddings.most_similar(0)

Defining a *new* random-walk model needs only the two callbacks of the
unified abstraction — subclass
:class:`~repro.walks.models.base.RandomWalkModel`, implement
``calculate_weight`` (and optionally ``update_state``), and pass the
instance as ``model``.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.config import TrainConfig, WalkConfig
from repro.core.pipeline import TrainResult, WalkResult, generate_walk_result, train_pipeline
from repro.utils.rng import as_rng
from repro.walks.models import make_model


def _coerce_sharding(sharding, *, shards=None, partitioner=None, transport=None, hosts=None):
    """Normalise the facade's sharding sugar to a :class:`ShardingConfig`.

    ``True`` means the defaults, a dict is expanded, and the keyword
    shorthands (``shards=`` / ``partitioner=`` / ``transport=`` /
    ``hosts=``) build a config when no block was given explicitly —
    any one of them enables sharding (``hosts`` sizes ``shards`` to
    the address list when ``shards`` itself was not passed).
    """
    from repro.core.config import ShardingConfig

    if sharding is True:
        return ShardingConfig()
    if isinstance(sharding, dict):
        return ShardingConfig(**sharding)
    if sharding is None and (
        shards is not None or transport is not None or hosts is not None
    ):
        kwargs = {}
        if hosts is not None:
            kwargs["hosts"] = tuple(hosts)
            kwargs["transport"] = "socket" if transport is None else transport
            kwargs["shards"] = len(kwargs["hosts"]) if shards is None else shards
        else:
            kwargs["shards"] = 2 if shards is None else shards
            if transport is not None:
                kwargs["transport"] = transport
        if partitioner is not None:
            kwargs["partitioner"] = partitioner
        return ShardingConfig(**kwargs)
    return sharding


@dataclasses.dataclass
class UpdateResult:
    """Outcome of one :meth:`UniNet.update` call."""

    #: the applied :class:`~repro.graph.delta.GraphDelta`.
    delta: object
    #: the post-delta graph now bound to the facade.
    graph: object = dataclasses.field(repr=False, default=None)
    #: the refresh policy that ran (``affected`` / ``full`` / ``none``).
    refresh: str = "affected"
    #: sampler revalidation report (``invalidated_states``,
    #: ``rebuilt_nodes``, ``rebuild_cost_bytes``) — zeros when no
    #: persistent sampler state existed yet.
    sampler_refresh: dict = dataclasses.field(default_factory=dict)
    #: endpoints touched by this delta (plus any new nodes) — the seeds
    #: of the next incremental re-walk.
    affected_nodes: object = None
    #: wall seconds spent applying the delta + revalidating samplers.
    seconds: float = 0.0
    #: :class:`~repro.core.pipeline.TrainResult` of the incremental
    #: retrain when ``retrain=True`` was passed; None otherwise.
    retrain: TrainResult | None = None


class UniNet:
    """The unified NRL framework bound to one network.

    Parameters
    ----------
    graph:
        a :class:`~repro.graph.csr.CSRGraph`.
    model:
        registry name (``"deepwalk"``, ``"node2vec"``, ``"metapath2vec"``,
        ``"edge2vec"``, ``"fairwalk"``), or a bound
        :class:`~repro.walks.models.base.RandomWalkModel` instance.
    sampler:
        edge sampler: ``"mh"`` (default), ``"direct"``, ``"alias"``,
        ``"rejection"``, ``"knightking"``, ``"memory-aware"``.
    initializer:
        M-H chain initialization strategy (``"high-weight"`` default).
    backend:
        kernel backend for the walk hot loops (``"numpy"`` default,
        ``"numba"``, ``"cnative"``); see
        :mod:`repro.walks.kernels`. Missing optional dependencies raise
        :class:`~repro.errors.ConfigError` at engine build time.
    budget:
        optional :class:`~repro.sampling.memory_model.MemoryBudget` for
        simulated-OOM experiments.
    model_params:
        forwarded to the model constructor (``p``, ``q``, ``metapath``,
        ``transition_matrix``...).
    """

    def __init__(
        self,
        graph,
        model="deepwalk",
        *,
        sampler: str = "mh",
        initializer: str = "high-weight",
        table_budget_bytes: int | None = None,
        backend: str = "numpy",
        budget=None,
        seed=None,
        **model_params,
    ):
        self.graph = graph
        self.model = make_model(model, graph, **model_params)
        self.sampler = sampler
        self.initializer = initializer
        self.backend = backend
        self.table_budget_bytes = table_budget_bytes
        self.budget = budget
        self.seed = seed
        self._rng = as_rng(seed)
        #: :class:`~repro.core.pipeline.WalkResult` observables (timings,
        #: stats, memory bytes — engine and corpus stripped) of the most
        #: recent :meth:`generate_walks` call; None before the first call.
        self.last_walk: WalkResult | None = None
        #: :class:`~repro.embedding.keyed_vectors.KeyedVectors` of the
        #: most recent :meth:`train` call (what :meth:`serve` serves by
        #: default); None before the first call.
        self.last_embeddings = None
        # dynamic-graph state: the graph epoch advances on every
        # update(); embeddings remember the epoch they were trained at,
        # so serve() can refuse to hand out stale vectors.
        self._graph_epoch = 0
        self._embeddings_epoch: int | None = None
        self._trainer = None
        self._chain_store = None
        self._affected: np.ndarray | None = None
        self._last_train: dict | None = None

    # ------------------------------------------------------------------
    def walk_config(self, num_walks: int = 10, walk_length: int = 80, **overrides) -> WalkConfig:
        """Build a :class:`WalkConfig` bound to this instance's sampler."""
        return WalkConfig(
            num_walks=num_walks,
            walk_length=walk_length,
            sampler=overrides.pop("sampler", self.sampler),
            initializer=overrides.pop("initializer", self.initializer),
            table_budget_bytes=overrides.pop("table_budget_bytes", self.table_budget_bytes),
            backend=overrides.pop("backend", self.backend),
            **overrides,
        )

    def generate_walks(
        self, num_walks: int = 10, walk_length: int = 80, start_nodes=None, sharding=None, **overrides
    ):
        """Run only the walk-generation step; returns a WalkCorpus.

        The engine observables of the run (Ti/Tw timings, sampler
        counters, resident bytes) are kept on :attr:`last_walk` /
        :attr:`last_stats`, so they are inspectable without a full
        :meth:`train`. ``sharding`` takes a
        :class:`~repro.core.config.ShardingConfig` (or dict, or ``True``
        for the defaults) to run the walks on the partitioned engine —
        the corpus is bitwise identical either way.
        """
        config = self.walk_config(num_walks, walk_length, **overrides)
        result = generate_walk_result(
            self.graph,
            self.model,
            config,
            seed=int(self._rng.integers(2**31)),
            budget=self.budget,
            start_nodes=start_nodes,
            sharding=_coerce_sharding(sharding),
        )
        # keep only the small observables: the engine's chains/tables and
        # the corpus itself must not stay pinned after the caller is done
        self.last_walk = dataclasses.replace(result, engine=None, corpus=None)
        return result.corpus

    @property
    def last_stats(self) -> dict | None:
        """Sampler stats of the most recent :meth:`generate_walks` call."""
        return None if self.last_walk is None else self.last_walk.stats

    def train(
        self,
        num_walks: int = 10,
        walk_length: int = 80,
        dimensions: int = 128,
        *,
        start_nodes=None,
        walk_overrides: dict | None = None,
        streaming=None,
        sharding=None,
        shards: int | None = None,
        partitioner: str | None = None,
        shard_transport: str | None = None,
        shard_hosts=None,
        **train_params,
    ) -> TrainResult:
        """Full pipeline: walks + word2vec. Returns a TrainResult.

        ``train_params`` go to :class:`TrainConfig` (``window``,
        ``epochs``, ``mode``, ...); ``walk_overrides`` to
        :class:`WalkConfig`. ``streaming`` takes a
        :class:`~repro.core.config.StreamingConfig` (or dict, or ``True``
        for the defaults) to run the bounded-memory shard-streaming
        pipeline instead of materializing the whole corpus. ``sharding``
        takes a :class:`~repro.core.config.ShardingConfig` (or dict, or
        ``True``) to generate the walks on the partitioned engine;
        ``shards=`` / ``partitioner=`` / ``shard_transport=`` /
        ``shard_hosts=`` are shorthand for the common cases
        (``net.train(shards=4, partitioner="degree_balanced")``;
        ``net.train(shard_transport="socket")`` for the loopback
        multi-process path; ``shard_hosts=["hostA:9101", "hostB:9101"]``
        to drive standing ``repro shard-worker`` processes on other
        machines). Either way the corpus — and so the embeddings — is
        bitwise identical to the monolithic run.
        """
        walk_cfg = self.walk_config(num_walks, walk_length, **(walk_overrides or {}))
        train_cfg = TrainConfig(dimensions=dimensions, **train_params)
        if streaming is True:
            from repro.core.config import StreamingConfig

            streaming = StreamingConfig()
        sharding = _coerce_sharding(
            sharding,
            shards=shards,
            partitioner=partitioner,
            transport=shard_transport,
            hosts=shard_hosts,
        )
        return self.train_from_configs(
            walk_cfg, train_cfg, streaming=streaming, sharding=sharding, start_nodes=start_nodes
        )

    def train_from_configs(
        self,
        walk_config: WalkConfig,
        train_config: TrainConfig,
        *,
        streaming=None,
        sharding=None,
        start_nodes=None,
    ) -> TrainResult:
        """Run the full pipeline from prebuilt config objects.

        The config-level twin of :meth:`train` (used by the declarative
        runner); keeps the live trainer so the embeddings can later be
        refreshed incrementally after :meth:`update`.
        """
        result = train_pipeline(
            self.graph,
            self.model,
            walk_config,
            train_config,
            seed=int(self._rng.integers(2**31)),
            budget=self.budget,
            start_nodes=start_nodes,
            streaming=streaming,
            sharding=sharding,
        )
        self.last_embeddings = result.embeddings
        self._trainer = result.trainer
        self._embeddings_epoch = self._graph_epoch
        self._affected = None
        self._last_train = {
            "num_walks": walk_config.num_walks,
            "walk_length": walk_config.walk_length,
            "walk_config": walk_config,
        }
        return result

    # ------------------------------------------------------------------
    # dynamic graphs
    # ------------------------------------------------------------------
    def update(self, delta, *, refresh: str = "affected", retrain: bool = False, **retrain_params) -> UpdateResult:
        """Apply a :class:`~repro.graph.delta.GraphDelta` to the bound graph.

        The graph is merge-rebuilt, the model rebound, and persistent
        sampler state revalidated per ``refresh``:

        * ``"affected"`` (default) — remap the persistent M-H chain
          store, invalidating only chains whose resident edge the delta
          touched (the paper's tableless-update advantage);
        * ``"full"`` — drop every chain (all re-initialise lazily);
        * ``"none"`` — spend nothing now; the chain store is discarded
          and rebuilt fresh on the next walk.

        Embeddings become *stale* after an update — :meth:`serve`
        refuses them until :meth:`refresh_embeddings` (or a full
        :meth:`train`) runs; pass ``retrain=True`` to do that here
        (``retrain_params`` forward to :meth:`refresh_embeddings`).
        Returns an :class:`UpdateResult`.
        """
        from repro.errors import DeltaError
        from repro.graph.delta import DeltaPlan, GraphDelta

        if refresh not in ("affected", "full", "none"):
            raise DeltaError(
                f"refresh must be 'affected', 'full' or 'none', got {refresh!r}"
            )
        if isinstance(delta, dict):
            delta = GraphDelta.from_dict(delta)
        t0 = time.perf_counter()
        plan = DeltaPlan.build(self.graph, delta)
        self.graph = plan.new_graph
        self.model.rebind(plan.new_graph)
        self._graph_epoch += 1
        refresh_info = {"invalidated_states": 0, "rebuilt_nodes": 0, "rebuild_cost_bytes": 0}
        if self._chain_store is not None:
            if refresh == "affected":
                refresh_info = self._chain_store.on_delta(plan, self.model)
            elif refresh == "full":
                from repro.walks.manager import ChainStore

                self._chain_store = ChainStore(self.graph, self.model)
            else:
                self._chain_store = None
        new_nodes = np.arange(plan.old_graph.num_nodes, plan.new_graph.num_nodes, dtype=np.int64)
        affected = np.union1d(delta.touched_endpoints(), new_nodes).astype(np.int64)
        affected = affected[affected < self.graph.num_nodes]
        self._affected = (
            affected if self._affected is None else np.union1d(self._affected, affected)
        )
        result = UpdateResult(
            delta=delta,
            graph=self.graph,
            refresh=refresh,
            sampler_refresh=dict(refresh_info),
            affected_nodes=affected,
            seconds=time.perf_counter() - t0,
        )
        if retrain:
            result.retrain = self.refresh_embeddings(**retrain_params)
        return result

    def affected_start_nodes(self, horizon: int) -> np.ndarray:
        """Nodes within ``horizon - 1`` hops of edges touched since the
        last (re)training — the start set whose walks can differ.

        Uses out-neighbour expansion, which equals the true reach set on
        the symmetric graphs this library stores by convention.
        """
        if self._affected is None or self._affected.size == 0:
            return np.empty(0, dtype=np.int64)
        from repro.walks._segments import concat_ranges

        reached = np.zeros(self.graph.num_nodes, dtype=bool)
        frontier = self._affected[self._affected < self.graph.num_nodes]
        reached[frontier] = True
        for __ in range(max(horizon - 1, 0)):
            lo = self.graph.offsets[frontier]
            deg = self.graph.offsets[frontier + 1] - lo
            flat, __seg = concat_ranges(lo, deg)
            if flat.size == 0:
                break
            nxt = np.unique(self.graph.targets[flat])
            nxt = nxt[~reached[nxt]]
            if nxt.size == 0:
                break
            reached[nxt] = True
            frontier = nxt
            if reached.all():
                break
        return np.flatnonzero(reached)

    def refresh_embeddings(
        self,
        num_walks: int | None = None,
        walk_length: int | None = None,
        *,
        start_nodes=None,
        horizon: int | None = None,
    ) -> TrainResult:
        """Incrementally refresh embeddings after :meth:`update`.

        Re-walks only from nodes within the walk-length horizon of the
        edges touched since the last (re)training (or from
        ``start_nodes``), feeds the fresh corpus to the *live* trainer
        via ``partial_fit`` — new nodes enter the vocabulary with fresh
        rows, every other row continues from its trained state — and
        returns a :class:`~repro.core.pipeline.TrainResult` for the
        incremental pass. M-H chain state persists across refreshes
        through the facade's chain store, so repeated update→refresh
        cycles pay only the touched-state costs.
        """
        from repro.errors import TrainingError
        from repro.walks.vectorized import VectorizedWalkEngine

        if self._trainer is None:
            raise TrainingError(
                "refresh_embeddings needs a prior train() (no live trainer)"
            )
        last = self._last_train or {}
        num_walks = num_walks if num_walks is not None else last.get("num_walks", 10)
        walk_length = walk_length if walk_length is not None else last.get("walk_length", 80)
        if start_nodes is None:
            start_nodes = self.affected_start_nodes(
                walk_length if horizon is None else horizon
            )
        else:
            start_nodes = np.asarray(start_nodes, dtype=np.int64)

        # new nodes enter the vocabulary before training touches them
        space = self._trainer.vocab._index_of.size
        if self.graph.num_nodes > space:
            estimates = np.zeros(self.graph.num_nodes, dtype=np.int64)
            degrees = self.graph.degrees()
            estimates[space:] = degrees[space:] + 1
            self._trainer.expand_vocab(estimates)

        if start_nodes.size == 0:
            # nothing within the horizon changed; embeddings are current
            self._embeddings_epoch = self._graph_epoch
            self._affected = None
            return TrainResult(
                embeddings=self.last_embeddings,
                corpus=None,
                timings={"init": 0.0, "walk": 0.0, "learn": 0.0, "total": 0.0},
                trainer=self._trainer,
            )

        cfg = self.walk_config(num_walks, walk_length)
        chain_store = None
        if cfg.sampler == "mh":
            if self._chain_store is None:
                from repro.walks.manager import ChainStore

                self._chain_store = ChainStore(self.graph, self.model)
            chain_store = self._chain_store
        wall0 = time.perf_counter()
        engine = VectorizedWalkEngine(
            self.graph,
            self.model,
            sampler=cfg.sampler,
            initializer=cfg.initializer,
            init_sample_cap=cfg.init_sample_cap,
            burn_in_iterations=cfg.burn_in_iterations,
            table_budget_bytes=cfg.table_budget_bytes,
            max_reject_rounds=cfg.max_reject_rounds,
            backend=cfg.backend,
            chain_store=chain_store,
            budget=self.budget,
            seed=int(self._rng.integers(2**31)),
        )
        corpus = engine.generate(num_walks, walk_length, start_nodes=start_nodes)
        walk_seconds = time.perf_counter() - wall0
        t0 = time.perf_counter()
        self._trainer.partial_fit(corpus)
        embeddings = self._trainer.finalize()
        learn_seconds = time.perf_counter() - t0

        self.last_embeddings = embeddings
        self._embeddings_epoch = self._graph_epoch
        self._affected = None
        stats = engine.stats()
        ti = stats["setup_seconds"] + stats["init_seconds"]
        return TrainResult(
            embeddings=embeddings,
            corpus=corpus,
            timings={
                "init": ti,
                "walk": max(walk_seconds - ti, 0.0),
                "learn": learn_seconds,
                "total": walk_seconds + learn_seconds,
            },
            sampler_stats=stats,
            sampler_memory_bytes=engine.memory_bytes(),
            corpus_summary={
                "num_walks": corpus.num_walks,
                "token_count": corpus.token_count,
            },
            peak_corpus_bytes=corpus.nbytes,
            trainer=self._trainer,
        )

    @property
    def embeddings_stale(self) -> bool:
        """True when :meth:`update` ran after the last (re)training."""
        return (
            self._embeddings_epoch is not None
            and self._embeddings_epoch != self._graph_epoch
        )

    def serve(
        self,
        embeddings=None,
        *,
        index: str = "bruteforce",
        store_path=None,
        codec: str = "float32",
        codec_params: dict | None = None,
        cache_size: int = 4096,
        server=False,
        **index_params,
    ):
        """Stand up a :class:`~repro.serving.service.QueryService`.

        Serves ``embeddings`` (defaults to the most recent
        :meth:`train` result). With ``store_path`` the embeddings are
        exported to a memory-mapped
        :class:`~repro.serving.store.EmbeddingStore` file first — the
        multi-process deployment shape; without, an in-memory store is
        built. ``codec`` selects the store compression (``"float32"``
        default, ``"int8"``, ``"pq"``; see
        :data:`repro.serving.CODEC_REGISTRY`) with ``codec_params``
        forwarded to the codec constructor; ``index_params`` go to the
        chosen index factory (``nlist``, ``nprobe``, ...).

        With ``server=True`` (or a dict of
        :class:`~repro.serving.server.QueryServer` knobs — ``max_batch``,
        ``max_wait_us``, ``queue_size``, ``host``, ``port``) the result
        is instead a not-yet-started ``QueryServer`` wrapping a
        :class:`~repro.serving.snapshot.SnapshotManager`, so concurrent
        clients get micro-batched scans and
        :meth:`~repro.serving.server.QueryServer.publish` /
        :meth:`~repro.serving.server.QueryServer.upsert` swap embedding
        versions with zero downtime. Start it with ``await
        server.start()`` (in-process) or ``await server.start_tcp()``.
        """
        from repro.errors import ServingError
        from repro.serving import QueryServer, QueryService

        kv = self.last_embeddings if embeddings is None else embeddings
        if kv is None:
            raise ServingError(
                "no embeddings to serve: call train() first or pass embeddings="
            )
        if embeddings is None and self.embeddings_stale:
            raise ServingError(
                "embeddings are stale: update() changed the graph "
                f"(epoch {self._graph_epoch}) after training (epoch "
                f"{self._embeddings_epoch}); call refresh_embeddings() or "
                "train() first, or pass embeddings= explicitly to serve "
                "the old vectors anyway"
            )
        store = kv.to_store(store_path, codec=codec, **(codec_params or {}))
        if server:
            server_params = dict(server) if isinstance(server, dict) else {}
            return QueryServer(
                store,
                index=index,
                cache_size=cache_size,
                **server_params,
                **index_params,
            )
        return QueryService(store, index=index, cache_size=cache_size, **index_params)

    def __repr__(self) -> str:
        return (
            f"UniNet(model={self.model.name!r}, sampler={self.sampler!r}, "
            f"graph={self.graph!r})"
        )
