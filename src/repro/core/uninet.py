"""UniNet — the user-facing facade of the framework.

One object binds a network to a random-walk model and exposes the paper's
pipeline: generate walks with a pluggable edge sampler (M-H by default)
and learn embeddings with word2vec. Example::

    from repro import UniNet, datasets

    graph, labels = datasets.load("blogcatalog", scale=0.5, seed=7)
    net = UniNet(graph, model="node2vec", p=0.25, q=4.0, seed=7)
    result = net.train(num_walks=10, walk_length=80, dimensions=64)
    result.embeddings.most_similar(0)

Defining a *new* random-walk model needs only the two callbacks of the
unified abstraction — subclass
:class:`~repro.walks.models.base.RandomWalkModel`, implement
``calculate_weight`` (and optionally ``update_state``), and pass the
instance as ``model``.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import TrainConfig, WalkConfig
from repro.core.pipeline import TrainResult, WalkResult, generate_walk_result, train_pipeline
from repro.utils.rng import as_rng
from repro.walks.models import make_model


class UniNet:
    """The unified NRL framework bound to one network.

    Parameters
    ----------
    graph:
        a :class:`~repro.graph.csr.CSRGraph`.
    model:
        registry name (``"deepwalk"``, ``"node2vec"``, ``"metapath2vec"``,
        ``"edge2vec"``, ``"fairwalk"``), or a bound
        :class:`~repro.walks.models.base.RandomWalkModel` instance.
    sampler:
        edge sampler: ``"mh"`` (default), ``"direct"``, ``"alias"``,
        ``"rejection"``, ``"knightking"``, ``"memory-aware"``.
    initializer:
        M-H chain initialization strategy (``"high-weight"`` default).
    budget:
        optional :class:`~repro.sampling.memory_model.MemoryBudget` for
        simulated-OOM experiments.
    model_params:
        forwarded to the model constructor (``p``, ``q``, ``metapath``,
        ``transition_matrix``...).
    """

    def __init__(
        self,
        graph,
        model="deepwalk",
        *,
        sampler: str = "mh",
        initializer: str = "high-weight",
        table_budget_bytes: int | None = None,
        budget=None,
        seed=None,
        **model_params,
    ):
        self.graph = graph
        self.model = make_model(model, graph, **model_params)
        self.sampler = sampler
        self.initializer = initializer
        self.table_budget_bytes = table_budget_bytes
        self.budget = budget
        self.seed = seed
        self._rng = as_rng(seed)
        #: :class:`~repro.core.pipeline.WalkResult` observables (timings,
        #: stats, memory bytes — engine and corpus stripped) of the most
        #: recent :meth:`generate_walks` call; None before the first call.
        self.last_walk: WalkResult | None = None
        #: :class:`~repro.embedding.keyed_vectors.KeyedVectors` of the
        #: most recent :meth:`train` call (what :meth:`serve` serves by
        #: default); None before the first call.
        self.last_embeddings = None

    # ------------------------------------------------------------------
    def walk_config(self, num_walks: int = 10, walk_length: int = 80, **overrides) -> WalkConfig:
        """Build a :class:`WalkConfig` bound to this instance's sampler."""
        return WalkConfig(
            num_walks=num_walks,
            walk_length=walk_length,
            sampler=overrides.pop("sampler", self.sampler),
            initializer=overrides.pop("initializer", self.initializer),
            table_budget_bytes=overrides.pop("table_budget_bytes", self.table_budget_bytes),
            **overrides,
        )

    def generate_walks(self, num_walks: int = 10, walk_length: int = 80, start_nodes=None, **overrides):
        """Run only the walk-generation step; returns a WalkCorpus.

        The engine observables of the run (Ti/Tw timings, sampler
        counters, resident bytes) are kept on :attr:`last_walk` /
        :attr:`last_stats`, so they are inspectable without a full
        :meth:`train`.
        """
        config = self.walk_config(num_walks, walk_length, **overrides)
        result = generate_walk_result(
            self.graph,
            self.model,
            config,
            seed=int(self._rng.integers(2**31)),
            budget=self.budget,
            start_nodes=start_nodes,
        )
        # keep only the small observables: the engine's chains/tables and
        # the corpus itself must not stay pinned after the caller is done
        self.last_walk = dataclasses.replace(result, engine=None, corpus=None)
        return result.corpus

    @property
    def last_stats(self) -> dict | None:
        """Sampler stats of the most recent :meth:`generate_walks` call."""
        return None if self.last_walk is None else self.last_walk.stats

    def train(
        self,
        num_walks: int = 10,
        walk_length: int = 80,
        dimensions: int = 128,
        *,
        start_nodes=None,
        walk_overrides: dict | None = None,
        streaming=None,
        **train_params,
    ) -> TrainResult:
        """Full pipeline: walks + word2vec. Returns a TrainResult.

        ``train_params`` go to :class:`TrainConfig` (``window``,
        ``epochs``, ``mode``, ...); ``walk_overrides`` to
        :class:`WalkConfig`. ``streaming`` takes a
        :class:`~repro.core.config.StreamingConfig` (or dict, or ``True``
        for the defaults) to run the bounded-memory shard-streaming
        pipeline instead of materializing the whole corpus.
        """
        walk_cfg = self.walk_config(num_walks, walk_length, **(walk_overrides or {}))
        train_cfg = TrainConfig(dimensions=dimensions, **train_params)
        if streaming is True:
            from repro.core.config import StreamingConfig

            streaming = StreamingConfig()
        result = train_pipeline(
            self.graph,
            self.model,
            walk_cfg,
            train_cfg,
            seed=int(self._rng.integers(2**31)),
            budget=self.budget,
            start_nodes=start_nodes,
            streaming=streaming,
        )
        self.last_embeddings = result.embeddings
        return result

    def serve(
        self,
        embeddings=None,
        *,
        index: str = "bruteforce",
        store_path=None,
        cache_size: int = 4096,
        **index_params,
    ):
        """Stand up a :class:`~repro.serving.service.QueryService`.

        Serves ``embeddings`` (defaults to the most recent
        :meth:`train` result). With ``store_path`` the embeddings are
        exported to a memory-mapped
        :class:`~repro.serving.store.EmbeddingStore` file first — the
        multi-process deployment shape; without, an in-memory store is
        built. ``index_params`` go to the chosen index factory
        (``nlist``, ``nprobe``, ...).
        """
        from repro.errors import ServingError
        from repro.serving import QueryService

        kv = self.last_embeddings if embeddings is None else embeddings
        if kv is None:
            raise ServingError(
                "no embeddings to serve: call train() first or pass embeddings="
            )
        store = kv.to_store(store_path)
        return QueryService(store, index=index, cache_size=cache_size, **index_params)

    def __repr__(self) -> str:
        return (
            f"UniNet(model={self.model.name!r}, sampler={self.sampler!r}, "
            f"graph={self.graph!r})"
        )
