"""Configuration records for the UniNet pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WalkError


@dataclass
class WalkConfig:
    """Random-walk generation settings (Algorithm 2's inputs).

    ``walk_length`` counts nodes per sequence — the paper's default
    workload is 10 walks of length 80 per node.

    ``sampler``, ``initializer`` and ``backend`` names are validated
    eagerly against :data:`repro.registry.SAMPLER_REGISTRY`,
    :data:`repro.registry.INITIALIZER_REGISTRY` and
    :data:`repro.registry.KERNEL_REGISTRY` and normalised to their
    canonical spelling (``"metropolis-hastings"`` -> ``"mh"``,
    ``"burnin"`` -> ``"burn-in"``, ``"jit"`` -> ``"numba"``), so a typo
    fails at config time with the registered names, not mid-pipeline.
    Unknown names raise :class:`~repro.errors.WalkError`. Whether the
    backend's *dependency* is present is checked when the engine is
    built (:class:`~repro.errors.ConfigError`), not here — a config can
    be authored on a machine that lacks the compiler that will run it.
    """

    num_walks: int = 10
    walk_length: int = 80
    sampler: str = "mh"
    initializer: str = "high-weight"
    init_sample_cap: int | None = 16
    burn_in_iterations: int = 100
    table_budget_bytes: int | None = None
    max_reject_rounds: int = 10_000
    backend: str = "numpy"

    def __post_init__(self):
        from repro.errors import ReproError
        from repro.registry import (
            INITIALIZER_REGISTRY,
            KERNEL_REGISTRY,
            SAMPLER_REGISTRY,
        )

        if self.num_walks < 1:
            raise WalkError("num_walks must be >= 1")
        if self.walk_length < 1:
            raise WalkError("walk_length must be >= 1")
        try:
            if isinstance(self.sampler, str):
                self.sampler = SAMPLER_REGISTRY.canonical(self.sampler)
            if isinstance(self.initializer, str):
                self.initializer = INITIALIZER_REGISTRY.canonical(self.initializer)
            if isinstance(self.backend, str):
                self.backend = KERNEL_REGISTRY.canonical(self.backend)
        except ReproError as err:
            raise WalkError(str(err)) from None


#: Vocabulary strategies for streamed training (see :class:`StreamingConfig`).
STREAMING_VOCAB_MODES = ("degree", "exact")


@dataclass
class StreamingConfig:
    """Shard-streaming pipeline settings (bounded-memory walk→train).

    When a streaming block is present on a run, walk generation yields
    :class:`~repro.walks.corpus.WalkCorpus` shards that the word2vec
    trainer consumes incrementally, so peak corpus memory is O(shard)
    instead of O(total corpus), and with ``overlap=True`` the walk (Tw)
    and learn (Tl) phases share the wall clock.

    Parameters
    ----------
    enabled:
        master switch; lets a spec override (``--set
        streaming.enabled=false``) fall back to the monolithic path
        without deleting the block.
    shard_walks:
        walks per shard. ``None`` defers to ``max_corpus_bytes`` or, when
        that is also unset, one wave (one walk per start node) per shard.
    max_corpus_bytes:
        alternative shard sizing: largest shard footprint in bytes; the
        walk length converts it to a walk count. Mutually exclusive with
        ``shard_walks``.
    overlap:
        run walk generation in a producer thread feeding a bounded queue
        that the trainer drains — Tw and Tl overlap on the wall clock.
    queue_shards:
        bounded queue depth for ``overlap=True`` (peak resident corpus is
        roughly ``(queue_shards + 1)`` shards plus the trainer's partial
        block buffer).
    vocab:
        ``"degree"`` estimates token frequencies from the stationary
        distribution (visits ∝ degree — exact for first-order walks on
        undirected graphs, no extra pass); ``"exact"`` runs a counting
        pass over a regenerated walk stream first (costs Tw twice, but
        reproduces the monolithic vocabulary bit-for-bit).
    block_walks:
        override for the trainer's canonical block size (see
        :class:`repro.embedding.Word2Vec`). Defaults to the shard size,
        which keeps the trainer's partial-block buffer within one shard;
        set it to the trainer default (8192) together with
        ``vocab="exact"`` and ``overlap=False`` to reproduce a monolithic
        run of the same seed bit-for-bit.
    """

    enabled: bool = True
    shard_walks: int | None = None
    max_corpus_bytes: int | None = None
    overlap: bool = False
    queue_shards: int = 2
    vocab: str = "degree"
    block_walks: int | None = None

    def __post_init__(self):
        if self.shard_walks is not None and self.shard_walks < 1:
            raise WalkError("streaming.shard_walks must be >= 1")
        if self.max_corpus_bytes is not None and self.max_corpus_bytes < 1:
            raise WalkError("streaming.max_corpus_bytes must be >= 1")
        if self.shard_walks is not None and self.max_corpus_bytes is not None:
            raise WalkError(
                "streaming.shard_walks and streaming.max_corpus_bytes are "
                "mutually exclusive shard sizings; set one"
            )
        if self.queue_shards < 1:
            raise WalkError("streaming.queue_shards must be >= 1")
        if self.vocab not in STREAMING_VOCAB_MODES:
            raise WalkError(
                f"streaming.vocab must be one of {STREAMING_VOCAB_MODES}, "
                f"got {self.vocab!r}"
            )
        if self.block_walks is not None and self.block_walks < 1:
            raise WalkError("streaming.block_walks must be >= 1")

    def resolve_shard_walks(self, walk_length: int, num_starts: int) -> int:
        """Concrete walks-per-shard for a run's geometry."""
        if self.shard_walks is not None:
            return self.shard_walks
        if self.max_corpus_bytes is not None:
            per_walk = 8 * (walk_length + 1)  # int64 row + length entry
            return max(1, self.max_corpus_bytes // per_walk)
        return max(1, num_starts)


#: Transports the sharded engine's ``transport=`` knob resolves.
SHARD_TRANSPORTS = ("inline", "process", "socket")


@dataclass
class ShardingConfig:
    """Sharded walk-engine settings (partitioned graph, walker migration).

    When a sharding block is present on a run, walks are generated by
    :class:`~repro.sharding.engine.ShardedWalkEngine` — the graph is
    partitioned into ``shards`` local views, one worker per shard steps
    the walkers it owns, and walkers crossing a partition boundary are
    migrated between workers in typed batches. Corpora are bitwise
    identical to the monolithic engine for any partitioner and shard
    count, so the block changes *execution*, never results.

    Parameters
    ----------
    enabled:
        master switch; lets a spec override (``--set
        sharding.enabled=false``) fall back to the monolithic engine
        without deleting the block.
    shards:
        number of graph partitions (and workers). ``1`` is a valid
        degenerate case — useful for isolating partitioning overhead.
    partitioner:
        registered partitioner name
        (:data:`repro.sharding.partitioner.PARTITIONER_REGISTRY`):
        ``"hash"`` for stateless multiplicative hashing,
        ``"degree_balanced"`` for greedy LPT on out-degree.
    transport:
        ``"inline"`` keeps workers in-process (zero serialization);
        ``"process"`` runs one OS process per shard with the local CSR
        in shared memory; ``"socket"`` drives ``repro shard-worker``
        processes over TCP — the multi-host deployment (without
        ``hosts`` it spawns loopback workers itself).
    hosts:
        socket transport only: one ``"host:port"`` worker address per
        shard. ``None`` spawns loopback workers on this machine.
    connect_timeout:
        socket transport: seconds allowed per worker for the
        retry-with-backoff connect loop.
    call_timeout:
        socket transport: seconds allowed per op round-trip before the
        worker is declared hung (``None`` disables the deadline).
    """

    enabled: bool = True
    shards: int = 2
    partitioner: str = "hash"
    transport: str = "inline"
    hosts: tuple | None = None
    connect_timeout: float = 10.0
    call_timeout: float | None = 120.0

    def __post_init__(self):
        from repro.errors import ReproError

        if int(self.shards) != self.shards or self.shards < 1:
            raise WalkError("sharding.shards must be a positive integer")
        self.shards = int(self.shards)
        if isinstance(self.partitioner, str):
            from repro.sharding.partitioner import PARTITIONER_REGISTRY

            try:
                self.partitioner = PARTITIONER_REGISTRY.canonical(self.partitioner)
            except ReproError as err:
                raise WalkError(str(err)) from None
        if self.transport not in SHARD_TRANSPORTS:
            raise WalkError(
                f"sharding.transport must be one of {SHARD_TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.hosts is not None:
            if self.transport != "socket":
                raise WalkError(
                    "sharding.hosts only applies to transport='socket', "
                    f"got transport={self.transport!r}"
                )
            if isinstance(self.hosts, str) or not hasattr(self.hosts, "__len__"):
                raise WalkError(
                    "sharding.hosts must be a list of 'host:port' strings"
                )
            hosts = []
            for entry in self.hosts:
                if not isinstance(entry, str) or ":" not in entry:
                    raise WalkError(
                        f"sharding.hosts entries must be 'host:port' strings, "
                        f"got {entry!r}"
                    )
                host, __, port = entry.rpartition(":")
                if not host or not port.isdigit():
                    raise WalkError(
                        f"sharding.hosts entries must be 'host:port' strings, "
                        f"got {entry!r}"
                    )
                hosts.append(entry)
            if len(hosts) != self.shards:
                raise WalkError(
                    f"sharding.hosts lists {len(hosts)} address(es) for "
                    f"{self.shards} shard(s); one worker per shard"
                )
            self.hosts = tuple(hosts)
        self.connect_timeout = float(self.connect_timeout)
        if self.connect_timeout <= 0:
            raise WalkError("sharding.connect_timeout must be positive")
        if self.call_timeout is not None:
            self.call_timeout = float(self.call_timeout)
            if self.call_timeout <= 0:
                raise WalkError("sharding.call_timeout must be positive")


@dataclass
class TrainConfig:
    """Embedding-learning settings forwarded to the word2vec trainer."""

    dimensions: int = 128
    window: int = 5
    negative: int = 5
    epochs: int = 1
    alpha: float = 0.025
    min_alpha: float = 1e-4
    mode: str = "skipgram"
    subsample: float = 0.0
    min_count: int = 1
    negative_sharing: bool = False
    extra: dict = field(default_factory=dict)

    def word2vec_kwargs(self) -> dict:
        """Keyword arguments for :class:`repro.embedding.Word2Vec`."""
        kwargs = {
            "window": self.window,
            "negative": self.negative,
            "epochs": self.epochs,
            "alpha": self.alpha,
            "min_alpha": self.min_alpha,
            "mode": self.mode,
            "subsample": self.subsample,
            "min_count": self.min_count,
            "negative_sharing": self.negative_sharing,
        }
        kwargs.update(self.extra)
        return kwargs
