"""Configuration records for the UniNet pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WalkError


@dataclass
class WalkConfig:
    """Random-walk generation settings (Algorithm 2's inputs).

    ``walk_length`` counts nodes per sequence — the paper's default
    workload is 10 walks of length 80 per node.

    ``sampler`` and ``initializer`` names are validated eagerly against
    :data:`repro.registry.SAMPLER_REGISTRY` and
    :data:`repro.registry.INITIALIZER_REGISTRY` and normalised to their
    canonical spelling (``"metropolis-hastings"`` -> ``"mh"``,
    ``"burnin"`` -> ``"burn-in"``), so a typo fails at config time with
    the registered names, not mid-pipeline. Unknown names raise
    :class:`~repro.errors.WalkError`.
    """

    num_walks: int = 10
    walk_length: int = 80
    sampler: str = "mh"
    initializer: str = "high-weight"
    init_sample_cap: int | None = 16
    burn_in_iterations: int = 100
    table_budget_bytes: int | None = None
    max_reject_rounds: int = 10_000

    def __post_init__(self):
        from repro.errors import ReproError
        from repro.registry import INITIALIZER_REGISTRY, SAMPLER_REGISTRY

        if self.num_walks < 1:
            raise WalkError("num_walks must be >= 1")
        if self.walk_length < 1:
            raise WalkError("walk_length must be >= 1")
        try:
            if isinstance(self.sampler, str):
                self.sampler = SAMPLER_REGISTRY.canonical(self.sampler)
            if isinstance(self.initializer, str):
                self.initializer = INITIALIZER_REGISTRY.canonical(self.initializer)
        except ReproError as err:
            raise WalkError(str(err)) from None


@dataclass
class TrainConfig:
    """Embedding-learning settings forwarded to the word2vec trainer."""

    dimensions: int = 128
    window: int = 5
    negative: int = 5
    epochs: int = 1
    alpha: float = 0.025
    min_alpha: float = 1e-4
    mode: str = "skipgram"
    subsample: float = 0.0
    min_count: int = 1
    negative_sharing: bool = False
    extra: dict = field(default_factory=dict)

    def word2vec_kwargs(self) -> dict:
        """Keyword arguments for :class:`repro.embedding.Word2Vec`."""
        kwargs = {
            "window": self.window,
            "negative": self.negative,
            "epochs": self.epochs,
            "alpha": self.alpha,
            "min_alpha": self.min_alpha,
            "mode": self.mode,
            "subsample": self.subsample,
            "min_count": self.min_count,
            "negative_sharing": self.negative_sharing,
        }
        kwargs.update(self.extra)
        return kwargs
