"""Theorem 3: when does high-weight initialization beat random?

Appendix A derives the κ coefficients of Eq. 8 for both strategies —

    κ_h = max(1/(t·π_max) − 1, 1)         (high-weight start)
    κ_r = max(1 − 1/(n·π_max), 1/(n·π_min) − 1)   (uniform start)

— and Theorem 3 gives closed conditions for κ_h < κ_r:

    π_max < 1/(2t)  and  π_max/π_min > n/t,    or
    π_max ≥ 1/(2t)  and  π_min < 1/(2n).

Both the exact κ comparison and the closed-form condition are provided
(the test suite cross-checks them), plus a graph profiler reproducing the
paper's measurement that ~97% of BlogCatalog's node2vec states satisfy
the condition.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.walks.state import WalkerState


def kappa_high_weight(pi: np.ndarray) -> float:
    """κ for a chain started at a (uniformly chosen) maximal element."""
    pi = np.asarray(pi, dtype=np.float64)
    p_max = float(pi.max())
    t = int((pi == p_max).sum())
    return max(1.0 / (t * p_max) - 1.0, 1.0)


def kappa_random(pi: np.ndarray) -> float:
    """κ for a uniformly initialised chain."""
    pi = np.asarray(pi, dtype=np.float64)
    n = pi.size
    p_max = float(pi.max())
    p_min = float(pi[pi > 0].min())
    return max(1.0 - 1.0 / (n * p_max), 1.0 / (n * p_min) - 1.0)


def theorem3_condition(p_max: float, p_min: float, n: int, t: int) -> bool:
    """Eq. 12 — the closed-form test for high-weight being preferable."""
    if p_max < 1.0 / (2 * t):
        return p_max / p_min > n / t
    return p_min < 1.0 / (2 * n)


def high_weight_preferred(pi: np.ndarray) -> bool:
    """Exact κ_h < κ_r comparison for a concrete distribution."""
    return kappa_high_weight(pi) < kappa_random(pi)


def profile_model_states(
    graph,
    model,
    *,
    num_states: int = 1000,
    seed=None,
) -> dict:
    """Fraction of a model's transition distributions satisfying Eq. 12.

    Samples realisable walker states, normalises their dynamic weights
    into transition distributions and applies :func:`theorem3_condition`.
    This is the measurement behind the paper's claim that 97.1% / 73.8% /
    87.3% of BlogCatalog / Flickr / Reddit node2vec states prefer
    high-weight initialization.
    """
    rng = as_rng(seed)
    contexts = model.enumerate_state_contexts(graph)
    valid = np.flatnonzero(contexts["valid"])
    if valid.size == 0:
        return {"fraction_satisfied": 0.0, "num_checked": 0}
    chosen = rng.choice(valid, size=min(num_states, valid.size), replace=False)
    satisfied = 0
    checked = 0
    for idx in chosen:
        state = WalkerState(
            current=int(contexts["cur"][idx]),
            previous=int(contexts["prev"][idx]),
            prev_edge_offset=int(contexts["prev_off"][idx]),
            step=int(contexts["step"][idx]),
        )
        weights = model.dynamic_weights_row(graph, state)
        total = float(weights.sum())
        if total <= 0 or weights.size < 2:
            continue
        pi = weights / total
        support = pi[pi > 0]
        p_max = float(support.max())
        p_min = float(support.min())
        t = int((pi == p_max).sum())
        checked += 1
        if theorem3_condition(p_max, p_min, pi.size, t):
            satisfied += 1
    return {
        "fraction_satisfied": satisfied / checked if checked else 0.0,
        "num_checked": checked,
    }
