"""The Fig. 1 simulation: KL_random / KL_high-weight across skew regimes.

For each configuration (n, t, π_max/π_min) the paper generates random
target distributions, lets an M-H chain with each initialization strategy
draw 5n samples, and compares the averaged KL divergences of the
empirical distributions. The signature result: the ratio KL_r/KL_h
crosses 1 near π_max/π_min ≈ n/t, with high-weight winning on skewed
targets — the empirical face of Theorem 3.

All chains of a configuration run vectorised in lock-step
(:func:`~repro.theory.convergence.mh_chain_batch`), which is what makes a
faithful re-run tractable in Python.
"""

from __future__ import annotations

import numpy as np

from repro.theory.conditions import theorem3_condition
from repro.theory.convergence import kl_divergence, mh_chain_batch
from repro.theory.distributions import make_target_distribution
from repro.utils.rng import as_rng


def fig1_simulation(
    n: int,
    t_values,
    ratios,
    *,
    num_distributions: int = 50,
    repeats: int = 5,
    samples_factor: int = 5,
    seed=None,
) -> list[dict]:
    """Regenerate one panel of Fig. 1.

    Parameters
    ----------
    n:
        sample-space size (the paper uses 10, 100, 1000, 10000).
    t_values:
        numbers of maximal elements to sweep.
    ratios:
        π_max/π_min values to sweep.
    num_distributions:
        random targets per configuration (paper: 1000).
    repeats:
        chains per target per strategy (paper: 20).
    samples_factor:
        samples per chain as a multiple of n (paper: 5).

    Returns one record per (t, ratio) with the averaged KL divergences,
    their ratio, and Theorem 3's prediction.
    """
    rng = as_rng(seed)
    num_samples = samples_factor * n
    results = []
    for t in t_values:
        for ratio in ratios:
            targets = np.stack(
                [
                    make_target_distribution(n, t, ratio, rng=rng)
                    for __ in range(num_distributions)
                ]
            )
            chains = np.repeat(targets, repeats, axis=0)
            kl = {}
            for init in ("random", "high-weight"):
                counts = mh_chain_batch(chains, num_samples, init=init, rng=rng)
                empirical = counts / num_samples
                kl[init] = float(
                    np.mean(
                        [
                            kl_divergence(empirical[i], chains[i])
                            for i in range(chains.shape[0])
                        ]
                    )
                )
            results.append(
                {
                    "n": n,
                    "t": t,
                    "ratio": float(ratio),
                    "kl_random": kl["random"],
                    "kl_high_weight": kl["high-weight"],
                    "kl_ratio": kl["random"] / max(kl["high-weight"], 1e-300),
                    "theorem3_predicts_high_weight": theorem3_condition(
                        float(targets[0].max()),
                        float(targets[0][targets[0] > 0].min()),
                        n,
                        t,
                    ),
                }
            )
    return results
