"""Theory toolkit: convergence analysis of the M-H edge sampler.

Implements the analytical side of the paper's Section III:

* :mod:`repro.theory.distributions` — the parameterised target
  distributions (n, t, π_max/π_min) of the Fig. 1 simulation study;
* :mod:`repro.theory.convergence` — KL divergence, the geometric bound of
  Theorem 1 and the κ coefficients of random vs high-weight
  initialization (Appendix A);
* :mod:`repro.theory.conditions` — Theorem 3's condition for high-weight
  initialization to win, plus graph-level profiling (the paper's "97.1%
  of BlogCatalog nodes satisfy condition (12)");
* :mod:`repro.theory.fig1` — the simulation harness regenerating Fig. 1.
"""

from repro.theory.conditions import (
    high_weight_preferred,
    kappa_high_weight,
    kappa_random,
    profile_model_states,
    theorem3_condition,
)
from repro.theory.convergence import (
    empirical_distribution,
    kl_divergence,
    mh_chain_sample,
    theorem1_bound,
)
from repro.theory.distributions import make_target_distribution
from repro.theory.fig1 import fig1_simulation

__all__ = [
    "make_target_distribution",
    "kl_divergence",
    "mh_chain_sample",
    "empirical_distribution",
    "theorem1_bound",
    "theorem3_condition",
    "high_weight_preferred",
    "kappa_random",
    "kappa_high_weight",
    "profile_model_states",
    "fig1_simulation",
]
