"""KL divergence, M-H chain simulation and the Theorem 1 bound.

The M-H based edge sampler is a Markov chain with uniform proposals; this
module simulates such chains directly on explicit target distributions
(no graph needed) to study convergence — the machinery behind the paper's
Fig. 1 and the empirical checks of Theorems 1-3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

_INITS = ("random", "high-weight", "burn-in")


def kl_divergence(p: np.ndarray, q: np.ndarray, *, epsilon: float = 1e-12) -> float:
    """KL(p || q) in nats; zero entries of p contribute nothing.

    ``q`` is floored at ``epsilon`` so empirically-unreached entries do
    not blow the divergence up to infinity.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ConfigError("p and q must have the same shape")
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], epsilon))))


def empirical_distribution(samples: np.ndarray, n: int) -> np.ndarray:
    """Normalised histogram of chain samples over [0, n)."""
    counts = np.bincount(np.asarray(samples, dtype=np.int64), minlength=n)
    total = counts.sum()
    if total == 0:
        return np.full(n, 1.0 / n)
    return counts / total


def _initial_states(targets: np.ndarray, init: str, rng, burn_in_iterations: int):
    """Starting state per chain row for each strategy."""
    chains, n = targets.shape
    if init == "random":
        return rng.integers(0, n, size=chains)
    if init == "high-weight":
        # ties broken uniformly among the maximal elements, as in the paper
        is_max = targets == targets.max(axis=1, keepdims=True)
        noise = rng.random((chains, n)) * is_max
        return np.argmax(noise, axis=1)
    state = rng.integers(0, n, size=chains)
    rows = np.arange(chains)
    for __ in range(burn_in_iterations):
        cand = rng.integers(0, n, size=chains)
        accept = rng.random(chains) * targets[rows, state] < targets[rows, cand]
        state = np.where(accept, cand, state)
    return state


def mh_chain_sample(
    target: np.ndarray,
    num_samples: int,
    *,
    init: str = "random",
    burn_in_iterations: int = 100,
    rng=None,
) -> np.ndarray:
    """Draw ``num_samples`` dependent samples from one uniform-proposal chain.

    This is Algorithm 1 stripped of the graph: candidates are uniform over
    [0, n) and acceptance is min(1, π(cand)/π(state)).
    """
    samples = mh_chain_batch(
        np.asarray(target, dtype=np.float64)[None, :],
        num_samples,
        init=init,
        burn_in_iterations=burn_in_iterations,
        rng=rng,
        return_samples=True,
    )
    return samples[0]


def mh_chain_batch(
    targets: np.ndarray,
    num_samples: int,
    *,
    init: str = "random",
    burn_in_iterations: int = 100,
    rng=None,
    return_samples: bool = False,
):
    """Run one M-H chain per row of ``targets`` in lock-step.

    Returns per-chain sample *counts* ``(chains, n)`` by default, or the
    raw sample matrix ``(chains, num_samples)`` with
    ``return_samples=True``.
    """
    if init not in _INITS:
        raise ConfigError(f"init must be one of {_INITS}")
    rng = as_rng(rng)
    targets = np.asarray(targets, dtype=np.float64)
    chains, n = targets.shape
    rows = np.arange(chains)
    state = _initial_states(targets, init, rng, burn_in_iterations)
    if return_samples:
        out = np.empty((chains, num_samples), dtype=np.int64)
    else:
        counts = np.zeros((chains, n), dtype=np.int64)
    for i in range(num_samples):
        cand = rng.integers(0, n, size=chains)
        p_state = targets[rows, state]
        p_cand = targets[rows, cand]
        accept = (p_cand > 0) & ((p_state <= 0) | (rng.random(chains) * p_state < p_cand))
        state = np.where(accept, cand, state)
        if return_samples:
            out[:, i] = state
        else:
            counts[rows, state] += 1
    return out if return_samples else counts


def theorem1_bound(kappa: float, rho: float, iteration: int) -> float:
    """Eq. 7: KL(π_i, π) <= κρ^i (1 + κρ^i)."""
    term = kappa * rho**iteration
    return term * (1.0 + term)
