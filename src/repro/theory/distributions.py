"""Parameterised target distributions for the Fig. 1 simulation.

The paper generates random target distributions controlled by three
knobs: the sample-space size n, the number of maximal-probability elements
t, and the skew ratio π_max/π_min. The construction here fixes t entries
at the maximal value, one entry at the minimal value (so the requested
ratio is hit exactly), draws the rest *log-uniformly* strictly in between,
and normalises — preserving both t and the ratio.

Log-uniform interiors matter: with a large ratio most elements then sit
orders of magnitude below the maxima, so a uniformly-initialised chain
usually starts in a genuinely low-probability region — the regime the
paper's burn-in discussion (and Fig. 1's crossover) is about. A uniform
interior would park most mass at mid probabilities and wash the effect
out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng


def make_target_distribution(
    n: int, t: int, ratio: float, *, rng=None
) -> np.ndarray:
    """A probability vector with given size, #maxima and π_max/π_min.

    Parameters
    ----------
    n: sample-space size (>= 2).
    t: number of elements at the maximal probability (1 <= t < n).
    ratio: π_max / π_min (>= 1).

    >>> p = make_target_distribution(100, 5, 50.0, rng=0)
    >>> round(p.max() / p.min(), 6)
    50.0
    >>> int((p == p.max()).sum())
    5
    """
    if n < 2:
        raise ConfigError("n must be >= 2")
    if not 1 <= t < n:
        raise ConfigError("t must satisfy 1 <= t < n")
    if ratio < 1.0:
        raise ConfigError("ratio must be >= 1")
    rng = as_rng(rng)
    v_max = 1.0
    v_min = v_max / ratio
    values = np.empty(n, dtype=np.float64)
    values[:t] = v_max
    values[t] = v_min
    remaining = n - t - 1
    if remaining > 0:
        if ratio == 1.0:
            values[t + 1 :] = v_max
        else:
            # log-uniform strictly inside (v_min, v_max) so exactly t
            # maxima and the designated minimum survive
            lo, hi = np.log(v_min), np.log(v_max)
            values[t + 1 :] = np.exp(lo + (hi - lo) * (0.01 + 0.98 * rng.random(remaining)))
    rng.shuffle(values)
    return values / values.sum()
