"""repro — a reproduction of UniNet (ICDE 2021).

UniNet is a unified, scalable framework for random-walk-based network
representation learning built around a Metropolis-Hastings (M-H) edge
sampler that draws from *unnormalised* transition distributions in O(1)
time and O(1) memory per walker state.

The public surface mirrors the paper's architecture:

* :mod:`repro.graph` — CSR network storage, loaders, synthetic datasets.
* :mod:`repro.sampling` — the M-H edge sampler plus every baseline the
  paper compares against (alias, direct, rejection, KnightKing-style
  outlier folding, memory-aware).
* :mod:`repro.walks` — the unified random-walk model abstraction
  (``calculate_weight`` / ``update_state``), five published models, and
  reference + vectorized walk engines.
* :mod:`repro.embedding` — numpy word2vec (skip-gram / CBOW with negative
  sampling).
* :mod:`repro.evaluation` — node classification (micro/macro F1) and link
  prediction protocols.
* :mod:`repro.theory` — the convergence / initialization analysis behind
  Theorems 1-3 and Figure 1.
* :mod:`repro.serving` — the read path: memory-mapped
  :class:`~repro.serving.store.EmbeddingStore` files, the pluggable ANN
  index family (bruteforce / IVF), and the batching
  :class:`~repro.serving.service.QueryService`.
* :mod:`repro.sharding` — the scale-out layer: registry-pluggable graph
  partitioners, the :class:`~repro.sharding.engine.ShardedWalkEngine`
  (one worker per shard, KnightKing-style walker migration, bitwise
  parity with the monolithic engine), and scatter-gather similarity
  queries over per-shard embedding stores.
* :mod:`repro.registry` — the plugin layer: every component family
  (models, samplers, initializers) is a :class:`~repro.registry.Registry`
  that third-party code extends with ``@register_model`` /
  ``@register_sampler`` — no package edits needed.
* :mod:`repro.core` — the :class:`~repro.core.uninet.UniNet` facade plus
  the declarative experiment layer: :class:`~repro.core.spec.RunSpec`
  (experiments as JSON-serialisable data) executed by :func:`repro.run`
  and swept by :func:`repro.run_many`.

Quickstart::

    from repro import UniNet, datasets

    graph, labels = datasets.load("blogcatalog", scale=0.5, seed=7)
    net = UniNet(graph, model="deepwalk", seed=7)
    result = net.train(num_walks=10, walk_length=80, dimensions=64)
    vectors = result.embeddings          # KeyedVectors
    print(vectors.most_similar(0, topn=5))

Declarative form of the same experiment::

    from repro import GraphSpec, RunSpec, run

    spec = RunSpec(graph=GraphSpec(dataset="blogcatalog", scale=0.5, seed=7))
    report = run(spec)                   # RunReport: timings, stats, metrics
    print(report.tt, report.sampler_stats["acceptance_ratio"])
"""

from importlib import import_module

__version__ = "1.0.0"

#: Lazily resolved public attributes -> (module, attribute) pairs.
_LAZY_ATTRS = {
    "UniNet": ("repro.core.uninet", "UniNet"),
    "WalkConfig": ("repro.core.config", "WalkConfig"),
    "TrainConfig": ("repro.core.config", "TrainConfig"),
    "StreamingConfig": ("repro.core.config", "StreamingConfig"),
    "ShardingConfig": ("repro.core.config", "ShardingConfig"),
    "ShardedWalkEngine": ("repro.sharding.engine", "ShardedWalkEngine"),
    "ShardedEmbeddingStore": ("repro.sharding.store", "ShardedEmbeddingStore"),
    "ScatterGatherRouter": ("repro.sharding.router", "ScatterGatherRouter"),
    "ShardPlan": ("repro.sharding.partitioner", "ShardPlan"),
    "build_shard_plan": ("repro.sharding.partitioner", "build_shard_plan"),
    "register_partitioner": ("repro.sharding.partitioner", "register_partitioner"),
    "WalkShardStream": ("repro.walks.stream", "WalkShardStream"),
    "RunSpec": ("repro.core.spec", "RunSpec"),
    "GraphSpec": ("repro.core.spec", "GraphSpec"),
    "EvalSpec": ("repro.core.spec", "EvalSpec"),
    "ServingSpec": ("repro.core.spec", "ServingSpec"),
    "UpdatesSpec": ("repro.core.spec", "UpdatesSpec"),
    "UpdateResult": ("repro.core.uninet", "UpdateResult"),
    "GraphDelta": ("repro.graph.delta", "GraphDelta"),
    "DynamicGraph": ("repro.graph.delta", "DynamicGraph"),
    "load_deltas": ("repro.graph.delta", "load_deltas"),
    "save_deltas": ("repro.graph.delta", "save_deltas"),
    "EmbeddingStore": ("repro.serving.store", "EmbeddingStore"),
    "QueryService": ("repro.serving.service", "QueryService"),
    "QueryServer": ("repro.serving.server", "QueryServer"),
    "SnapshotManager": ("repro.serving.snapshot", "SnapshotManager"),
    "register_index": ("repro.serving.index", "register_index"),
    "register_codec": ("repro.serving.codec", "register_codec"),
    "make_codec": ("repro.serving.codec", "make_codec"),
    "run": ("repro.core.runner", "run"),
    "run_many": ("repro.core.runner", "run_many"),
    "RunReport": ("repro.core.runner", "RunReport"),
    "TrainResult": ("repro.core.pipeline", "TrainResult"),
    "WalkResult": ("repro.core.pipeline", "WalkResult"),
    "Registry": ("repro.registry", "Registry"),
    "LintRule": ("repro.analysis", "LintRule"),
    "register_rule": ("repro.analysis", "register_rule"),
    "run_lint": ("repro.analysis", "run_lint"),
    "register_model": ("repro.registry", "register_model"),
    "register_sampler": ("repro.registry", "register_sampler"),
    "register_initializer": ("repro.registry", "register_initializer"),
    "CSRGraph": ("repro.graph.csr", "CSRGraph"),
    "GraphBuilder": ("repro.graph.builder", "GraphBuilder"),
    "NodeLabels": ("repro.graph.labels", "NodeLabels"),
    "datasets": ("repro.graph", "datasets"),
}

__all__ = [*_LAZY_ATTRS, "__version__"]


def __getattr__(name: str):
    """Resolve public attributes on first use (PEP 562 lazy imports)."""
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    if attr == "datasets":
        value = import_module("repro.graph.datasets")
    else:
        value = getattr(import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
