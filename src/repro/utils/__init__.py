"""Shared utilities: deterministic RNG handling, timers, validation."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import PhaseTimer, Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Timer",
    "PhaseTimer",
    "check_positive",
    "check_fraction",
    "check_probability_vector",
]
