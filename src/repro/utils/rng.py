"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or an
existing :class:`numpy.random.Generator`. Centralising the conversion here
keeps seeding behaviour uniform and makes parallel reproducibility easy:
:func:`spawn_rngs` derives independent child generators from one parent via
the ``SeedSequence.spawn`` mechanism, so worker streams never overlap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``
    or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Independence comes from ``SeedSequence.spawn``; passing an existing
    ``Generator`` spawns from its internal bit generator seed sequence.
    """
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(count)]
