"""Small argument-validation helpers used across the library.

These raise :class:`~repro.errors.ConfigError` (a ``ReproError`` that is
also a ``ValueError``) with a consistent message format so user-facing
API errors read the same everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def check_positive(name: str, value) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a finite number > 0."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigError(f"{name} must be positive and finite, got {value!r}")


def check_fraction(name: str, value, *, inclusive: bool = False) -> None:
    """Raise :class:`ConfigError` unless ``value`` lies in (0, 1) or [0, 1]."""
    ok = 0.0 <= value <= 1.0 if inclusive else 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ConfigError(f"{name} must lie in {bounds}, got {value!r}")


def check_probability_vector(name: str, probs: np.ndarray, *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``probs`` is a proper probability vector.

    Returns the array as float64. Raises :class:`ConfigError` for negative
    entries or a sum that deviates from one by more than ``atol``.
    """
    arr = np.asarray(probs, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError(f"{name} must be a non-empty 1-D array")
    if np.any(arr < 0):
        raise ConfigError(f"{name} must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ConfigError(f"{name} must sum to 1 (+-{atol}), got {total}")
    return arr
