"""Wall-clock timers for the pipeline phase decomposition of Table VI.

The paper reports four phase costs per run: ``Ti`` (sampler
initialisation), ``Tw`` (random-walk generation), ``Tl`` (embedding
learning) and ``Tt`` (total). :class:`PhaseTimer` accumulates named phases
and exposes them as a dict; :class:`Timer` is the single-span primitive.
"""

from __future__ import annotations

import time
from collections import defaultdict


class Timer:
    """Context manager measuring one wall-clock span in seconds."""

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class PhaseTimer:
    """Accumulates wall-clock time for named phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("walk"):
            ...
        timer.seconds("walk")   # elapsed seconds
        timer.total()           # sum over all phases
    """

    def __init__(self):
        self._elapsed = defaultdict(float)

    def phase(self, name: str) -> "_PhaseSpan":
        """Return a context manager adding its span to phase ``name``."""
        return _PhaseSpan(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to phase ``name``."""
        self._elapsed[name] += float(seconds)

    def seconds(self, name: str) -> float:
        """Elapsed seconds accumulated for ``name`` (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self._elapsed.values())

    def as_dict(self) -> dict[str, float]:
        """Snapshot of phase durations, plus a ``total`` entry."""
        out = dict(self._elapsed)
        out["total"] = self.total()
        return out


class _PhaseSpan:
    def __init__(self, owner: PhaseTimer, name: str):
        self._owner = owner
        self._name = name
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._owner.add(self._name, time.perf_counter() - self._start)
        self._start = None
