"""Walk shard streams: the producer side of the streaming pipeline.

A :class:`WalkShardStream` is an iterator of :class:`WalkCorpus` shards
with known ``num_nodes`` — the contract between walk generation and the
streaming word2vec trainer (:meth:`repro.embedding.Word2Vec.fit_stream`).
Peak corpus memory of a streamed run is O(largest shard), never O(total
corpus).

Two flavours:

* **Re-iterable** — built from a *factory* callable that returns a fresh
  shard iterator each time (e.g. constructing a new, identically seeded
  walk engine). Supports the exact-vocabulary counting pass
  (:meth:`node_frequencies`) followed by the training pass.
* **One-shot** — built from a plain iterable/generator; iterating twice
  raises. This is what an overlapped producer/consumer pipeline uses
  when the vocabulary comes from a degree estimate instead of a second
  walk pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError
from repro.walks.corpus import WalkCorpus


class WalkShardStream:
    """A stream of :class:`WalkCorpus` shards over a known node id space.

    Parameters
    ----------
    source:
        either a callable returning a fresh iterator of shards
        (re-iterable stream) or a plain iterable of shards (one-shot).
    num_nodes:
        size of the node id space the shards draw from (the word2vec
        vocabulary universe).
    total_walks:
        total number of walks the stream will deliver, when known —
        lets the trainer schedule its learning-rate decay.
    walk_length:
        configured maximum walk length, when known (shard sizing info).
    """

    def __init__(self, source, *, num_nodes: int, total_walks: int | None = None,
                 walk_length: int | None = None):
        if num_nodes < 1:
            raise WalkError("num_nodes must be >= 1")
        self._factory = source if callable(source) else None
        self._once = None if callable(source) else iter(source)
        self._consumed = False
        self.num_nodes = int(num_nodes)
        self.total_walks = None if total_walks is None else int(total_walks)
        self.walk_length = None if walk_length is None else int(walk_length)

    @property
    def reiterable(self) -> bool:
        """True when the stream can be iterated more than once."""
        return self._factory is not None

    def __iter__(self):
        if self._factory is not None:
            return iter(self._factory())
        if self._consumed:
            raise WalkError(
                "this WalkShardStream is one-shot and already consumed; "
                "build it from a factory callable to re-iterate"
            )
        self._consumed = True
        return self._once

    # ------------------------------------------------------------------
    def node_frequencies(self) -> np.ndarray:
        """Exact per-node occurrence counts, accumulated shard by shard.

        One full pass over the stream (so a one-shot stream is consumed);
        memory stays O(num_nodes + shard).
        """
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for shard in self:
            counts += shard.node_frequencies(self.num_nodes)
        return counts

    def materialize(self) -> WalkCorpus:
        """Merge the whole stream into one corpus (monolithic escape hatch)."""
        return WalkCorpus.merge(list(self))

    # ------------------------------------------------------------------
    @classmethod
    def from_corpus(cls, corpus: WalkCorpus, *, num_nodes: int | None = None,
                    shard_walks: int | None = None) -> "WalkShardStream":
        """Re-iterable stream of row slices of an in-memory corpus.

        Shards are zero-copy views of ``shard_walks`` rows each (the
        whole corpus as one shard when ``None``). Mostly useful for
        testing streamed-vs-monolithic equivalence.
        """
        if num_nodes is None:
            if corpus.num_walks == 0:
                raise WalkError("cannot infer num_nodes from an empty corpus")
            num_nodes = int(corpus.walks.max()) + 1
        step = corpus.num_walks if shard_walks is None else int(shard_walks)
        if step < 1:
            raise WalkError("shard_walks must be >= 1")

        def factory():
            for lo in range(0, corpus.num_walks, step):
                yield WalkCorpus(
                    corpus.walks[lo : lo + step], corpus.lengths[lo : lo + step]
                )

        return cls(
            factory,
            num_nodes=num_nodes,
            total_walks=corpus.num_walks,
            walk_length=corpus.walks.shape[1],
        )

    def __repr__(self) -> str:
        kind = "re-iterable" if self.reiterable else "one-shot"
        return (
            f"WalkShardStream({kind}, num_nodes={self.num_nodes}, "
            f"total_walks={self.total_walks})"
        )
