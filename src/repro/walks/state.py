"""Walker state (paper Sections I and IV-B).

A walker's state x is "the data that helps the walker identify the
transition probability distribution". The unified abstraction splits it
into *position* (the current node) and *affixture* (model-specific extra
data): the previous node/edge for second-order models, the metapath target
type for metapath2vec, nothing for deepwalk.

:class:`WalkerState` is a single mutable record covering all five
published models; each model reads just the fields it defines.
"""

from __future__ import annotations

from dataclasses import dataclass

#: previous/prev_edge_offset value before the first step of a walk
NO_PREVIOUS = -1


@dataclass
class WalkerState:
    """State of one walker.

    Attributes
    ----------
    current:
        The node the walker resides at (the *position* component).
    previous:
        The node visited one step earlier, ``NO_PREVIOUS`` at walk start.
    prev_edge_offset:
        Global CSR offset of the edge taken to reach ``current``
        (``NO_PREVIOUS`` at walk start). Doubles as the flat state index
        for second-order models and carries the previous edge's type for
        edge2vec.
    step:
        Number of steps taken so far (drives the metapath position).
    """

    current: int
    previous: int = NO_PREVIOUS
    prev_edge_offset: int = NO_PREVIOUS
    step: int = 0

    @property
    def at_start(self) -> bool:
        """True before the walker has taken its first step."""
        return self.previous == NO_PREVIOUS

    def advanced(self, graph, edge_offset: int) -> "WalkerState":
        """Return the successor state after traversing ``edge_offset``."""
        return WalkerState(
            current=int(graph.targets[edge_offset]),
            previous=self.current,
            prev_edge_offset=int(edge_offset),
            step=self.step + 1,
        )
