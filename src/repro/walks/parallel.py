"""Multi-process walk generation — the paper's 16-thread parallelism.

UniNet "parallelizes the random walk generation by assigning walkers to
threads evenly". The CPython analog is process-level parallelism: the
start-node set is split into contiguous shards, each worker runs its own
:class:`~repro.walks.vectorized.VectorizedWalkEngine` over its shard with
an independent child RNG stream, and the shard corpora are merged (or
streamed to a consumer as workers finish).

Determinism model: the shard plan and the per-shard seeds depend only on
``(seed, start set, shard size)`` — **not** on ``num_workers`` and not on
the order shards happen to complete — so a fixed seed reproduces the
identical merged corpus on 1, 4 or 16 workers. Workers are purely a
concurrency knob.

Graph transport: the parent exports the CSR arrays into
``multiprocessing.shared_memory`` segments and workers wrap zero-copy
ndarray views of them in a trusted (validation-free) ``CSRGraph``, so
the network is stored **once** system-wide — the shared in-memory
storage of the paper's threaded engine — instead of being pickled to or
copy-on-write-duplicated in every worker. When shared memory is
unavailable the code falls back to shipping the graph object itself.

M-H chain state remains *per shard* (chains are scratch, not the
network), so states visited by several shards run independent chains.
The sampled law is unchanged — each chain still converges to G_x — only
cross-walker chain reuse is lost, which affects constant factors, not
correctness; the same trade-off the paper accepts for lock-free
threading.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

import numpy as np

from repro.errors import WalkError
from repro.utils.rng import spawn_rngs
from repro.walks.corpus import WalkCorpus

#: Default number of start-node shards when no shard size is requested —
#: enough slices to keep up to this many workers busy, small enough that
#: per-shard engine setup stays negligible.
DEFAULT_NUM_SHARDS = 16

#: CSRGraph array slots exported to shared memory (None slots skipped).
_GRAPH_FIELDS = ("offsets", "targets", "weights", "node_types", "edge_types")

# module-level worker state (populated per process via the initializer)
_WORKER = {}


def _export_shared_graph(segments: list, graph):
    """Copy the CSR arrays into shared-memory segments (parent side).

    Created segments are appended to ``segments`` *as they are created*
    so the caller can close+unlink everything even when a later
    allocation fails mid-way. Returns the payload workers attach with:
    ``("shm", specs, meta)`` where each spec is
    ``(field, segment_name, shape, dtype_str)``.
    """
    from multiprocessing import shared_memory

    specs = []
    for field in _GRAPH_FIELDS:
        arr = getattr(graph, field)
        if arr is None:
            continue
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        segments.append(shm)
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
        specs.append((field, shm.name, arr.shape, arr.dtype.str))
    meta = {
        "num_node_types": graph.num_node_types,
        "num_edge_types": graph.num_edge_types,
    }
    return ("shm", specs, meta)


def _release_segments(segments: list, *, unlink: bool) -> None:
    """Close (and optionally unlink) shared-memory segments, best-effort."""
    for shm in segments:
        try:
            shm.close()
            if unlink:
                shm.unlink()
        except OSError:
            pass


def _attach_shared_graph(specs, meta):
    """Worker side: wrap the parent's segments in a zero-copy CSRGraph.

    The returned segment handles must stay referenced for the process
    lifetime — dropping them would unmap the buffers under the views.
    """
    from multiprocessing import shared_memory

    from repro.graph.csr import CSRGraph

    arrays = dict.fromkeys(_GRAPH_FIELDS)
    segments = []
    for field, name, shape, dtype in specs:
        shm = shared_memory.SharedMemory(name=name)
        segments.append(shm)
        arrays[field] = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
    graph = CSRGraph._from_trusted_arrays(
        arrays["offsets"],
        arrays["targets"],
        arrays["weights"],
        arrays["node_types"],
        arrays["edge_types"],
        num_node_types=meta["num_node_types"],
        num_edge_types=meta["num_edge_types"],
    )
    return graph, segments


def _init_worker(graph_payload, model_name_or_obj, sampler, engine_kwargs, model_params):
    from repro.walks.models import make_model
    from repro.walks.vectorized import VectorizedWalkEngine

    kind = graph_payload[0]
    if kind == "shm":
        __, specs, meta = graph_payload
        graph, segments = _attach_shared_graph(specs, meta)
        _WORKER["segments"] = segments  # keep the views mapped
    else:
        graph = graph_payload[1]
    model = make_model(model_name_or_obj, graph, **model_params)
    _WORKER["engine_factory"] = lambda seed: VectorizedWalkEngine(
        graph, model, sampler=sampler, seed=seed, **engine_kwargs
    )


def _run_shard(args):
    starts, num_walks, walk_length, seed = args
    engine = _WORKER["engine_factory"](seed)
    corpus = engine.generate(num_walks=num_walks, walk_length=walk_length, start_nodes=starts)
    return corpus.walks, corpus.lengths


def _shard_plan(starts: np.ndarray, num_walks: int, shard_walks: int | None):
    """Split the start set into contiguous chunks of worker-independent size.

    ``shard_walks`` bounds the walks (start nodes x waves) per shard;
    ``None`` slices the start set into :data:`DEFAULT_NUM_SHARDS` chunks.
    The plan is a pure function of the inputs, never of the worker count.

    A shard cannot be smaller than one start node's ``num_walks`` waves
    (each start runs all its waves in one worker call), so
    ``shard_walks < num_walks`` still yields ``num_walks``-walk shards —
    the effective bound is ``max(shard_walks, num_walks)``.
    """
    if shard_walks is None:
        per = max(1, -(-starts.size // DEFAULT_NUM_SHARDS))
    else:
        if shard_walks < 1:
            raise WalkError("shard_walks must be >= 1")
        per = max(1, shard_walks // max(num_walks, 1))
    return [starts[lo : lo + per] for lo in range(0, starts.size, per)]


def _prepare(graph, model, num_walks, walk_length, start_nodes, seed, shard_walks, **model_params):
    if not isinstance(model, str):
        raise WalkError("parallel walk generation needs a model registry name")
    from repro.walks.models import make_model

    bound = make_model(model, graph, **model_params)
    starts = (
        bound.valid_start_nodes()
        if start_nodes is None
        else np.asarray(start_nodes, dtype=np.int64)
    )
    if starts.size == 0:
        raise WalkError("no valid start nodes")
    chunks = _shard_plan(starts, num_walks, shard_walks)
    seeds = [int(r.integers(2**31)) for r in spawn_rngs(seed, len(chunks))]
    jobs = [
        (chunk, num_walks, walk_length, shard_seed)
        for chunk, shard_seed in zip(chunks, seeds)
    ]
    return jobs


def parallel_generate_stream(
    graph,
    model,
    *,
    num_walks: int = 10,
    walk_length: int = 80,
    sampler: str = "mh",
    num_workers: int | None = None,
    start_nodes=None,
    seed=None,
    shard_walks: int | None = None,
    in_order: bool = False,
    engine_kwargs: dict | None = None,
    **model_params,
):
    """Yield ``(shard_index, WalkCorpus)`` pairs as workers finish.

    The producer half of the streaming pipeline: shard corpora surface
    the moment their worker completes instead of waiting for a global
    merge, so a consumer (e.g. the streaming word2vec trainer) can
    overlap training with the remaining walk generation while only
    O(shard) corpus bytes are in flight. ``shard_index`` is the shard's
    position in the deterministic plan; sorting by it recovers the
    canonical corpus order regardless of arrival order. ``in_order=True``
    yields shards in plan order.

    Jobs are submitted in a sliding window of ``2 * num_workers`` and
    each future is dropped as soon as its shard is yielded, so at most
    one window of shards is in flight at a time — a slow consumer gates
    the producers instead of the whole corpus piling up in completed
    futures.

    Pass kernel-backend and other engine options via ``engine_kwargs``
    (e.g. ``engine_kwargs={"backend": "cnative"}``); each worker
    compiles once per process, not once per shard.
    """
    jobs = _prepare(
        graph, model, num_walks, walk_length, start_nodes, seed, shard_walks,
        **model_params,
    )
    num_workers = num_workers if num_workers is not None else min(os.cpu_count() or 1, 8)
    if num_workers < 1:
        raise WalkError("num_workers must be >= 1")
    num_workers = min(num_workers, len(jobs))

    if num_workers == 1:
        _init_worker(("inline", graph), model, sampler, engine_kwargs or {}, model_params)
        for index, job in enumerate(jobs):
            walks, lengths = _run_shard(job)
            yield index, WalkCorpus(walks, lengths)
        return

    segments: list = []
    try:
        try:
            payload = _export_shared_graph(segments, graph)
        except (OSError, ImportError, ValueError):
            # no usable shared memory on this platform: ship the graph
            # object itself (pickled under spawn, COW-shared under fork)
            _release_segments(segments, unlink=True)
            segments = []
            payload = ("pickle", graph)
        window = 2 * num_workers
        with ProcessPoolExecutor(
            max_workers=num_workers,
            initializer=_init_worker,
            initargs=(payload, model, sampler, engine_kwargs or {}, model_params),
        ) as pool:
            next_job = 0
            if in_order:
                pending: deque = deque()
                while next_job < len(jobs) or pending:
                    while next_job < len(jobs) and len(pending) < window:
                        pending.append((next_job, pool.submit(_run_shard, jobs[next_job])))
                        next_job += 1
                    index, future = pending.popleft()
                    walks, lengths = future.result()
                    yield index, WalkCorpus(walks, lengths)
            else:
                futures: dict = {}
                while next_job < len(jobs) or futures:
                    while next_job < len(jobs) and len(futures) < window:
                        futures[pool.submit(_run_shard, jobs[next_job])] = next_job
                        next_job += 1
                    done, __ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures.pop(future)
                        walks, lengths = future.result()
                        yield index, WalkCorpus(walks, lengths)
    finally:
        # the pool has shut down (context exit) before we release, so no
        # worker still holds a view into the segments
        _release_segments(segments, unlink=True)


def parallel_generate(
    graph,
    model,
    *,
    num_walks: int = 10,
    walk_length: int = 80,
    sampler: str = "mh",
    num_workers: int | None = None,
    start_nodes=None,
    seed=None,
    shard_walks: int | None = None,
    engine_kwargs: dict | None = None,
    **model_params,
) -> WalkCorpus:
    """Generate walks with a pool of worker processes and merge the shards.

    ``model`` must be a registry name (instances cannot be pickled
    portably). Shards are merged in plan order, so for a fixed ``seed``
    the result is identical whatever ``num_workers`` is and however the
    shards' completion happened to interleave.
    """
    parts = sorted(
        parallel_generate_stream(
            graph,
            model,
            num_walks=num_walks,
            walk_length=walk_length,
            sampler=sampler,
            num_workers=num_workers,
            start_nodes=start_nodes,
            seed=seed,
            shard_walks=shard_walks,
            engine_kwargs=engine_kwargs,
            **model_params,
        ),
        key=lambda pair: pair[0],
    )
    return WalkCorpus.merge([corpus for __, corpus in parts])
