"""Multi-process walk generation — the paper's 16-thread parallelism.

UniNet "parallelizes the random walk generation by assigning walkers to
threads evenly". The CPython analog is process-level parallelism: the
start-node set is split into contiguous shards, each worker runs its own
:class:`~repro.walks.vectorized.VectorizedWalkEngine` over its shard with
an independent child RNG stream, and the shard corpora are merged.

Two fidelity notes:

* On fork-based platforms (Linux) the CSR graph is shared copy-on-write,
  mirroring the shared in-memory network storage of the original.
* M-H chain state is *per worker* here (processes cannot cheaply share
  the LAST_x array), so states visited by several shards run independent
  chains. The sampled law is unchanged — each chain still converges to
  G_x — only cross-walker chain reuse is lost, which affects constant
  factors, not correctness; the same trade-off the paper accepts for
  lock-free threading.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import WalkError
from repro.utils.rng import spawn_rngs
from repro.walks.corpus import WalkCorpus

# module-level worker state (populated per process via the initializer)
_WORKER = {}


def _init_worker(graph, model_name_or_obj, sampler, engine_kwargs, model_params):
    from repro.walks.models import make_model
    from repro.walks.vectorized import VectorizedWalkEngine

    model = make_model(model_name_or_obj, graph, **model_params)
    _WORKER["engine_factory"] = lambda seed: VectorizedWalkEngine(
        graph, model, sampler=sampler, seed=seed, **engine_kwargs
    )


def _run_shard(args):
    starts, num_walks, walk_length, seed = args
    engine = _WORKER["engine_factory"](seed)
    corpus = engine.generate(num_walks=num_walks, walk_length=walk_length, start_nodes=starts)
    return corpus.walks, corpus.lengths


def parallel_generate(
    graph,
    model,
    *,
    num_walks: int = 10,
    walk_length: int = 80,
    sampler: str = "mh",
    num_workers: int | None = None,
    start_nodes=None,
    seed=None,
    engine_kwargs: dict | None = None,
    **model_params,
) -> WalkCorpus:
    """Generate walks with a pool of worker processes.

    ``model`` must be a registry name (instances cannot be pickled
    portably); per-worker engines receive independent seed streams, so
    results are reproducible for a fixed ``(seed, num_workers)`` pair.
    """
    if not isinstance(model, str):
        raise WalkError("parallel_generate needs a model registry name")
    num_workers = num_workers or min(os.cpu_count() or 1, 8)
    if num_workers < 1:
        raise WalkError("num_workers must be >= 1")

    from repro.walks.models import make_model

    bound = make_model(model, graph, **model_params)
    starts = (
        bound.valid_start_nodes()
        if start_nodes is None
        else np.asarray(start_nodes, dtype=np.int64)
    )
    if starts.size == 0:
        raise WalkError("no valid start nodes")
    num_workers = min(num_workers, starts.size)
    shards = np.array_split(starts, num_workers)
    seeds = [int(r.integers(2**31)) for r in spawn_rngs(seed, num_workers)]

    if num_workers == 1:
        _init_worker(graph, model, sampler, engine_kwargs or {}, model_params)
        walks, lengths = _run_shard((shards[0], num_walks, walk_length, seeds[0]))
        return WalkCorpus(walks, lengths)

    jobs = [
        (shard, num_walks, walk_length, shard_seed)
        for shard, shard_seed in zip(shards, seeds)
    ]
    with ProcessPoolExecutor(
        max_workers=num_workers,
        initializer=_init_worker,
        initargs=(graph, model, sampler, engine_kwargs or {}, model_params),
    ) as pool:
        parts = list(pool.map(_run_shard, jobs))
    return WalkCorpus.merge([WalkCorpus(w, ln) for w, ln in parts])
