"""Random-walk generation: models, state management and walk engines.

This package realises the paper's Section IV:

* :mod:`repro.walks.models` — the unified random-walk model abstraction
  (``calculate_weight`` / ``update_state``) and the five published models
  of Table I.
* :mod:`repro.walks.manager` — the flat chain store behind the 2D
  (position, affixture) sampler layout of Fig. 4.
* :mod:`repro.walks.engine` — a line-by-line scalar implementation of
  Algorithm 2 (the validation reference).
* :mod:`repro.walks.vectorized` — the production engine: all walkers of a
  wave advance in lock-step numpy operations.
* :mod:`repro.walks.corpus` — the generated walk corpus fed to word2vec.
"""

from repro.walks.corpus import WalkCorpus
from repro.walks.engine import ReferenceWalkEngine
from repro.walks.manager import ChainStore
from repro.walks.models import MODEL_REGISTRY, MODELS, make_model, register_model
from repro.walks.parallel import parallel_generate, parallel_generate_stream
from repro.walks.state import WalkerState
from repro.walks.stream import WalkShardStream
from repro.walks.vectorized import StepperBase, VectorizedWalkEngine

__all__ = [
    "WalkerState",
    "ChainStore",
    "WalkCorpus",
    "WalkShardStream",
    "ReferenceWalkEngine",
    "VectorizedWalkEngine",
    "StepperBase",
    "MODELS",
    "MODEL_REGISTRY",
    "make_model",
    "register_model",
    "parallel_generate",
    "parallel_generate_stream",
]
