"""Reference walk engine — a scalar transliteration of Algorithm 2.

This engine exists for *validation*: it walks one step at a time through
exactly the paper's control flow (get walker, query sampler by state,
sample, update state), so its output distribution is easy to reason about
and the test suite uses it as ground truth for the vectorized engine. For
production workloads use :class:`~repro.walks.vectorized.VectorizedWalkEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError
from repro.registry import SCALAR_SAMPLER_REGISTRY, SamplerContext
from repro.sampling.base import NO_EDGE, EdgeSampler, draw_from_weights
from repro.utils.rng import as_rng
from repro.walks.corpus import WalkCorpus
from repro.walks.models import make_model


def _make_scalar_sampler(name, graph, model, *, initializer, table_budget_bytes, budget):
    """Resolve a sampler name through the scalar registry and build it.

    Each entry's ``factory`` capability is called as ``factory(graph,
    model, ctx)``; entries registered without one (e.g. third-party
    samplers) are called the same way themselves. Unknown names raise
    :class:`~repro.errors.WalkError` listing what is registered.
    """
    ctx = SamplerContext(
        initializer=initializer, table_budget_bytes=table_budget_bytes, budget=budget
    )
    entry = SCALAR_SAMPLER_REGISTRY.entry(name)
    factory = entry.capabilities.get("factory", entry.obj)
    return factory(graph, model, ctx)


class ReferenceWalkEngine:
    """Algorithm 2, one walker at a time.

    Parameters
    ----------
    graph:
        CSR network.
    model:
        A bound :class:`~repro.walks.models.base.RandomWalkModel` or a
        registry name (extra ``model_params`` are forwarded).
    sampler:
        An :class:`~repro.sampling.base.EdgeSampler` instance or one of
        ``"mh"`` (default), ``"direct"``, ``"alias"``, ``"rejection"``,
        ``"knightking"``, ``"memory-aware"``.
    initializer:
        M-H initialization strategy (ignored by other samplers).
    seed:
        Seed for the engine's generator.
    """

    def __init__(
        self,
        graph,
        model,
        sampler="mh",
        *,
        initializer="high-weight",
        table_budget_bytes=None,
        budget=None,
        seed=None,
        **model_params,
    ):
        self.graph = graph
        self.model = make_model(model, graph, **model_params)
        if isinstance(sampler, EdgeSampler):
            self.sampler = sampler
        else:
            self.sampler = _make_scalar_sampler(
                sampler,
                graph,
                self.model,
                initializer=initializer,
                table_budget_bytes=table_budget_bytes,
                budget=budget,
            )
        self.rng = as_rng(seed)

    # ------------------------------------------------------------------
    def generate(self, num_walks: int = 10, walk_length: int = 80, start_nodes=None) -> WalkCorpus:
        """Create ``num_walks`` walks of ``walk_length`` nodes per start.

        ``walk_length`` counts *nodes* (the paper's "sequences of length
        80"), so each walk takes at most ``walk_length - 1`` steps. Walks
        start at every valid start node by default and may end early at
        dead ends.
        """
        if num_walks < 1 or walk_length < 1:
            raise WalkError("num_walks and walk_length must be >= 1")
        if start_nodes is None:
            starts = self.model.valid_start_nodes()
        else:
            starts = np.asarray(start_nodes, dtype=np.int64)
        sequences = []
        for __ in range(num_walks):
            for v in starts:
                sequences.append(self.walk(int(v), walk_length))
        return WalkCorpus.from_lists(sequences)

    def walk(self, start: int, walk_length: int) -> list[int]:
        """One walk from ``start``; the inner loop of Algorithm 2."""
        graph, model, sampler, rng = self.graph, self.model, self.sampler, self.rng
        state = model.initial_state(start)
        sequence = [start]
        for __ in range(walk_length - 1):
            if model.order == 2 and state.at_start:
                off = self._first_step(state, rng)
            else:
                off = sampler.sample(graph, model, state, rng)
            if off == NO_EDGE:
                break
            sequence.append(int(graph.targets[off]))
            state = model.update_state(state, off)
        return sequence

    def _first_step(self, state, rng) -> int:
        """Second-order models take step 0 from the model's start-state law.

        The models define α = 1 without a previous edge, so this is the
        static distribution for node2vec/edge2vec but keeps fairwalk's
        group discounting.
        """
        weights = self.model.dynamic_weights_row(self.graph, state)
        pos = draw_from_weights(weights, rng)
        if pos == NO_EDGE:
            return NO_EDGE
        return int(self.graph.offsets[state.current]) + pos
