"""Walk corpus: the node sequences handed to the word2vec trainer.

Walks are stored as one dense int64 matrix with -1 padding past each
walk's end (walks can terminate early at dead ends), plus a length vector.
This keeps a billion-token corpus cache-friendly and makes the word2vec
vocabulary pass a single ``bincount``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError


class WalkCorpus:
    """A set of random walks over node ids.

    Parameters
    ----------
    walks:
        int64 matrix ``(num_walks, max_len)``; row i holds walk i padded
        with -1 after ``lengths[i]`` entries.
    lengths:
        number of valid nodes per walk (``1 <= lengths[i] <= max_len``).
    """

    def __init__(self, walks: np.ndarray, lengths: np.ndarray):
        self.walks = np.ascontiguousarray(walks, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if self.walks.ndim != 2:
            raise WalkError("walks must be a 2-D matrix")
        if self.lengths.shape != (self.walks.shape[0],):
            raise WalkError("lengths must have one entry per walk")
        if self.walks.shape[0] and (
            self.lengths.min() < 1 or self.lengths.max() > self.walks.shape[1]
        ):
            raise WalkError("walk lengths out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_lists(cls, sequences) -> "WalkCorpus":
        """Build from an iterable of node-id sequences."""
        seqs = [np.asarray(s, dtype=np.int64) for s in sequences]
        if not seqs:
            return cls(np.empty((0, 1), dtype=np.int64), np.empty(0, dtype=np.int64))
        max_len = max(s.size for s in seqs)
        walks = np.full((len(seqs), max_len), -1, dtype=np.int64)
        lengths = np.empty(len(seqs), dtype=np.int64)
        for i, s in enumerate(seqs):
            walks[i, : s.size] = s
            lengths[i] = s.size
        return cls(walks, lengths)

    @classmethod
    def merge(cls, corpora) -> "WalkCorpus":
        """Concatenate several corpora (walk order preserved).

        A single input is returned as-is (no copy), and same-width inputs
        concatenate directly instead of being copied through a freshly
        ``-1``-filled matrix — merging N equal shards costs one copy, not
        a fill plus a copy.
        """
        corpora = list(corpora)
        if not corpora:
            return cls(np.empty((0, 1), dtype=np.int64), np.empty(0, dtype=np.int64))
        if len(corpora) == 1:
            return corpora[0]
        max_len = max(c.walks.shape[1] for c in corpora)
        if all(c.walks.shape[1] == max_len for c in corpora):
            return cls(
                np.concatenate([c.walks for c in corpora]),
                np.concatenate([c.lengths for c in corpora]),
            )
        total = sum(c.num_walks for c in corpora)
        walks = np.full((total, max_len), -1, dtype=np.int64)
        lengths = np.empty(total, dtype=np.int64)
        row = 0
        for c in corpora:
            walks[row : row + c.num_walks, : c.walks.shape[1]] = c.walks
            lengths[row : row + c.num_walks] = c.lengths
            row += c.num_walks
        return cls(walks, lengths)

    # ------------------------------------------------------------------
    @property
    def num_walks(self) -> int:
        """Number of walks."""
        return self.walks.shape[0]

    @property
    def token_count(self) -> int:
        """Total number of node occurrences across all walks."""
        return int(self.lengths.sum())

    @property
    def nbytes(self) -> int:
        """Resident bytes of the corpus arrays (walk matrix + lengths)."""
        return self.walks.nbytes + self.lengths.nbytes

    def iter_walks(self):
        """Yield each walk as a trimmed int64 array."""
        for i in range(self.num_walks):
            yield self.walks[i, : self.lengths[i]]

    def node_frequencies(self, num_nodes: int) -> np.ndarray:
        """Occurrences of each node id across the corpus."""
        flat = self.walks[self.walks >= 0]
        return np.bincount(flat, minlength=num_nodes)

    def nodes_visited(self) -> np.ndarray:
        """Sorted unique node ids appearing in the corpus."""
        return np.unique(self.walks[self.walks >= 0])

    def statistics(self) -> dict:
        """Corpus summary: walk counts, length distribution, node coverage."""
        if self.num_walks == 0:
            return {
                "num_walks": 0,
                "token_count": 0,
                "mean_length": 0.0,
                "min_length": 0,
                "max_length": 0,
                "truncated_walks": 0,
                "distinct_nodes": 0,
            }
        return {
            "num_walks": self.num_walks,
            "token_count": self.token_count,
            "mean_length": float(self.lengths.mean()),
            "min_length": int(self.lengths.min()),
            "max_length": int(self.lengths.max()),
            "truncated_walks": int((self.lengths < self.walks.shape[1]).sum()),
            "distinct_nodes": int(self.nodes_visited().size),
        }

    # ------------------------------------------------------------------
    def save_npz(self, path) -> None:
        """Persist to a compressed ``.npz``."""
        np.savez_compressed(path, walks=self.walks, lengths=self.lengths)

    @classmethod
    def load_npz(cls, path) -> "WalkCorpus":
        """Load a corpus stored by :meth:`save_npz`."""
        with np.load(path) as data:
            return cls(data["walks"], data["lengths"])

    def save_text(self, path) -> None:
        """Write one space-separated walk per line (external word2vec
        tools consume exactly this format)."""
        with open(path, "w") as handle:
            for walk in self.iter_walks():
                handle.write(" ".join(map(str, walk.tolist())))
                handle.write("\n")

    @classmethod
    def load_text(cls, path) -> "WalkCorpus":
        """Load a corpus written by :meth:`save_text`."""
        sequences = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    sequences.append([int(tok) for tok in line.split()])
        return cls.from_lists(sequences)

    def __len__(self) -> int:
        return self.num_walks

    def __repr__(self) -> str:
        return f"WalkCorpus(num_walks={self.num_walks}, tokens={self.token_count})"
