"""Compiled walk-step kernels behind a pluggable backend registry.

The walk engine's hot path — the M-H chain step (Algorithm 1), the
first/second-order alias gathers and the rejection/KnightKing acceptance
round — is factored into four *kernels* operating on the flat array
bundle of :class:`~repro.walks.kernels.state.KernelState`. Three
backends implement them:

``numpy``
    Always available; the default. Reproduces the pre-kernel stepper
    formulas operation-for-operation and handles *generic* models via a
    driver-supplied weight callback.
``numba``
    ``@njit(cache=True)`` loops; optional dependency, requested
    explicitly via ``backend="numba"`` (ConfigError when absent).
``cnative``
    C loops compiled at first use with the system compiler and loaded
    through ctypes — the compiled backend available in containers that
    ship ``cc`` but not numba.

All randomness stays in the driver (the stepper pre-draws every uniform
in the engine's historical call order), so kernels are deterministic
pure functions and every backend yields bitwise-identical corpora for a
fixed seed — the property ``tests/test_kernels.py`` sweeps.
"""

from __future__ import annotations

from repro.registry import KERNEL_REGISTRY
from repro.walks.kernels.state import KernelState


def resolve_backend(name: str = "numpy"):
    """Kernel backend instance for ``name`` (alias-aware).

    Raises :class:`~repro.errors.WalkError` for unknown names and
    :class:`~repro.errors.ConfigError` when the backend exists but its
    dependency (numba, a C compiler) is missing.
    """
    return KERNEL_REGISTRY.create(name)


def default_backend():
    """The always-available NumPy backend singleton."""
    return resolve_backend("numpy")


def available_backends() -> dict[str, bool]:
    """Map of registered backend names to cheap availability probes."""
    from repro.walks.kernels.backends import backend_available

    return {name: backend_available(name) for name in KERNEL_REGISTRY.names()}


__all__ = [
    "KernelState",
    "KERNEL_REGISTRY",
    "resolve_backend",
    "default_backend",
    "available_backends",
]
