"""Registry home for kernel backends (``KERNEL_REGISTRY`` built-ins).

Factories take no arguments and return a process-wide singleton backend
(compiled backends cache their machine code, so one instance per process
is the right granularity). Unavailable backends raise
:class:`~repro.errors.ConfigError` — *not* ImportError — so a RunSpec or
CLI request for a missing optional dependency surfaces as a
configuration problem with remediation text.
"""

from __future__ import annotations

from repro.registry import KERNEL_REGISTRY
from repro.walks.kernels.cnative_backend import CNativeKernels, find_compiler
from repro.walks.kernels.numba_backend import HAVE_NUMBA, NumbaKernels
from repro.walks.kernels.numpy_backend import NumpyKernels

_INSTANCES: dict[str, object] = {}


def _singleton(name: str, cls):
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = cls()  # may raise ConfigError when unavailable
        _INSTANCES[name] = backend
    return backend


def _numpy_factory():
    return _singleton("numpy", NumpyKernels)


def _numba_factory():
    return _singleton("numba", NumbaKernels)


def _cnative_factory():
    return _singleton("cnative", CNativeKernels)


def backend_available(name: str) -> bool:
    """Cheap availability probe (no compilation, no instantiation)."""
    if name == "numba":
        return HAVE_NUMBA
    if name == "cnative":
        return find_compiler() is not None
    return name == "numpy"


KERNEL_REGISTRY.register(
    "numpy",
    _numpy_factory,
    aliases=("np", "fallback"),
    compiled=False,
    kinds=("generic", "static", "node2vec"),
)
KERNEL_REGISTRY.register(
    "numba",
    _numba_factory,
    aliases=("jit",),
    compiled=True,
    kinds=("static", "node2vec"),
)
KERNEL_REGISTRY.register(
    "cnative",
    _cnative_factory,
    aliases=("c", "native"),
    compiled=True,
    kinds=("static", "node2vec"),
)

__all__ = ["backend_available"]
