"""numba ``@njit(cache=True)`` step kernels (optional dependency).

Importing this module is safe without numba — :data:`HAVE_NUMBA` reports
availability and :class:`NumbaKernels` raises
:class:`~repro.errors.ConfigError` from its constructor, which is what
the registry factory surfaces when ``backend="numba"`` is requested on a
machine without it.

The jitted loops are line-for-line ports of the C loops in
:mod:`repro.walks.kernels.cnative_backend` (same expressions, same
association order), so the parity suite covers them identically whenever
numba is present. ``cache=True`` persists the compiled machine code next
to this file, so ``compile_seconds`` collapses to a disk load after the
first process.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.sampling.base import NO_EDGE

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Import-time stub so the jitted defs below still parse."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_HAS_WEIGHTS = 1  # weights array present (vs. implicit 1.0)


@njit(cache=True)
def _has_edge(offsets, targets, v, u):  # pragma: no cover - jitted
    lo = offsets[v]
    hi = offsets[v + 1]
    if hi - lo <= 64:
        found = False
        for e in range(lo, hi):
            found |= targets[e] == u
        return found
    while lo < hi:
        mid = (lo + hi) // 2
        if targets[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo < offsets[v + 1] and targets[lo] == u


@njit(cache=True)
def _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev, e):  # pragma: no cover
    w = weights[e] if has_w == _HAS_WEIGHTS else 1.0
    if kind != 2:
        return w
    u = targets[e]
    if prev < 0:
        alpha = 1.0
    elif u == prev:
        alpha = 1.0 / p
    elif _has_edge(offsets, targets, prev, u):
        alpha = 1.0
    else:
        alpha = 1.0 / q
    return w * alpha


@njit(cache=True)
def _mh_propose(offsets, targets, weights, has_w, kind, p, q,
                prev, cur, last, last_w, u_cand, u_acc,
                out_cand, out_w_cand, out_w_last, out_accept):  # pragma: no cover
    num_edges = targets.size
    for i in range(cur.size):
        v = cur[i]
        lo = offsets[v]
        deg = offsets[v + 1] - lo
        c = lo + np.int64(u_cand[i] * float(deg if deg > 0 else 1))
        if c >= num_edges:
            c = num_edges - 1
        if c < 0:
            c = 0
        wc = _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev[i], c)
        last_i = last[i] if last[i] > 0 else 0
        wl = last_w[i]
        if wl != wl:
            wl = _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev[i], last_i)
        out_cand[i] = c
        out_w_cand[i] = wc
        out_w_last[i] = wl
        out_accept[i] = (wc > 0.0) and ((wl <= 0.0) or (u_acc[i] * wl < wc))


@njit(cache=True)
def _mh_step(offsets, targets, weights, has_w, kind, p, q,
             idx, prev, cur, last, last_w, dead, u_cand, u_acc,
             chain_last, chain_last_w, out_next, counts):  # pragma: no cover
    num_edges = targets.size
    n_ok = 0
    n_acc = 0
    for i in range(cur.size):
        if dead[i]:
            out_next[i] = NO_EDGE
            continue
        v = cur[i]
        lo = offsets[v]
        deg = offsets[v + 1] - lo
        c = lo + np.int64(u_cand[i] * float(deg if deg > 0 else 1))
        if c >= num_edges:
            c = num_edges - 1
        if c < 0:
            c = 0
        wc = _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev[i], c)
        l = last[i] if last[i] > 0 else 0
        wl = last_w[i]
        if wl != wl:
            wl = _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev[i], l)
        acc = (wc > 0.0) and ((wl <= 0.0) or (u_acc[i] * wl < wc))
        nl = c if acc else last[i]
        chain_last[idx[i]] = nl
        chain_last_w[idx[i]] = wc if acc else wl
        out_next[i] = nl
        n_ok += 1
        if acc:
            n_acc += 1
    counts[0] = n_ok
    counts[1] = n_acc


@njit(cache=True)
def _dyn_weights(offsets, targets, weights, has_w, kind, p, q,
                 prev, offs, out):  # pragma: no cover - jitted
    for i in range(offs.size):
        out[i] = _dyn_weight(kind, p, q, offsets, targets, weights, has_w,
                             prev[i], offs[i])


@njit(cache=True)
def _mh_init_select(offsets, targets, weights, has_w, kind, p, q,
                    prev, cur, u, cap, num_nodes, order, mark,
                    out_c, out_w):  # pragma: no cover - jitted
    # lanes visited in prev-sorted order (outputs are per-lane, so the
    # visit order is parity-free); walkers sharing a prev amortize one
    # marking pass of its adjacency into the L1-resident uint64 bitmap,
    # cleared lazily when the marked row changes
    marked = np.int64(-1)
    checked = np.int64(-1)
    use_mark_group = False
    if kind == 2:
        mark[: (num_nodes + 63) // 64] = 0
    for si in range(cur.size):
        i = order[si]
        pv = prev[i]
        use_mark = False
        if kind == 2 and pv >= 0:
            if pv != checked:
                glen = 1
                while si + glen < cur.size and prev[order[si + glen]] == pv:
                    glen += 1
                checked = pv
                use_mark_group = offsets[pv + 1] - offsets[pv] <= 4 * cap * glen
                if use_mark_group:
                    if marked >= 0:
                        for e in range(offsets[marked], offsets[marked + 1]):
                            t = targets[e]
                            mark[t >> 6] &= ~(np.uint64(1) << np.uint64(t & 63))
                    for e in range(offsets[pv], offsets[pv + 1]):
                        t = targets[e]
                        mark[t >> 6] |= np.uint64(1) << np.uint64(t & 63)
                    marked = pv
            use_mark = use_mark_group
        lo = offsets[cur[i]]
        deg = offsets[cur[i] + 1] - lo
        d = float(deg if deg > 0 else 1)
        best_c = lo
        best_w = 0.0
        for j in range(cap):
            c = lo + np.int64(u[i, j] * d)
            w = weights[c] if has_w == _HAS_WEIGHTS else 1.0
            if kind == 2:
                t = targets[c]
                if pv < 0:
                    alpha = 1.0
                elif t == pv:
                    alpha = 1.0 / p
                elif (
                    (mark[t >> 6] >> np.uint64(t & 63)) & np.uint64(1)
                ) != 0 if use_mark else _has_edge(offsets, targets, pv, t):
                    alpha = 1.0
                else:
                    alpha = 1.0 / q
                w = w * alpha
            if j == 0 or w > best_w:
                best_w = w
                best_c = c
        out_c[i] = best_c
        out_w[i] = best_w


@njit(cache=True)
def _alias_draw(offsets, thresh, alias, tsize, weighted,
                nodes, u_slot, u_keep, out):  # pragma: no cover
    for i in range(nodes.size):
        v = nodes[i]
        lo = offsets[v]
        deg = offsets[v + 1] - lo
        k = lo + np.int64(u_slot[i] * float(deg if deg > 0 else 1))
        if weighted:
            kk = k if k < tsize - 1 else tsize - 1
            if not (u_keep[i] < thresh[kk]):
                k = alias[kk]
        out[i] = k if deg > 0 else NO_EDGE


@njit(cache=True)
def _state_alias_draw(offsets, base, thresh, alias_local, tab_deg, has, tsize,
                      state_idx, cur, u_slot, u_keep, out):  # pragma: no cover
    for i in range(state_idx.size):
        s = state_idx[i]
        if not has[s]:
            out[i] = NO_EDGE
            continue
        deg = tab_deg[s]
        k = np.int64(u_slot[i] * float(deg if deg > 0 else 1))
        slot = base[s] + k
        cap = tsize - 1 if tsize - 1 > 0 else 0
        if slot > cap:
            slot = cap
        pos = k if u_keep[i] < thresh[slot] else alias_local[slot]
        out[i] = offsets[cur[i]] + pos


@njit(cache=True)
def _rejection_round(offsets, targets, weights, has_w, kind, p, q,
                     prop_thresh, prop_alias, tsize, weighted,
                     prev, cur, u_prop, u_keep, u_acc, bound, clip,
                     out_off, out_accept):  # pragma: no cover
    for i in range(cur.size):
        v = cur[i]
        lo = offsets[v]
        deg = offsets[v + 1] - lo
        k = lo + np.int64(u_prop[i] * float(deg if deg > 0 else 1))
        if weighted:
            kk = k if k < tsize - 1 else tsize - 1
            if not (u_keep[i] < prop_thresh[kk]):
                k = prop_alias[kk]
        off = k if deg > 0 else NO_EDGE
        out_off[i] = off
        e = off if off > 0 else 0
        ws = weights[e] if has_w == _HAS_WEIGHTS else 1.0
        wd = _dyn_weight(kind, p, q, offsets, targets, weights, has_w, prev[i], e)
        if clip:
            cl = bound * ws
            if wd > cl:
                wd = cl
        out_accept[i] = (off >= 0) and (u_acc[i] * bound * ws < wd)


_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


class NumbaKernels:
    """JIT-compiled step loops; mirrors the cnative backend exactly."""

    name = "numba"
    compiled = True

    def __init__(self):
        if not HAVE_NUMBA:
            raise ConfigError(
                "kernel backend 'numba' requested but numba is not installed; "
                "install the 'jit' extra (pip install repro[jit]) or use "
                "backend='numpy'"
            )
        self._warm = False
        self._mark = None  # node-indexed scratch for mh_init_select

    def supports(self, spec) -> bool:
        return spec.get("kind") in ("static", "node2vec")

    def warmup(self) -> float:
        """Force-compile every kernel on tiny inputs; returns seconds."""
        if self._warm:
            return 0.0
        t0 = time.perf_counter()
        offsets = np.array([0, 1], dtype=np.int64)
        targets = np.array([0], dtype=np.int64)
        weights = np.array([1.0], dtype=np.float64)
        one_i = np.zeros(1, dtype=np.int64)
        one_f = np.zeros(1, dtype=np.float64)
        out_i = np.empty(1, dtype=np.int64)
        out_f = np.empty(1, dtype=np.float64)
        out_b = np.empty(1, dtype=np.bool_)
        one_u8 = np.zeros(1, dtype=np.uint8)
        two_i = np.zeros(2, dtype=np.int64)
        for kind in (1, 2):
            _mh_propose(offsets, targets, weights, 1, kind, 1.0, 1.0,
                        one_i, one_i, one_i, one_f, one_f, one_f,
                        out_i, out_f, out_f.copy(), out_b)
            _mh_step(offsets, targets, weights, 1, kind, 1.0, 1.0,
                     one_i, one_i, one_i, one_i, one_f, one_u8, one_f, one_f,
                     out_i.copy(), out_f.copy(), out_i.copy(), two_i)
            _rejection_round(offsets, targets, weights, 1, kind, 1.0, 1.0,
                             one_f + 1.0, one_i, 1, True,
                             one_i, one_i, one_f, one_f, one_f, 1.0, False,
                             out_i, out_b)
            _dyn_weights(offsets, targets, weights, 1, kind, 1.0, 1.0,
                         one_i, one_i, out_f)
            _mh_init_select(offsets, targets, weights, 1, kind, 1.0, 1.0,
                            one_i, one_i, np.zeros((1, 1)), 1, 1, one_i.copy(),
                            np.zeros(1, dtype=np.uint64), out_i, out_f)
        _alias_draw(offsets, one_f + 1.0, one_i, 1, True, one_i, one_f, one_f, out_i)
        _alias_draw(offsets, _EMPTY_F64, _EMPTY_I64, 0, False, one_i, one_f, one_f, out_i)
        _state_alias_draw(offsets, one_i, one_f + 1.0, one_i, one_i + 1,
                          np.ones(1, dtype=np.bool_), 1,
                          one_i, one_i, one_f, one_f, out_i)
        self._warm = True
        return time.perf_counter() - t0

    # ------------------------------------------------------------------
    def mh_propose(self, ks, prev, cur, last, last_w, u_cand, u_acc, weight_fn):
        n = cur.size
        weights = ks.weights if ks.weights is not None else _EMPTY_F64
        has_w = 1 if ks.weights is not None else 0
        cand = np.empty(n, dtype=np.int64)
        w_cand = np.empty(n, dtype=np.float64)
        w_last = np.empty(n, dtype=np.float64)
        accept = np.empty(n, dtype=np.bool_)
        _mh_propose(ks.offsets, ks.targets, weights, has_w,
                    ks.kind_code, ks.p, ks.q,
                    np.ascontiguousarray(prev, dtype=np.int64),
                    np.ascontiguousarray(cur, dtype=np.int64),
                    np.ascontiguousarray(last, dtype=np.int64),
                    np.ascontiguousarray(last_w, dtype=np.float64),
                    u_cand, u_acc, cand, w_cand, w_last, accept)
        return cand, w_cand, w_last, accept

    def mh_step(self, ks, idx, prev, cur, last, last_w, dead, u_cand, u_acc, weight_fn):
        n = cur.size
        weights = ks.weights if ks.weights is not None else _EMPTY_F64
        has_w = 1 if ks.weights is not None else 0
        out_next = np.empty(n, dtype=np.int64)
        counts = np.zeros(2, dtype=np.int64)
        _mh_step(ks.offsets, ks.targets, weights, has_w,
                 ks.kind_code, ks.p, ks.q,
                 np.ascontiguousarray(idx, dtype=np.int64),
                 np.ascontiguousarray(prev, dtype=np.int64),
                 np.ascontiguousarray(cur, dtype=np.int64),
                 np.ascontiguousarray(last, dtype=np.int64),
                 np.ascontiguousarray(last_w, dtype=np.float64),
                 np.ascontiguousarray(dead, dtype=np.uint8),
                 u_cand, u_acc, ks.chain_last, ks.chain_last_w,
                 out_next, counts)
        return out_next, int(counts[0]), int(counts[1])

    def dyn_weights(self, ks, prev, offs, weight_fn):
        weights = ks.weights if ks.weights is not None else _EMPTY_F64
        has_w = 1 if ks.weights is not None else 0
        out = np.empty(offs.size, dtype=np.float64)
        _dyn_weights(ks.offsets, ks.targets, weights, has_w,
                     ks.kind_code, ks.p, ks.q,
                     np.ascontiguousarray(prev, dtype=np.int64),
                     np.ascontiguousarray(offs, dtype=np.int64), out)
        return out

    def mh_init_select(self, ks, prev, cur, u, weight_fn):
        weights = ks.weights if ks.weights is not None else _EMPTY_F64
        has_w = 1 if ks.weights is not None else 0
        u = np.ascontiguousarray(u, dtype=np.float64)
        k, cap = u.shape
        num_nodes = ks.offsets.size - 1
        words = (num_nodes + 63) // 64
        if self._mark is None or self._mark.size < words:
            self._mark = np.zeros(words, dtype=np.uint64)
        out_c = np.empty(k, dtype=np.int64)
        out_w = np.empty(k, dtype=np.float64)
        prev = np.ascontiguousarray(prev, dtype=np.int64)
        order = np.argsort(prev, kind="stable")
        _mh_init_select(ks.offsets, ks.targets, weights, has_w,
                        ks.kind_code, ks.p, ks.q, prev,
                        np.ascontiguousarray(cur, dtype=np.int64),
                        u, cap, num_nodes, order, self._mark, out_c, out_w)
        return out_c, out_w

    def alias_draw(self, ks, nodes, u_slot, u_keep):
        out = np.empty(nodes.size, dtype=np.int64)
        if u_keep is None:
            _alias_draw(ks.offsets, _EMPTY_F64, _EMPTY_I64, 0, False,
                        np.ascontiguousarray(nodes, dtype=np.int64),
                        u_slot, u_slot, out)
        else:
            _alias_draw(ks.offsets, ks.prop_threshold, ks.prop_alias,
                        ks.prop_threshold.size, True,
                        np.ascontiguousarray(nodes, dtype=np.int64),
                        u_slot, u_keep, out)
        return out

    def state_alias_draw(self, ks, state_idx, cur, u_slot, u_keep):
        out = np.empty(state_idx.size, dtype=np.int64)
        _state_alias_draw(ks.offsets, ks.tab_base, ks.tab_threshold,
                          ks.tab_alias, ks.tab_deg,
                          np.ascontiguousarray(ks.tab_has, dtype=np.bool_),
                          ks.tab_threshold.size,
                          np.ascontiguousarray(state_idx, dtype=np.int64),
                          np.ascontiguousarray(cur, dtype=np.int64),
                          u_slot, u_keep, out)
        return out

    def rejection_round(self, ks, prev, cur, u_prop, u_keep, u_acc, bound, clip, weight_fn):
        n = cur.size
        weights = ks.weights if ks.weights is not None else _EMPTY_F64
        has_w = 1 if ks.weights is not None else 0
        out_off = np.empty(n, dtype=np.int64)
        accept = np.empty(n, dtype=np.bool_)
        if u_keep is None:
            thresh, alias, tsize, weighted, keep = _EMPTY_F64, _EMPTY_I64, 0, False, u_prop
        else:
            thresh, alias = ks.prop_threshold, ks.prop_alias
            tsize, weighted, keep = ks.prop_threshold.size, True, u_keep
        _rejection_round(ks.offsets, ks.targets, weights, has_w,
                         ks.kind_code, ks.p, ks.q,
                         thresh, alias, tsize, weighted,
                         np.ascontiguousarray(prev, dtype=np.int64),
                         np.ascontiguousarray(cur, dtype=np.int64),
                         u_prop, keep, u_acc, float(bound), bool(clip),
                         out_off, accept)
        return out_off, accept


__all__ = ["NumbaKernels", "HAVE_NUMBA"]
