"""Flat kernel state: every array a step kernel may touch, in one bundle.

The compiled-kernel layer works on plain contiguous ndarrays only — no
graph objects, no model objects, no Python callbacks (the NumPy backend
is the one exception: it receives a ``weight_fn`` for *generic* models
whose dynamic weight has no compiled equivalent). :class:`KernelState`
is that array bundle: the CSR arrays, the model's compiled weight spec,
and whichever persistent sampler structures the owning stepper maintains
(first-order proposal tables, per-state alias tables, M-H chain arrays).

Steppers expose it via a ``kernel_state`` property built fresh on each
access — the fields are *references* to the live arrays, so construction
is O(1) and the bundle can never go stale across an ``on_delta`` rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Weight-rule identifiers understood by the compiled backends.  A model
#: advertises one via :meth:`RandomWalkModel.kernel_spec`; ``"generic"``
#: means "only the model's own :meth:`batch_dynamic_weight` can evaluate
#: it", which restricts the engine to the NumPy backend.
KIND_GENERIC = "generic"
KIND_STATIC = "static"
KIND_NODE2VEC = "node2vec"

#: Integer codes for the compiled (numba / C) entry points.
KIND_CODES = {KIND_GENERIC: 0, KIND_STATIC: 1, KIND_NODE2VEC: 2}


@dataclass
class KernelState:
    """Array bundle handed to step kernels.

    Graph fields are always present; the sampler-structure fields are
    ``None`` unless the owning stepper maintains that structure. All
    arrays are C-contiguous with the dtypes the CSR representation
    guarantees (int64 offsets/targets/aliases, float64 weights and
    thresholds, uint8/bool flags).
    """

    # -- CSR graph ------------------------------------------------------
    offsets: np.ndarray
    targets: np.ndarray
    weights: np.ndarray | None = None

    # -- model weight rule ---------------------------------------------
    kind: str = KIND_GENERIC
    p: float = 1.0
    q: float = 1.0

    # -- first-order proposal alias tables (None when uniform) ----------
    prop_threshold: np.ndarray | None = None
    prop_alias: np.ndarray | None = None

    # -- per-state alias tables (eager second-order layout) -------------
    tab_base: np.ndarray | None = None
    tab_threshold: np.ndarray | None = None
    tab_alias: np.ndarray | None = None
    tab_deg: np.ndarray | None = None
    tab_has: np.ndarray | None = None

    # -- M-H chain arrays (LAST_x and its cached dynamic weight) --------
    chain_last: np.ndarray | None = None
    chain_last_w: np.ndarray | None = None

    @property
    def kind_code(self) -> int:
        """Integer weight-rule code for the compiled entry points."""
        return KIND_CODES.get(self.kind, 0)

    @classmethod
    def for_graph(cls, graph, model=None) -> "KernelState":
        """Base bundle for ``graph``, stamped with ``model``'s weight spec."""
        spec = model.kernel_spec() if model is not None else {"kind": KIND_GENERIC}
        return cls(
            offsets=graph.offsets,
            targets=graph.targets,
            weights=graph.weights,
            kind=spec.get("kind", KIND_GENERIC),
            p=float(spec.get("p", 1.0)),
            q=float(spec.get("q", 1.0)),
        )


__all__ = [
    "KernelState",
    "KIND_GENERIC",
    "KIND_STATIC",
    "KIND_NODE2VEC",
    "KIND_CODES",
]
