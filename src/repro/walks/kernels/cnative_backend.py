"""Compiled C step kernels loaded through ctypes.

The container this project targets ships a system C compiler but no
numba, so the "compiled backend" the benchmarks exercise is this one: a
single small translation unit with one plain loop per kernel, compiled
at first use with ``cc -O3 -fPIC -shared`` and loaded via ctypes. The
``.so`` is cached in the system temp directory keyed by a hash of the
source + compiler, so each container pays the (sub-second) compile once.

Bitwise parity with :class:`~repro.walks.kernels.numpy_backend.NumpyKernels`
is a hard requirement (the parity suite sweeps every sampler): the loops
use the same IEEE double expressions in the same association order as
the NumPy formulas, and ``-ffast-math`` is deliberately absent.

Only models with a compiled weight rule (``static`` / ``node2vec``) are
supported; the engine falls back to the NumPy backend for anything whose
:meth:`kernel_spec` says ``generic``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
import uuid

import numpy as np

from repro.errors import ConfigError

_C_SOURCE = r"""
#include <stdint.h>

#define NO_EDGE (-1)

#ifdef __GNUC__
#define PREFETCH(addr) __builtin_prefetch(addr)
#else
#define PREFETCH(addr)
#endif

static int has_edge(const int64_t *offsets, const int64_t *targets,
                    int64_t v, int64_t u) {
    int64_t lo = offsets[v], hi = offsets[v + 1];
    if (hi - lo <= 64) {
        /* small rows: branchless linear scan vectorizes and avoids the
           binary search's data-dependent mispredictions */
        int found = 0;
        for (int64_t e = lo; e < hi; e++) found |= (targets[e] == u);
        return found;
    }
    /* lower_bound over the sorted row of v, exactly edge_index_batch */
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (targets[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo < offsets[v + 1] && targets[lo] == u;
}

/* kind codes match repro.walks.kernels.state.KIND_CODES */
static double dyn_weight(int kind, double p, double q,
                         const int64_t *offsets, const int64_t *targets,
                         const double *weights, int64_t prev, int64_t e) {
    double w = weights ? weights[e] : 1.0;
    if (kind != 2) return w; /* static */
    int64_t u = targets[e];
    double alpha;
    if (prev < 0) alpha = 1.0;
    else if (u == prev) alpha = 1.0 / p;
    else if (has_edge(offsets, targets, prev, u)) alpha = 1.0;
    else alpha = 1.0 / q;
    return w * alpha;
}

void mh_propose(int64_t n, const int64_t *offsets, const int64_t *targets,
                const double *weights, int64_t num_edges,
                int kind, double p, double q,
                const int64_t *prev, const int64_t *cur,
                const int64_t *last, const double *last_w,
                const double *u_cand, const double *u_acc,
                int64_t *out_cand, double *out_w_cand,
                double *out_w_last, uint8_t *out_accept) {
    for (int64_t i = 0; i < n; i++) {
        int64_t v = cur[i];
        int64_t lo = offsets[v], deg = offsets[v + 1] - lo;
        int64_t c = lo + (int64_t)(u_cand[i] * (double)(deg > 0 ? deg : 1));
        /* deg==0 lanes are dead (masked by the driver); clamp so the
           junk index stays in bounds where NumPy would fault instead */
        if (c >= num_edges) c = num_edges - 1;
        if (c < 0) c = 0;
        double wc = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], c);
        int64_t l = last[i] > 0 ? last[i] : 0;
        double wl = last_w[i];
        if (wl != wl) /* NaN sentinel: cache miss, evaluate the model */
            wl = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], l);
        out_cand[i] = c;
        out_w_cand[i] = wc;
        out_w_last[i] = wl;
        out_accept[i] = (wc > 0.0) && ((wl <= 0.0) || (u_acc[i] * wl < wc));
    }
}

void mh_step(int64_t n, const int64_t *offsets, const int64_t *targets,
             const double *weights, int64_t num_edges,
             int kind, double p, double q,
             const int64_t *idx, const int64_t *prev, const int64_t *cur,
             const int64_t *last, const double *last_w, const uint8_t *dead,
             const double *u_cand, const double *u_acc,
             int64_t *chain_last, double *chain_last_w,
             int64_t *out_next, int64_t *counts) {
    /* the full Algorithm 1 step over the shared chain arrays:
       propose + accept + scatter LAST_x / cached weight back through
       idx in lane order (duplicate states resolve last-writer-wins for
       the pair, exactly the NumPy fancy-index scatter). Dead lanes are
       skipped entirely; their uniforms were still drawn by the driver,
       so RNG consumption matches the reference. */
    int64_t n_ok = 0, n_acc = 0;
    for (int64_t i = 0; i < n; i++) {
        /* two-stage software pipeline against the random-row latency:
           far ahead fetch the offsets entries, near ahead the rows */
        if (i + 8 < n) {
            PREFETCH(&offsets[cur[i + 8]]);
            if (prev[i + 8] >= 0) PREFETCH(&offsets[prev[i + 8]]);
        }
        if (i + 3 < n && !dead[i + 3]) {
            int64_t nlo = offsets[cur[i + 3]];
            PREFETCH(&targets[nlo]);
            if (weights) PREFETCH(&weights[nlo]);
            if (prev[i + 3] >= 0) PREFETCH(&targets[offsets[prev[i + 3]]]);
        }
        if (dead[i]) { out_next[i] = NO_EDGE; continue; }
        int64_t v = cur[i];
        int64_t lo = offsets[v], deg = offsets[v + 1] - lo;
        int64_t c = lo + (int64_t)(u_cand[i] * (double)(deg > 0 ? deg : 1));
        if (c >= num_edges) c = num_edges - 1;
        if (c < 0) c = 0;
        double wc = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], c);
        int64_t l = last[i] > 0 ? last[i] : 0;
        double wl = last_w[i];
        if (wl != wl) /* NaN sentinel: cache miss, evaluate the model */
            wl = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], l);
        int acc = (wc > 0.0) && ((wl <= 0.0) || (u_acc[i] * wl < wc));
        int64_t nl = acc ? c : last[i];
        chain_last[idx[i]] = nl;
        chain_last_w[idx[i]] = acc ? wc : wl;
        out_next[i] = nl;
        n_ok++;
        n_acc += acc;
    }
    counts[0] = n_ok;
    counts[1] = n_acc;
}

void dyn_weights(int64_t n, const int64_t *offsets, const int64_t *targets,
                 const double *weights, int kind, double p, double q,
                 const int64_t *prev, const int64_t *offs, double *out) {
    /* bulk model-weight evaluation for the M-H initializers: same
       dyn_weight as the step kernels, over aligned (prev, offset) lanes */
    for (int64_t i = 0; i < n; i++)
        out[i] = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], offs[i]);
}

void mh_init_select(int64_t k, int64_t cap, int64_t num_nodes,
                    const int64_t *offsets,
                    const int64_t *targets, const double *weights,
                    int kind, double p, double q,
                    const int64_t *prev, const int64_t *cur, const double *u,
                    const int64_t *order, uint64_t *mark,
                    int64_t *out_c, double *out_w) {
    /* high-weight chain init: score `cap` uniform candidates per walker
       and keep the first argmax (np.argmax tie semantics). Lanes are
       visited through `order` (argsort by prev — each lane's output is
       independent, so visit order is parity-free): walkers sharing a
       prev amortize one marking pass of prev's adjacency into a
       node-indexed bitmap (num_nodes/8 bytes, L1-resident), making each
       node2vec membership test O(1). The mark/search decision weighs
       row degree against the whole group's candidate count, so hub rows
       with few walkers still use has_edge. Bits are cleared lazily when
       the marked row changes; the scratch is zeroed here. */
    int64_t marked = -1;   /* row currently in the bitmap */
    int64_t checked = -1;  /* group whose marking decision is cached */
    int use_mark_group = 0;
    if (kind == 2)
        for (int64_t n = 0; n < (num_nodes + 63) / 64; n++) mark[n] = 0;
    for (int64_t si = 0; si < k; si++) {
        int64_t i = order[si];
        /* two-stage software pipeline against the random-row latency:
           far ahead fetch the offsets entries, near ahead the rows */
        if (si + 8 < k) {
            int64_t f = order[si + 8];
            PREFETCH(&offsets[cur[f]]);
            PREFETCH(&u[f * cap]);
        }
        if (si + 3 < k) {
            int64_t nlo = offsets[cur[order[si + 3]]];
            PREFETCH(&targets[nlo]);
            if (weights) PREFETCH(&weights[nlo]);
        }
        int64_t pv = prev[i];
        int use_mark = 0;
        if (kind == 2 && pv >= 0) {
            if (pv != checked) {
                /* new group: size it (the scan is O(k) overall) and
                   decide marking vs per-candidate binary search */
                int64_t glen = 1;
                while (si + glen < k && prev[order[si + glen]] == pv) glen++;
                int64_t pdeg = offsets[pv + 1] - offsets[pv];
                checked = pv;
                use_mark_group = pdeg <= 4 * cap * glen;
                if (use_mark_group) {
                    if (marked >= 0)
                        for (int64_t e = offsets[marked]; e < offsets[marked + 1]; e++)
                            mark[targets[e] >> 6] &= ~(1ULL << (targets[e] & 63));
                    for (int64_t e = offsets[pv]; e < offsets[pv + 1]; e++)
                        mark[targets[e] >> 6] |= 1ULL << (targets[e] & 63);
                    marked = pv;
                }
            }
            use_mark = use_mark_group;
        }
        int64_t lo = offsets[cur[i]];
        int64_t deg = offsets[cur[i] + 1] - lo;
        double d = (double)(deg > 0 ? deg : 1);
        const double *row_u = u + i * cap;
        int64_t best_c = lo;
        double best_w = 0.0;
        for (int64_t j = 0; j < cap; j++) {
            int64_t c = lo + (int64_t)(row_u[j] * d);
            double w = weights ? weights[c] : 1.0;
            if (kind == 2) {
                int64_t t = targets[c];
                double alpha;
                if (pv < 0) alpha = 1.0;
                else if (t == pv) alpha = 1.0 / p;
                else if (use_mark ? ((mark[t >> 6] >> (t & 63)) & 1)
                                  : has_edge(offsets, targets, pv, t)) alpha = 1.0;
                else alpha = 1.0 / q;
                w = w * alpha;
            }
            if (j == 0 || w > best_w) { best_w = w; best_c = c; }
        }
        out_c[i] = best_c;
        out_w[i] = best_w;
    }
}

void alias_draw(int64_t n, const int64_t *offsets,
                const double *thresh, const int64_t *alias, int64_t tsize,
                const int64_t *nodes, const double *u_slot, const double *u_keep,
                int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        int64_t v = nodes[i];
        int64_t lo = offsets[v], deg = offsets[v + 1] - lo;
        int64_t k = lo + (int64_t)(u_slot[i] * (double)(deg > 0 ? deg : 1));
        if (thresh) {
            int64_t kk = k < tsize - 1 ? k : tsize - 1;
            if (!(u_keep[i] < thresh[kk])) k = alias[kk];
        }
        out[i] = deg > 0 ? k : NO_EDGE;
    }
}

void state_alias_draw(int64_t n, const int64_t *offsets,
                      const int64_t *base, const double *thresh,
                      const int64_t *alias_local, const int64_t *tab_deg,
                      const uint8_t *has, int64_t tsize,
                      const int64_t *state_idx, const int64_t *cur,
                      const double *u_slot, const double *u_keep,
                      int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        int64_t s = state_idx[i];
        if (!has[s]) { out[i] = NO_EDGE; continue; }
        int64_t deg = tab_deg[s];
        int64_t k = (int64_t)(u_slot[i] * (double)(deg > 0 ? deg : 1));
        int64_t slot = base[s] + k;
        int64_t cap = tsize - 1 > 0 ? tsize - 1 : 0;
        if (slot > cap) slot = cap;
        int64_t pos = (u_keep[i] < thresh[slot]) ? k : alias_local[slot];
        out[i] = offsets[cur[i]] + pos;
    }
}

void rejection_round(int64_t n, const int64_t *offsets, const int64_t *targets,
                     const double *weights, int kind, double p, double q,
                     const double *prop_thresh, const int64_t *prop_alias,
                     int64_t tsize,
                     const int64_t *prev, const int64_t *cur,
                     const double *u_prop, const double *u_keep,
                     const double *u_acc, double bound, int clip,
                     int64_t *out_off, uint8_t *out_accept) {
    for (int64_t i = 0; i < n; i++) {
        int64_t v = cur[i];
        int64_t lo = offsets[v], deg = offsets[v + 1] - lo;
        int64_t k = lo + (int64_t)(u_prop[i] * (double)(deg > 0 ? deg : 1));
        if (prop_thresh) {
            int64_t kk = k < tsize - 1 ? k : tsize - 1;
            if (!(u_keep[i] < prop_thresh[kk])) k = prop_alias[kk];
        }
        int64_t off = deg > 0 ? k : NO_EDGE;
        out_off[i] = off;
        int64_t e = off > 0 ? off : 0;
        double ws = weights ? weights[e] : 1.0;
        double wd = dyn_weight(kind, p, q, offsets, targets, weights, prev[i], e);
        if (clip) {
            double cl = bound * ws;
            if (wd > cl) wd = cl;
        }
        out_accept[i] = (off >= 0) && (u_acc[i] * bound * ws < wd);
    }
}
"""

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_U64P = ctypes.POINTER(ctypes.c_uint64)


def find_compiler() -> str | None:
    """System C compiler for the kernel translation unit, if any."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _compile(compiler: str) -> str:
    """Build (or reuse) the cached ``.so``; returns its path."""
    tag = hashlib.sha256((_C_SOURCE + compiler).encode()).hexdigest()[:16]
    cache_dir = tempfile.gettempdir()
    so_path = os.path.join(cache_dir, f"repro-walk-kernels-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    src_path = os.path.join(cache_dir, f"repro-walk-kernels-{tag}.c")
    tmp_so = os.path.join(cache_dir, f"repro-walk-kernels-{tag}-{uuid.uuid4().hex}.so")
    with open(src_path, "w") as fh:
        fh.write(_C_SOURCE)
    # no -ffast-math, and contraction off explicitly (-march=native could
    # otherwise fuse a*b+c into FMAs with different rounding): the
    # acceptance tests must stay IEEE-identical to NumPy
    base = [compiler, "-O3", "-ffp-contract=off", "-fPIC", "-shared",
            "-o", tmp_so, src_path]
    proc = None
    # -march=native first (vectorizes the linear membership scans);
    # retried portable where the toolchain rejects it
    for extra in (["-march=native"], []):
        cmd = base[:1] + extra + base[1:]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        except (OSError, subprocess.TimeoutExpired) as err:
            raise ConfigError(f"kernel backend 'cnative': compile failed: {err}") from err
        if proc.returncode == 0:
            break
    if proc.returncode != 0:
        raise ConfigError(
            f"kernel backend 'cnative': {compiler} exited with "
            f"{proc.returncode}: {proc.stderr.strip()[:500]}"
        )
    os.replace(tmp_so, so_path)  # atomic vs concurrent builders
    return so_path


def _load(so_path: str):
    lib = ctypes.CDLL(so_path)
    lib.mh_propose.restype = None
    lib.mh_propose.argtypes = [
        ctypes.c_int64, _I64P, _I64P, _F64P, ctypes.c_int64,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        _I64P, _I64P, _I64P, _F64P, _F64P, _F64P,
        _I64P, _F64P, _F64P, _U8P,
    ]
    lib.mh_step.restype = None
    lib.mh_step.argtypes = [
        ctypes.c_int64, _I64P, _I64P, _F64P, ctypes.c_int64,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        _I64P, _I64P, _I64P, _I64P, _F64P, _U8P, _F64P, _F64P,
        _I64P, _F64P, _I64P, _I64P,
    ]
    lib.dyn_weights.restype = None
    lib.dyn_weights.argtypes = [
        ctypes.c_int64, _I64P, _I64P, _F64P,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        _I64P, _I64P, _F64P,
    ]
    lib.mh_init_select.restype = None
    lib.mh_init_select.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64P, _I64P, _F64P,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        _I64P, _I64P, _F64P, _I64P, _U64P, _I64P, _F64P,
    ]
    lib.alias_draw.restype = None
    lib.alias_draw.argtypes = [
        ctypes.c_int64, _I64P, _F64P, _I64P, ctypes.c_int64,
        _I64P, _F64P, _F64P, _I64P,
    ]
    lib.state_alias_draw.restype = None
    lib.state_alias_draw.argtypes = [
        ctypes.c_int64, _I64P, _I64P, _F64P, _I64P, _I64P, _U8P,
        ctypes.c_int64, _I64P, _I64P, _F64P, _F64P, _I64P,
    ]
    lib.rejection_round.restype = None
    lib.rejection_round.argtypes = [
        ctypes.c_int64, _I64P, _I64P, _F64P,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        _F64P, _I64P, ctypes.c_int64,
        _I64P, _I64P, _F64P, _F64P, _F64P,
        ctypes.c_double, ctypes.c_int,
        _I64P, _U8P,
    ]
    return lib


def _i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def _ip(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def _fp(arr):
    if arr is None:
        return ctypes.cast(None, _F64P)
    return arr.ctypes.data_as(_F64P)


def _up(arr: np.ndarray):
    return arr.ctypes.data_as(_U8P)


class CNativeKernels:
    """ctypes-driven C loops for the walk hot path."""

    name = "cnative"
    compiled = True

    def __init__(self):
        self._compiler = find_compiler()
        if self._compiler is None:
            raise ConfigError(
                "kernel backend 'cnative' needs a system C compiler (cc/gcc/"
                "clang); none found on PATH — use backend='numpy' instead"
            )
        self._lib = None
        self._mark = None  # node-indexed scratch for mh_init_select

    def supports(self, spec) -> bool:
        return spec.get("kind") in ("static", "node2vec")

    def warmup(self) -> float:
        """Compile + load the shared object; returns the seconds spent."""
        if self._lib is not None:
            return 0.0
        t0 = time.perf_counter()
        self._lib = _load(_compile(self._compiler))
        return time.perf_counter() - t0

    def _ensure(self):
        if self._lib is None:
            self.warmup()
        return self._lib

    # ------------------------------------------------------------------
    def mh_propose(self, ks, prev, cur, last, last_w, u_cand, u_acc, weight_fn):
        lib = self._ensure()
        n = cur.size
        prev = _i64(prev)
        cur = _i64(cur)
        last = _i64(last)
        last_w = _f64(last_w)
        u_cand = _f64(u_cand)
        u_acc = _f64(u_acc)
        cand = np.empty(n, dtype=np.int64)
        w_cand = np.empty(n, dtype=np.float64)
        w_last = np.empty(n, dtype=np.float64)
        accept = np.empty(n, dtype=np.uint8)
        lib.mh_propose(
            n, _ip(ks.offsets), _ip(ks.targets), _fp(ks.weights),
            ks.targets.size, ks.kind_code, ks.p, ks.q,
            _ip(prev), _ip(cur), _ip(last), _fp(last_w),
            _fp(u_cand), _fp(u_acc),
            _ip(cand), _fp(w_cand), _fp(w_last), _up(accept),
        )
        return cand, w_cand, w_last, accept.view(bool)

    def mh_step(self, ks, idx, prev, cur, last, last_w, dead, u_cand, u_acc, weight_fn):
        lib = self._ensure()
        n = cur.size
        idx = _i64(idx)
        prev = _i64(prev)
        cur = _i64(cur)
        last = _i64(last)
        last_w = _f64(last_w)
        dead = np.ascontiguousarray(dead, dtype=np.uint8)
        u_cand = _f64(u_cand)
        u_acc = _f64(u_acc)
        out_next = np.empty(n, dtype=np.int64)
        counts = np.zeros(2, dtype=np.int64)
        lib.mh_step(
            n, _ip(ks.offsets), _ip(ks.targets), _fp(ks.weights),
            ks.targets.size, ks.kind_code, ks.p, ks.q,
            _ip(idx), _ip(prev), _ip(cur), _ip(last), _fp(last_w),
            _up(dead), _fp(u_cand), _fp(u_acc),
            _ip(ks.chain_last), _fp(ks.chain_last_w),
            _ip(out_next), _ip(counts),
        )
        return out_next, int(counts[0]), int(counts[1])

    def dyn_weights(self, ks, prev, offs, weight_fn):
        lib = self._ensure()
        prev = _i64(prev)
        offs = _i64(offs)
        out = np.empty(offs.size, dtype=np.float64)
        lib.dyn_weights(
            offs.size, _ip(ks.offsets), _ip(ks.targets), _fp(ks.weights),
            ks.kind_code, ks.p, ks.q, _ip(prev), _ip(offs), _fp(out),
        )
        return out

    def mh_init_select(self, ks, prev, cur, u, weight_fn):
        lib = self._ensure()
        prev = _i64(prev)
        cur = _i64(cur)
        u = _f64(u)
        k, cap = u.shape
        num_nodes = ks.offsets.size - 1
        words = (num_nodes + 63) // 64
        if self._mark is None or self._mark.size < words:
            self._mark = np.zeros(words, dtype=np.uint64)
        out_c = np.empty(k, dtype=np.int64)
        out_w = np.empty(k, dtype=np.float64)
        # lanes sorted by prev amortize membership marking across the
        # walkers sharing a row; outputs are per-lane, so the visit
        # order cannot affect results
        order = np.argsort(prev, kind="stable")
        lib.mh_init_select(
            k, cap, num_nodes, _ip(ks.offsets), _ip(ks.targets), _fp(ks.weights),
            ks.kind_code, ks.p, ks.q,
            _ip(prev), _ip(cur), _fp(u), _ip(order),
            self._mark.ctypes.data_as(_U64P),
            _ip(out_c), _fp(out_w),
        )
        return out_c, out_w

    def alias_draw(self, ks, nodes, u_slot, u_keep):
        lib = self._ensure()
        n = nodes.size
        nodes = _i64(nodes)
        u_slot = _f64(u_slot)
        out = np.empty(n, dtype=np.int64)
        if u_keep is None:
            thresh_p, alias_p, tsize, keep_p = _fp(None), _ip(out), 0, _fp(u_slot)
        else:
            u_keep = _f64(u_keep)
            thresh_p = _fp(ks.prop_threshold)
            alias_p = _ip(ks.prop_alias)
            tsize = ks.prop_threshold.size
            keep_p = _fp(u_keep)
        lib.alias_draw(
            n, _ip(ks.offsets), thresh_p, alias_p, tsize,
            _ip(nodes), _fp(u_slot), keep_p, _ip(out),
        )
        return out

    def state_alias_draw(self, ks, state_idx, cur, u_slot, u_keep):
        lib = self._ensure()
        n = state_idx.size
        state_idx = _i64(state_idx)
        cur = _i64(cur)
        u_slot = _f64(u_slot)
        u_keep = _f64(u_keep)
        has = np.ascontiguousarray(ks.tab_has, dtype=np.uint8)
        out = np.empty(n, dtype=np.int64)
        lib.state_alias_draw(
            n, _ip(ks.offsets), _ip(ks.tab_base), _fp(ks.tab_threshold),
            _ip(ks.tab_alias), _ip(ks.tab_deg), _up(has),
            ks.tab_threshold.size, _ip(state_idx), _ip(cur),
            _fp(u_slot), _fp(u_keep), _ip(out),
        )
        return out

    def rejection_round(self, ks, prev, cur, u_prop, u_keep, u_acc, bound, clip, weight_fn):
        lib = self._ensure()
        n = cur.size
        prev = _i64(prev)
        cur = _i64(cur)
        u_prop = _f64(u_prop)
        u_acc = _f64(u_acc)
        out_off = np.empty(n, dtype=np.int64)
        accept = np.empty(n, dtype=np.uint8)
        if u_keep is None:
            thresh_p, alias_p, tsize, keep_p = _fp(None), _ip(out_off), 0, _fp(u_prop)
        else:
            u_keep = _f64(u_keep)
            thresh_p = _fp(ks.prop_threshold)
            alias_p = _ip(ks.prop_alias)
            tsize = ks.prop_threshold.size
            keep_p = _fp(u_keep)
        lib.rejection_round(
            n, _ip(ks.offsets), _ip(ks.targets), _fp(ks.weights),
            ks.kind_code, ks.p, ks.q,
            thresh_p, alias_p, tsize,
            _ip(prev), _ip(cur), _fp(u_prop), keep_p, _fp(u_acc),
            float(bound), int(clip),
            _ip(out_off), _up(accept),
        )
        return out_off, accept.view(bool)


__all__ = ["CNativeKernels", "find_compiler"]
