"""Pure-NumPy step kernels — the default, always-available backend.

Each method reproduces, operation for operation, the array formulas the
steppers in :mod:`repro.walks.vectorized` inlined before the kernel
layer existed. All uniform variates are pre-drawn by the *driver* (the
stepper) in the engine's historical ``rng`` call order, so every backend
consumes the RNG identically and the compiled backends can be checked
for bitwise-identical corpora against this one.

Kernel protocol (duck-typed; all backends implement it):

``supports(spec)``
    Whether the backend can evaluate the model's
    :meth:`~repro.walks.models.base.RandomWalkModel.kernel_spec`.
    This backend supports everything — *generic* models are evaluated
    through the driver-supplied ``weight_fn`` closure
    (``weight_fn(offs, lanes=None)`` → dynamic weights, where ``lanes``
    selects a subset of the wave when not None).
``warmup()``
    Pay any one-time compilation cost now; returns the seconds spent so
    the engine can book them as ``compile_seconds`` instead of walk time.
``mh_step / mh_propose / alias_draw / state_alias_draw / rejection_round``
    The hot loops (full Algorithm 1 step over the shared chain arrays,
    its propose/accept core, first-order alias gather, per-state alias
    gather, rejection/KnightKing acceptance round).
``dyn_weights``
    Bulk model-weight evaluation over aligned ``(prev, edge offset)``
    lanes — the M-H initializers' inner product, which otherwise
    dominates first-touch cost on second-order models (one vectorized
    binary search per candidate for the node2vec α).
``mh_init_select``
    The fused high-weight initializer: draw ``cap`` candidates per
    fresh walker from a pre-drawn uniform block and return the argmax
    candidate and its weight. Compiled backends exploit that all
    candidates of one walker share ``prev`` (the node2vec membership
    test amortizes to O(1) per candidate via a marked adjacency).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import NO_EDGE


class NumpyKernels:
    """Vectorized-NumPy reference implementation of the kernel protocol."""

    name = "numpy"
    compiled = False

    def supports(self, spec) -> bool:
        return True

    def warmup(self) -> float:
        return 0.0

    # ------------------------------------------------------------------
    def mh_propose(self, ks, prev, cur, last, last_w, u_cand, u_acc, weight_fn):
        """One M-H chain step (Algorithm 1) over ``cur.size`` walkers.

        ``last_w`` is the gathered cached dynamic weight of ``last``
        (NaN where not cached); cache misses are the only lanes that
        re-evaluate the model. Returns ``(cand, w_cand, w_last, accept)``.
        """
        offsets = ks.offsets
        lo = offsets[cur]
        deg = offsets[cur + 1] - lo
        cand = lo + (u_cand * np.maximum(deg, 1)).astype(np.int64)
        w_cand = weight_fn(cand)
        w_last = last_w.astype(np.float64, copy=True)
        miss = np.isnan(w_last)
        if miss.any():
            w_last[miss] = weight_fn(np.maximum(last[miss], 0), miss)
        accept = (w_cand > 0.0) & ((w_last <= 0.0) | (u_acc * w_last < w_cand))
        return cand, w_cand, w_last, accept

    def mh_step(self, ks, idx, prev, cur, last, last_w, dead, u_cand, u_acc, weight_fn):
        """Full Algorithm 1 step: propose, accept, scatter chain state.

        The scatter goes through ``idx`` in lane order so duplicate
        states resolve last-writer-wins for the ``(LAST_x, weight)``
        pair. Returns ``(next, n_ok, n_accepted)``.
        """
        cand, w_cand, w_last, accept = self.mh_propose(
            ks, prev, cur, last, last_w, u_cand, u_acc, weight_fn
        )
        take = accept & ~dead
        new_last = np.where(take, cand, last)
        new_w = np.where(take, w_cand, w_last)
        ok = ~dead
        ks.chain_last[idx[ok]] = new_last[ok]
        ks.chain_last_w[idx[ok]] = new_w[ok]
        n_ok = int(ok.sum())
        n_acc = int((accept & ok).sum())
        return np.where(ok, new_last, NO_EDGE), n_ok, n_acc

    def dyn_weights(self, ks, prev, offs, weight_fn):
        """Model weights for aligned lanes; here simply the model itself."""
        return weight_fn(offs)

    def mh_init_select(self, ks, prev, cur, u, weight_fn):
        """High-weight chain init: best of ``cap`` uniform candidates.

        ``u`` is the pre-drawn ``(k, cap)`` uniform block; returns the
        per-walker argmax candidate offset and its weight (first-max tie
        order, exactly ``np.argmax``).
        """
        offsets = ks.offsets
        lo = offsets[cur]
        deg = offsets[cur + 1] - lo
        k, cap = u.shape
        cand = lo[:, None] + (u * np.maximum(deg, 1)[:, None]).astype(np.int64)
        w = weight_fn(cand.ravel()).reshape(k, cap)
        best = np.argmax(w, axis=1)
        rows = np.arange(k)
        return cand[rows, best], w[rows, best]

    def alias_draw(self, ks, nodes, u_slot, u_keep):
        """First-order alias gather over static tables (global offsets).

        ``u_keep`` is None for uniform (unweighted) proposals — exactly
        the one-draw-vs-two RNG consumption of
        :meth:`FirstOrderAliasStore.draw_batch`.
        """
        offsets = ks.offsets
        lo = offsets[nodes]
        deg = offsets[nodes + 1] - lo
        ok = deg > 0
        k = lo + (u_slot * np.maximum(deg, 1)).astype(np.int64)
        if u_keep is not None:
            kk = np.minimum(k, ks.prop_threshold.size - 1)
            keep = u_keep < ks.prop_threshold[kk]
            k = np.where(keep, k, ks.prop_alias[kk])
        return np.where(ok, k, NO_EDGE)

    def state_alias_draw(self, ks, state_idx, cur, u_slot, u_keep):
        """Per-state alias gather (eager second-order tables)."""
        deg = ks.tab_deg[state_idx]
        k = (u_slot * np.maximum(deg, 1)).astype(np.int64)
        slot = ks.tab_base[state_idx] + k
        slot = np.minimum(slot, max(ks.tab_threshold.size - 1, 0))
        keep = u_keep < ks.tab_threshold[slot]
        pos = np.where(keep, k, ks.tab_alias[slot])
        lo = ks.offsets[cur]
        return np.where(ks.tab_has[state_idx], lo + pos, NO_EDGE)

    def rejection_round(self, ks, prev, cur, u_prop, u_keep, u_acc, bound, clip, weight_fn):
        """One rejection round: propose from static tables, accept/reject.

        ``clip=True`` applies the KnightKing bulk clip
        ``w_dyn ← min(w_dyn, bound · w_static)`` before the acceptance
        test. Returns ``(off, accept)``; rejected lanes stay pending.
        """
        off = self.alias_draw(ks, cur, u_prop, u_keep)
        safe = np.maximum(off, 0)
        if ks.weights is None:
            w_static = np.ones(off.size, dtype=np.float64)
        else:
            w_static = np.asarray(ks.weights[safe], dtype=np.float64)
        w_dyn = weight_fn(safe)
        if clip:
            w_dyn = np.minimum(w_dyn, bound * w_static)
        accept = (off >= 0) & (u_acc * bound * w_static < w_dyn)
        return off, accept


__all__ = ["NumpyKernels"]
