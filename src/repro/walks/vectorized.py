"""Vectorized walk engine: all walkers of a wave advance in lock-step.

The paper's C++ engine parallelises Algorithm 2 by assigning walkers to 16
threads; the Python answer is data parallelism — one wave starts a walker
at every start node and each walk step is a handful of numpy passes over
the active walkers. Per-step work per sampler preserves the paper's
asymptotics:

* **M-H**: O(1) per walker (plus the model's weight evaluation, e.g.
  node2vec's O(log deg) adjacency probe) — Algorithm 1 on arrays.
* **direct**: O(deg) per walker — flatten active rows, exact segmented
  categorical draw.
* **alias**: O(1) gathers into eagerly built per-state tables (whose
  construction is the large ``Ti`` the paper reports for UniNet(Orig)).
* **rejection / KnightKing**: geometric retry loop with, respectively, a
  global or a folded bulk acceptance bound.
* **memory-aware**: alias gathers where the budget allowed a table,
  rejection sampling elsewhere.

Chains, tables and assignments persist across waves, exactly like the
paper's sampler manager. Races between same-state walkers within one wave
resolve last-writer-wins, mirroring the benign races of the threaded
original.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ReproError, SamplerError, WalkError
from repro.registry import INITIALIZER_REGISTRY, SAMPLER_REGISTRY, SamplerContext
from repro.sampling.alias import FirstOrderAliasStore, build_alias_table
from repro.sampling.base import NO_EDGE
from repro.sampling.memory_aware import assign_states_greedily
from repro.sampling.memory_model import (
    first_order_alias_bytes,
    mh_bytes,
    rejection_bytes,
    second_order_alias_bytes,
)
from repro.utils.rng import as_rng
from repro.walks._segments import concat_ranges, segment_argmax, segment_sample
from repro.walks.corpus import WalkCorpus
from repro.walks.kernels import (
    KERNEL_REGISTRY,
    KernelState,
    default_backend,
    resolve_backend,
)
from repro.walks.manager import ChainStore
from repro.walks.models import make_model


def _canonical_initializer(initializer) -> str:
    """Resolve an initializer name/instance to its canonical registry name."""
    name = getattr(initializer, "name", initializer)
    try:
        return INITIALIZER_REGISTRY.canonical(name)
    except ReproError as err:
        raise WalkError(str(err)) from None


class StepperBase:
    """Shared bookkeeping for vectorized per-step samplers.

    Third-party samplers subclass this and implement
    ``step(prev, prev_off, cur, step, rng) -> edge offsets`` (``NO_EDGE``
    for dead walkers), then register with
    :func:`repro.registry.register_sampler`; the factory is invoked as
    ``factory(graph, model, ctx)`` with a
    :class:`~repro.registry.SamplerContext`.
    """

    name = "abstract"

    def __init__(self, graph, model, kernels=None):
        self.graph = graph
        self.model = model
        #: Kernel backend driving the hot loops (``repro.walks.kernels``);
        #: the engine injects the configured one via the SamplerContext.
        self.kernels = kernels if kernels is not None else default_backend()
        self.samples = 0
        self.proposals = 0
        self.accepts = 0
        self.initializations = 0
        self.init_seconds = 0.0
        # graph-mutation counters (accrued by on_delta)
        self.rebuilt_nodes = 0
        self.rebuild_cost_bytes = 0
        self.invalidated_states = 0
        self.delta_seconds = 0.0

    # helpers ----------------------------------------------------------
    def _rows(self, cur):
        lo = self.graph.offsets[cur]
        deg = self.graph.offsets[cur + 1] - lo
        return lo, deg

    @property
    def kernel_state(self) -> KernelState:
        """Flat array bundle the step kernels consume.

        Rebuilt on access from references to the live arrays (O(1)), so
        it can never go stale across an ``on_delta`` rebuild. Subclasses
        contribute their persistent structures via
        :meth:`_extend_kernel_state`.
        """
        ks = KernelState.for_graph(self.graph, self.model)
        self._extend_kernel_state(ks)
        return ks

    def _extend_kernel_state(self, ks: KernelState) -> None:
        """Attach sampler-owned arrays (tables, chains) to ``ks``."""

    def _weight_fn(self, prev, prev_off, cur, step, sel=None):
        """Dynamic-weight closure for kernels that lack a compiled rule.

        The returned ``weight_fn(offs, lanes=None)`` evaluates the
        model's batch weights for the wave (optionally pre-restricted to
        the ``sel`` lanes, e.g. a rejection sampler's pending set);
        ``lanes`` further subsets the call — the NumPy backend uses it to
        evaluate only M-H cache-miss lanes. Weight evaluation consumes
        no RNG, so backends may call this zero or more times without
        perturbing the engine's uniform stream.
        """

        def weight_fn(offs, lanes=None):
            p, po, c, s = prev, prev_off, cur, step
            if sel is not None:
                p, po, c = p[sel], po[sel], c[sel]
                s = s[sel] if isinstance(s, np.ndarray) else s
            if lanes is not None:
                p, po, c = p[lanes], po[lanes], c[lanes]
                s = s[lanes] if isinstance(s, np.ndarray) else s
            return self.model.batch_dynamic_weight(p, po, c, s, offs)

        return weight_fn

    def _expanded_row_weights(self, prev, prev_off, cur, step, rng=None):
        """Flatten the active walkers' rows and evaluate dynamic weights."""
        lo, deg = self._rows(cur)
        flat_offs, seg = concat_ranges(lo, deg)
        if flat_offs.size == 0:
            return flat_offs, seg, deg, np.empty(0, dtype=np.float64)
        step_arr = step[seg] if isinstance(step, np.ndarray) else step
        weights = self.model.batch_dynamic_weight(
            prev[seg], prev_off[seg], cur[seg], step_arr, flat_offs
        )
        return flat_offs, seg, deg, weights

    def memory_bytes(self) -> int:
        """Resident bytes of the stepper's persistent structures."""
        return 0

    def on_delta(self, plan, model=None) -> dict:
        """Refresh persistent sampler state across an applied graph delta.

        Canonical ``on_delta(plan, model=None)`` protocol (lint rule
        RPR003). ``plan`` is a :class:`~repro.graph.delta.DeltaPlan`;
        the model must already be rebound to ``plan.new_graph`` (the
        engine's :meth:`VectorizedWalkEngine.apply_delta` guarantees the
        order). Steppers capture the model at construction, so passing
        ``model`` here simply rebinds the reference first. Returns and
        accrues the refresh cost report (``rebuilt_nodes`` /
        ``rebuild_cost_bytes`` / ``invalidated_states``) that
        :meth:`stats` exposes.
        """
        t0 = time.perf_counter()
        if model is not None:
            self.model = model
        info = self._refresh(plan)
        self.graph = plan.new_graph
        self.rebuilt_nodes += int(info.get("rebuilt_nodes", 0))
        self.rebuild_cost_bytes += int(info.get("rebuild_cost_bytes", 0))
        self.invalidated_states += int(info.get("invalidated_states", 0))
        self.delta_seconds += time.perf_counter() - t0
        return info

    def _refresh(self, plan) -> dict:
        """Subclass hook behind :meth:`on_delta`.

        The default only suits steppers with no persistent structures;
        stateful third-party steppers must override (or be rebuilt) —
        going stale silently would corrupt walks, so this raises.
        """
        if self.memory_bytes() > 0:
            raise WalkError(
                f"sampler {self.name!r} holds persistent state but implements "
                "no _refresh(plan); rebuild the engine after graph mutations"
            )
        return {"rebuilt_nodes": 0, "rebuild_cost_bytes": 0, "invalidated_states": 0}

    def stats(self) -> dict:
        """Counter snapshot (basis of the acceptance-ratio tables)."""
        return {
            "samples": self.samples,
            "proposals": self.proposals,
            "accepts": self.accepts,
            "initializations": self.initializations,
            "init_seconds": self.init_seconds,
            "acceptance_ratio": (self.samples / self.proposals) if self.proposals else 1.0,
            "rebuilt_nodes": self.rebuilt_nodes,
            "rebuild_cost_bytes": self.rebuild_cost_bytes,
            "invalidated_states": self.invalidated_states,
            "delta_seconds": self.delta_seconds,
        }


class _DirectStepper(StepperBase):
    """Exact O(deg)-per-walker sampling (vectorized direct sampler)."""

    name = "direct"

    def step(self, prev, prev_off, cur, step, rng):
        lo, deg = self._rows(cur)
        __, ___, ____, weights = self._expanded_row_weights(prev, prev_off, cur, step)
        pos = segment_sample(weights, deg, rng)
        self.proposals += cur.size
        out = np.where(pos >= 0, lo + pos, NO_EDGE)
        self.samples += int((out != NO_EDGE).sum())
        return out


class _FirstOrderAliasStepper(StepperBase):
    """Per-node static alias tables — exact only for static models."""

    name = "alias-first-order"

    def __init__(self, graph, model, budget=None, kernels=None):
        super().__init__(graph, model, kernels)
        if not model.is_static:
            raise WalkError(
                f"first-order alias sampling is exact only for static models; "
                f"{model.name} has state-dependent weights (use sampler='alias')"
            )
        if budget is not None:
            budget.charge(first_order_alias_bytes(graph), self.name)
        self.store = FirstOrderAliasStore(graph)

    def _extend_kernel_state(self, ks: KernelState) -> None:
        ks.prop_threshold = self.store.threshold
        ks.prop_alias = self.store.alias

    def step(self, prev, prev_off, cur, step, rng):
        # one uniform for the slot, a second only when tables exist —
        # the exact RNG consumption of FirstOrderAliasStore.draw_batch
        u_slot = rng.random(cur.size)
        u_keep = None if self.store.uniform else rng.random(cur.size)
        out = self.kernels.alias_draw(self.kernel_state, cur, u_slot, u_keep)
        self.proposals += cur.size
        self.samples += int((out != NO_EDGE).sum())
        return out

    def _refresh(self, plan) -> dict:
        return self.store.on_delta(plan)

    def memory_bytes(self) -> int:
        return self.store.memory_bytes()


class EagerStateAliasTables:
    """Flat per-state alias tables over dynamic weights.

    One table per (valid, optionally masked) state, stored back-to-back:
    ``base[idx]`` points at state idx's slots, each slot holding a
    threshold and a *local* alias position. Construction walks every
    state once (the realistic preprocessing cost of alias-based second-
    order sampling); draws are two gathers.
    """

    def __init__(self, graph, model, state_mask=None):
        self.graph = graph
        self._layout(model, state_mask)
        self._build_states(model, np.flatnonzero(self._valid))
        self._contexts = None  # transient build scaffolding, not a table

    def _layout(self, model, state_mask) -> None:
        """Size the flat slot arrays for the current graph."""
        contexts = model.enumerate_state_contexts(self.graph)
        table_deg = model.state_table_degrees(self.graph).astype(np.int64).copy()
        valid = contexts["valid"].copy()
        if state_mask is not None:
            valid &= state_mask
        table_deg[~valid] = 0
        self._contexts = contexts
        self._valid = valid
        self.table_deg = table_deg
        self.base = np.concatenate(([0], np.cumsum(table_deg)))
        total = int(self.base[-1])
        self.threshold = np.ones(total, dtype=np.float64)
        self.alias_local = np.zeros(total, dtype=np.int64)
        self.has_table = np.zeros(valid.size, dtype=bool)

    def _build_states(self, model, build_idx: np.ndarray) -> int:
        """Vose-construct the tables of the given states; returns count."""
        if build_idx.size == 0:
            return 0
        contexts = self._contexts
        cur = contexts["cur"][build_idx]
        row_lo = self.graph.offsets[cur]
        deg = self.table_deg[build_idx]
        flat_offs, seg = concat_ranges(row_lo, deg)
        weights = model.batch_dynamic_weight(
            contexts["prev"][build_idx][seg],
            contexts["prev_off"][build_idx][seg],
            cur[seg],
            contexts["step"][build_idx][seg],
            flat_offs,
        )
        built = 0
        cursor = 0
        for j, idx in enumerate(build_idx):
            d = int(deg[j])
            row_w = weights[cursor : cursor + d]
            cursor += d
            if float(row_w.sum()) <= 0.0:
                continue
            t, a = build_alias_table(row_w)
            b = int(self.base[idx])
            self.threshold[b : b + d] = t
            self.alias_local[b : b + d] = a
            self.has_table[idx] = True
            built += 1
        return built

    def on_delta(self, plan, model=None, *, state_mask=None) -> dict:
        """Re-layout for a mutated graph, rebuilding only affected states.

        A state is affected when the delta touched the out-row it draws
        from or (for second-order models) its predecessor's row; every
        other surviving state's table is byte-copied into the new layout
        (``alias_local`` is row-local, so copied tables need no
        rebasing). ``model`` must already be rebound to the new graph;
        unlike stateless steppers this structure cannot refresh without
        one, so omitting it raises.
        """
        if model is None:
            raise SamplerError(
                "EagerStateAliasTables.on_delta needs the rebound model to "
                "rebuild affected per-state tables"
            )
        old_graph = self.graph
        old_base, old_thresh = self.base, self.threshold
        old_alias, old_has, old_deg = self.alias_local, self.has_table, self.table_deg
        order = getattr(model, "order", 1)
        self.graph = plan.new_graph
        self._layout(model, state_mask)

        # old flat index of each new state (-1 for states with no ancestor)
        if order == 1:
            per = max(self._valid.size // max(plan.new_graph.num_nodes, 1), 1)
            idx = np.arange(self._valid.size, dtype=np.int64)
            old_of_new = np.where(idx // per < plan.old_graph.num_nodes, idx, -1)
            old_of_new[old_of_new >= old_has.size] = -1
        else:
            remap = plan.edge_remap()
            old_of_new = np.full(self._valid.size, -1, dtype=np.int64)
            kept = remap >= 0
            old_of_new[remap[kept]] = np.flatnonzero(kept)

        touched = plan.touched_nodes()
        tmask = np.zeros(plan.new_graph.num_nodes, dtype=bool)
        tmask[touched[touched < plan.new_graph.num_nodes]] = True
        cur = self._contexts["cur"]
        affected = tmask[cur]
        if order == 2:
            prev = self._contexts["prev"]
            affected |= (prev >= 0) & tmask[np.maximum(prev, 0)]

        cand = np.flatnonzero((old_of_new >= 0) & ~affected & self._valid)
        old_pos = old_of_new[cand]
        same = old_deg[old_pos] == self.table_deg[cand]
        new_pos, old_pos = cand[same], old_pos[same]
        copy_mask = np.zeros(self._valid.size, dtype=bool)
        copy_mask[new_pos] = True
        if new_pos.size:
            deg = self.table_deg[new_pos]
            flat_new, seg = concat_ranges(self.base[new_pos], deg)
            flat_old = old_base[old_pos][seg] + (flat_new - self.base[new_pos][seg])
            self.threshold[flat_new] = old_thresh[flat_old]
            self.alias_local[flat_new] = old_alias[flat_old]
            self.has_table[new_pos] = old_has[old_pos]
        rebuild_idx = np.flatnonzero(self._valid & ~copy_mask)
        built = self._build_states(model, rebuild_idx)
        copied = int(old_has[old_pos].sum()) if new_pos.size else 0
        info = {
            "rebuilt_nodes": int(np.unique(cur[rebuild_idx]).size),
            "rebuild_cost_bytes": int(16 * self.table_deg[rebuild_idx].sum()),
            "invalidated_states": int(old_has.sum()) - copied,
            "rebuilt_states": built,
        }
        self._contexts = None
        return info

    @property
    def num_tables(self) -> int:
        """Number of materialised tables."""
        return int(self.has_table.sum())

    def draw(self, state_idx, cur, rng):
        """Draw edge offsets for walkers; NO_EDGE where no table exists."""
        deg = self.table_deg[state_idx]
        k = (rng.random(state_idx.size) * np.maximum(deg, 1)).astype(np.int64)
        slot = self.base[state_idx] + k
        slot = np.minimum(slot, max(self.threshold.size - 1, 0))
        keep = rng.random(state_idx.size) < self.threshold[slot]
        pos = np.where(keep, k, self.alias_local[slot])
        lo = self.graph.offsets[cur]
        return np.where(self.has_table[state_idx], lo + pos, NO_EDGE)

    def memory_bytes(self) -> int:
        """Resident table bytes (the alias explosion of Table VII)."""
        return self.threshold.nbytes + self.alias_local.nbytes


class _StateAliasStepper(StepperBase):
    """Eager per-state alias tables (UniNet(Orig) for node2vec)."""

    name = "alias"

    def __init__(self, graph, model, budget=None, kernels=None):
        super().__init__(graph, model, kernels)
        if budget is not None:
            budget.charge(second_order_alias_bytes(graph, model), self.name)
        self.tables = EagerStateAliasTables(graph, model)
        self.initializations += self.tables.num_tables

    def _extend_kernel_state(self, ks: KernelState) -> None:
        tables = self.tables
        ks.tab_base = tables.base
        ks.tab_threshold = tables.threshold
        ks.tab_alias = tables.alias_local
        ks.tab_deg = tables.table_deg
        ks.tab_has = tables.has_table

    def step(self, prev, prev_off, cur, step, rng):
        idx = self.model.batch_state_index(prev_off, cur, step)
        # two uniforms per walker — the RNG consumption of tables.draw
        u_slot = rng.random(cur.size)
        u_keep = rng.random(cur.size)
        out = self.kernels.state_alias_draw(self.kernel_state, idx, cur, u_slot, u_keep)
        self.proposals += cur.size
        self.samples += int((out != NO_EDGE).sum())
        return out

    def _refresh(self, plan) -> dict:
        info = self.tables.on_delta(plan, self.model)
        self.initializations += int(info.get("rebuilt_states", 0))
        return info

    def memory_bytes(self) -> int:
        return self.tables.memory_bytes()


class _MemoryAwareStepper(StepperBase):
    """Static greedy alias assignment under a budget; rejection elsewhere.

    The SIGMOD'20 framework assigns *sampling methods* per state within
    the budget: O(1) alias tables for the states that fit, and a
    memory-free method for the rest. The fallback must not be O(deg) —
    walkers concentrate on hubs (stationary mass ∝ degree), so a direct
    fallback would expand millions of row entries per step on skewed
    graphs. Rejection over the static-weight proposal keeps the fallback
    O(1/θ) per walker, which is what lets the memory-aware sampler
    finish (if slowly) on the billion-edge networks of Table VII.
    """

    name = "memory-aware"

    def __init__(
        self,
        graph,
        model,
        table_budget_bytes,
        *,
        max_rounds: int = 10_000,
        budget=None,
        kernels=None,
    ):
        super().__init__(graph, model, kernels)
        if budget is not None:
            budget.charge(int(table_budget_bytes), self.name)
        self.table_budget_bytes = int(table_budget_bytes)
        self.assigned = assign_states_greedily(graph, model, table_budget_bytes)
        self.tables = EagerStateAliasTables(graph, model, state_mask=self.assigned)
        self.initializations += self.tables.num_tables
        self.proposal = FirstOrderAliasStore(graph)
        self.max_rounds = max_rounds

    def _extend_kernel_state(self, ks: KernelState) -> None:
        tables = self.tables
        ks.tab_base = tables.base
        ks.tab_threshold = tables.threshold
        ks.tab_alias = tables.alias_local
        ks.tab_deg = tables.table_deg
        ks.tab_has = tables.has_table
        ks.prop_threshold = self.proposal.threshold
        ks.prop_alias = self.proposal.alias

    def _refresh(self, plan) -> dict:
        # the greedy assignment is a global function of the degree
        # distribution, so mutation triggers a full reassign + rebuild —
        # the honest per-update price of this baseline
        dropped = self.tables.num_tables
        self.assigned = assign_states_greedily(
            plan.new_graph, self.model, self.table_budget_bytes
        )
        self.tables = EagerStateAliasTables(
            plan.new_graph, self.model, state_mask=self.assigned
        )
        self.initializations += self.tables.num_tables
        self.proposal = FirstOrderAliasStore(plan.new_graph)
        return {
            "rebuilt_nodes": plan.new_graph.num_nodes,
            "rebuild_cost_bytes": self.tables.memory_bytes() + self.proposal.memory_bytes(),
            "invalidated_states": dropped,
        }

    def step(self, prev, prev_off, cur, step, rng):
        idx = self.model.batch_state_index(prev_off, cur, step)
        ks = self.kernel_state
        u_slot = rng.random(cur.size)
        u_keep = rng.random(cur.size)
        out = self.kernels.state_alias_draw(ks, idx, cur, u_slot, u_keep)
        self.proposals += cur.size
        # everything without a table (unassigned or zero-weight state)
        # falls back to rejection sampling
        pending = np.flatnonzero(~self.tables.has_table[idx])
        if pending.size:
            out[pending] = NO_EDGE
            bound = self.model.alpha_bound(self.graph)
            deg = self.graph.offsets[cur + 1] - self.graph.offsets[cur]
            pending = pending[deg[pending] > 0]
            for __ in range(self.max_rounds):
                if pending.size == 0:
                    break
                u_prop = rng.random(pending.size)
                u_keep2 = None if self.proposal.uniform else rng.random(pending.size)
                u_acc = rng.random(pending.size)
                off, accept = self.kernels.rejection_round(
                    ks,
                    prev[pending],
                    cur[pending],
                    u_prop,
                    u_keep2,
                    u_acc,
                    bound,
                    False,
                    self._weight_fn(prev, prev_off, cur, step, sel=pending),
                )
                out[pending[accept]] = off[accept]
                pending = pending[~accept]
        self.samples += int((out != NO_EDGE).sum())
        return out

    def memory_bytes(self) -> int:
        return self.tables.memory_bytes() + self.proposal.memory_bytes()


class _RejectionStepper(StepperBase):
    """Vectorized rejection sampling, optionally with outlier folding."""

    def __init__(
        self, graph, model, *, fold: bool, max_rounds: int = 10_000, budget=None, kernels=None
    ):
        super().__init__(graph, model, kernels)
        self.name = "knightking" if fold else "rejection"
        if budget is not None:
            budget.charge(rejection_bytes(graph), self.name)
        self.proposal = FirstOrderAliasStore(graph)
        self.max_rounds = max_rounds
        self.fold = (
            fold
            and getattr(model, "supports_folding", False)
            and hasattr(model, "batch_outlier_excess")
        )
        self.row_totals = graph.weight_row_sums() if self.fold else None

    def _extend_kernel_state(self, ks: KernelState) -> None:
        ks.prop_threshold = self.proposal.threshold
        ks.prop_alias = self.proposal.alias

    def step(self, prev, prev_off, cur, step, rng):
        out = np.full(cur.size, NO_EDGE, dtype=np.int64)
        __, deg = self._rows(cur)
        pending = np.flatnonzero(deg > 0)
        if pending.size == 0:
            return out
        if self.fold:
            self._step_folded(out, pending, prev, prev_off, cur, step, rng)
        else:
            self._step_plain(out, pending, prev, prev_off, cur, step, rng)
        self.samples += int((out != NO_EDGE).sum())
        return out

    def _step_plain(self, out, pending, prev, prev_off, cur, step, rng):
        bound = self.model.alpha_bound(self.graph)
        ks = self.kernel_state
        for __ in range(self.max_rounds):
            if pending.size == 0:
                return
            self.proposals += pending.size
            u_prop = rng.random(pending.size)
            u_keep = None if self.proposal.uniform else rng.random(pending.size)
            u_acc = rng.random(pending.size)
            off, accept = self.kernels.rejection_round(
                ks,
                prev[pending],
                cur[pending],
                u_prop,
                u_keep,
                u_acc,
                bound,
                False,
                self._weight_fn(prev, prev_off, cur, step, sel=pending),
            )
            out[pending[accept]] = off[accept]
            pending = pending[~accept]

    def _step_folded(self, out, pending, prev, prev_off, cur, step, rng):
        bulk = self.model.bulk_bound
        ks = self.kernel_state
        rev, excess = self.model.batch_outlier_excess(prev, cur)
        envelope = bulk * self.row_totals[cur]
        total = excess + envelope
        alive = total[pending] > 0
        pending = pending[alive]
        for __ in range(self.max_rounds):
            if pending.size == 0:
                return
            self.proposals += pending.size
            # outlier-vs-bulk split stays in the driver: it is one draw
            # against model-specific excess mass, not a hot loop
            r = rng.random(pending.size) * total[pending]
            hit_outlier = r < excess[pending]
            chosen_out = pending[hit_outlier]
            out[chosen_out] = rev[chosen_out]  # exact excess-mass branch
            bulk_pending = pending[~hit_outlier]
            if bulk_pending.size == 0:
                pending = bulk_pending
                continue
            u_prop = rng.random(bulk_pending.size)
            u_keep = None if self.proposal.uniform else rng.random(bulk_pending.size)
            u_acc = rng.random(bulk_pending.size)
            off, accept = self.kernels.rejection_round(
                ks,
                prev[bulk_pending],
                cur[bulk_pending],
                u_prop,
                u_keep,
                u_acc,
                bulk,
                True,
                self._weight_fn(prev, prev_off, cur, step, sel=bulk_pending),
            )
            out[bulk_pending[accept]] = off[accept]
            pending = bulk_pending[~accept]

    def _refresh(self, plan) -> dict:
        info = self.proposal.on_delta(plan)
        if self.fold:
            # row weight sums change only for touched rows
            new_graph = plan.new_graph
            totals = np.zeros(new_graph.num_nodes, dtype=np.float64)
            shared = min(totals.size, self.row_totals.size)
            totals[:shared] = self.row_totals[:shared]
            stale = np.union1d(
                plan.touched_nodes(),
                np.arange(plan.old_graph.num_nodes, new_graph.num_nodes),
            )
            for v in stale:
                if v >= new_graph.num_nodes:
                    continue
                lo, hi = new_graph.edge_range(int(v))
                totals[v] = (
                    float(np.asarray(new_graph.edge_weight_at(np.arange(lo, hi))).sum())
                    if hi > lo
                    else 0.0
                )
            self.row_totals = totals
        return info

    def memory_bytes(self) -> int:
        return self.proposal.memory_bytes()


class _MHStepper(StepperBase):
    """Algorithm 1 on arrays — the paper's M-H edge sampler, vectorized."""

    name = "mh"

    def __init__(
        self,
        graph,
        model,
        *,
        initializer: str = "high-weight",
        init_sample_cap: int | None = 16,
        burn_in_iterations: int = 100,
        chain_store: ChainStore | None = None,
        budget=None,
        kernels=None,
    ):
        super().__init__(graph, model, kernels)
        if not isinstance(initializer, str) and hasattr(initializer, "initialize"):
            # a bound initializer instance: use its scalar protocol directly
            self.strategy = getattr(initializer, "name", "custom")
            self.custom_initializer = initializer
        else:
            self.strategy = _canonical_initializer(initializer)
            if self.strategy in ("random", "high-weight", "burn-in"):
                # built-ins have dedicated vectorized kernels below
                self.custom_initializer = None
            else:
                from repro.sampling.initialization import make_initializer

                self.custom_initializer = make_initializer(self.strategy)
        self.init_sample_cap = init_sample_cap
        self.burn_in_iterations = burn_in_iterations
        if chain_store is None:
            if budget is not None:
                budget.charge(mh_bytes(graph, model), self.name)
            chain_store = ChainStore(graph, model)
        self.chains = chain_store

    def _extend_kernel_state(self, ks: KernelState) -> None:
        ks.chain_last = self.chains.last
        ks.chain_last_w = self.chains.last_w

    # ------------------------------------------------------------------
    def step(self, prev, prev_off, cur, step, rng):
        __, deg = self._rows(cur)
        alive = deg > 0
        idx = self.model.batch_state_index(prev_off, cur, step)
        last = self.chains.last[idx].copy()
        last_w = self.chains.last_w[idx].copy()

        uninit = (last == NO_EDGE) & alive
        if uninit.any():
            t0 = time.perf_counter()
            init_vals = self._initialize(
                prev[uninit], prev_off[uninit], cur[uninit], step, rng
            )
            last[uninit] = init_vals
            last_w[uninit] = np.nan  # fresh chains have no cached weight
            self.initializations += int(uninit.sum())
            self.init_seconds += time.perf_counter() - t0

        dead = ~alive | (last == NO_EDGE)
        k = cur.size
        # Algorithm 1: uniform candidate, acceptance min(1, w'_cand/w'_last).
        # Both uniforms are pre-drawn (weight evaluation consumes no RNG),
        # so every kernel backend sees the identical stream. The kernel
        # fuses propose + accept + the LAST_x/weight scatter back into the
        # shared chain arrays (lane order, so duplicate-state races
        # resolve last-writer-wins for the *pair* on every backend).
        u_cand = rng.random(k)
        u_acc = rng.random(k)
        nxt, n_ok, n_acc = self.kernels.mh_step(
            self.kernel_state,
            idx,
            prev,
            cur,
            last,
            last_w,
            dead,
            u_cand,
            u_acc,
            self._weight_fn(prev, prev_off, cur, step),
        )
        self.proposals += n_ok
        self.accepts += n_acc
        self.samples += n_ok
        return nxt

    # ------------------------------------------------------------------
    def _batch_weights(self, prev0, prev_off0, cur0, step, offs):
        """Model weight of aligned candidate lanes, through the kernels.

        A compiled backend evaluates its weight rule in one pass (the
        initializers' inner product — on second-order models each
        candidate costs a binary search); the NumPy backend defers to
        ``model.batch_dynamic_weight`` via the ``weight_fn`` closure.
        """
        return self.kernels.dyn_weights(
            self.kernel_state, prev0, offs,
            self._weight_fn(prev0, prev_off0, cur0, step),
        )

    def _initialize(self, prev0, prev_off0, cur0, step, rng):
        if self.custom_initializer is not None:
            return self._init_custom(prev0, prev_off0, cur0, step, rng)
        if self.strategy == "random":
            return self._init_random(prev0, prev_off0, cur0, step, rng)
        if self.strategy == "high-weight":
            return self._init_high_weight(prev0, prev_off0, cur0, step, rng)
        return self._init_burn_in(prev0, prev_off0, cur0, step, rng)

    def _init_custom(self, prev0, prev_off0, cur0, step, rng):
        """Registered third-party strategies run their scalar protocol.

        One ``initialize(graph, model, state, rng)`` call per fresh
        chain — slower than the vectorized built-ins but each state is
        initialised only once, so the cost is O(#state) overall.
        """
        from repro.walks.state import WalkerState

        out = np.empty(cur0.size, dtype=np.int64)
        for i in range(cur0.size):
            state = WalkerState(
                current=int(cur0[i]),
                previous=int(prev0[i]),
                prev_edge_offset=int(prev_off0[i]),
                step=int(step[i]) if isinstance(step, np.ndarray) else int(step),
            )
            out[i] = self.custom_initializer.initialize(self.graph, self.model, state, rng)
        return out

    def _init_random(self, prev0, prev_off0, cur0, step, rng):
        lo, deg = self._rows(cur0)
        cand = lo + (rng.random(cur0.size) * np.maximum(deg, 1)).astype(np.int64)
        w = self._batch_weights(prev0, prev_off0, cur0, step, cand)
        bad = w <= 0.0
        if bad.any():
            cand[bad] = self._support_uniform(
                prev0[bad], prev_off0[bad], cur0[bad], step, rng
            )
        return cand

    def _init_high_weight(self, prev0, prev_off0, cur0, step, rng):
        cap = self.init_sample_cap
        if cap is None:
            return self._exact_argmax(prev0, prev_off0, cur0, step)
        k = cur0.size
        u = rng.random((k, cap))

        def flat_weight_fn(offs, lanes=None):
            # only the NumPy backend calls this; the repeats stay lazy so
            # compiled backends (which read prev0 directly) skip them
            step_arr = np.repeat(step, cap) if isinstance(step, np.ndarray) else step
            wf = self._weight_fn(
                np.repeat(prev0, cap), np.repeat(prev_off0, cap),
                np.repeat(cur0, cap), step_arr,
            )
            return wf(offs, lanes)

        result, w_best = self.kernels.mh_init_select(
            self.kernel_state, prev0, cur0, u, flat_weight_fn
        )
        bad = w_best <= 0.0
        if bad.any():
            # subsample may have missed the support entirely; fall back to
            # the exact row argmax for those few states
            result[bad] = self._exact_argmax(prev0[bad], prev_off0[bad], cur0[bad], step)
        return result

    def _init_burn_in(self, prev0, prev_off0, cur0, step, rng):
        lo, deg = self._rows(cur0)
        last = self._init_random(prev0, prev_off0, cur0, step, rng)
        w_last = self._batch_weights(
            prev0, prev_off0, cur0, step, np.maximum(last, 0)
        )
        k = cur0.size
        for __ in range(self.burn_in_iterations):
            cand = lo + (rng.random(k) * np.maximum(deg, 1)).astype(np.int64)
            w_cand = self._batch_weights(prev0, prev_off0, cur0, step, cand)
            accept = (w_cand > 0.0) & ((w_last <= 0.0) | (rng.random(k) * w_last < w_cand))
            last = np.where(accept & (last != NO_EDGE), cand, last)
            w_last = np.where(accept, w_cand, w_last)
        return last

    def _support_uniform(self, prev0, prev_off0, cur0, step, rng):
        """Uniform draw over the positive-weight entries of each row."""
        __, ___, deg, weights = self._expanded_row_weights(prev0, prev_off0, cur0, step)
        lo = self.graph.offsets[cur0]
        pos = segment_sample((weights > 0.0).astype(np.float64), deg, rng)
        return np.where(pos >= 0, lo + pos, NO_EDGE)

    def _exact_argmax(self, prev0, prev_off0, cur0, step):
        __, ___, deg, weights = self._expanded_row_weights(prev0, prev_off0, cur0, step)
        lo = self.graph.offsets[cur0]
        pos = segment_argmax(weights, deg)
        good = np.zeros(cur0.size, dtype=bool)
        nonempty = pos >= 0
        flat_best = (lo + np.maximum(pos, 0)).astype(np.int64)
        if weights.size:
            step_arr = step if not isinstance(step, np.ndarray) else step
            best_w = self.model.batch_dynamic_weight(
                prev0, prev_off0, cur0, step_arr, np.maximum(flat_best, 0)
            )
            good = nonempty & (best_w > 0.0)
        return np.where(good, flat_best, NO_EDGE)

    def _refresh(self, plan) -> dict:
        # no tables: the whole refresh is one vectorized remap of LAST_x
        return self.chains.on_delta(plan, self.model)

    def memory_bytes(self) -> int:
        return self.chains.memory_bytes()


def _mh_stepper_factory(graph, model, ctx):
    return _MHStepper(
        graph,
        model,
        initializer=ctx.initializer,
        init_sample_cap=ctx.init_sample_cap,
        burn_in_iterations=ctx.burn_in_iterations,
        chain_store=ctx.chain_store,
        budget=ctx.budget,
        kernels=ctx.kernels,
    )


def _alias_stepper_factory(graph, model, ctx):
    # static models collapse the per-state tables to one table per node
    if model.is_static:
        return _FirstOrderAliasStepper(graph, model, budget=ctx.budget, kernels=ctx.kernels)
    return _StateAliasStepper(graph, model, budget=ctx.budget, kernels=ctx.kernels)


def _memory_aware_stepper_factory(graph, model, ctx):
    if ctx.table_budget_bytes is None:
        raise WalkError("memory-aware sampling needs table_budget_bytes")
    return _MemoryAwareStepper(
        graph,
        model,
        ctx.table_budget_bytes,
        max_rounds=ctx.max_reject_rounds,
        budget=ctx.budget,
        kernels=ctx.kernels,
    )


SAMPLER_REGISTRY.register(
    "mh",
    _mh_stepper_factory,
    aliases=("metropolis-hastings",),
    second_order=True,
    uses_initializer=True,
    time_per_sample="O(1)",
    memory="O(#state)",
)
SAMPLER_REGISTRY.register(
    "direct",
    lambda graph, model, ctx: _DirectStepper(graph, model),
    second_order=True,
    time_per_sample="O(d)",
    memory="O(1)",
)
SAMPLER_REGISTRY.register(
    "alias",
    _alias_stepper_factory,
    second_order=True,
    time_per_sample="O(1)",
    memory="O(d * #state)",
)
SAMPLER_REGISTRY.register(
    "alias-first-order",
    lambda graph, model, ctx: _FirstOrderAliasStepper(
        graph, model, budget=ctx.budget, kernels=ctx.kernels
    ),
    second_order=False,
    time_per_sample="O(1)",
    memory="O(|E|)",
)
SAMPLER_REGISTRY.register(
    "rejection",
    lambda graph, model, ctx: _RejectionStepper(
        graph,
        model,
        fold=False,
        max_rounds=ctx.max_reject_rounds,
        budget=ctx.budget,
        kernels=ctx.kernels,
    ),
    second_order=True,
    time_per_sample="O(1/theta)",
    memory="O(|E|)",
)
SAMPLER_REGISTRY.register(
    "knightking",
    lambda graph, model, ctx: _RejectionStepper(
        graph,
        model,
        fold=True,
        max_rounds=ctx.max_reject_rounds,
        budget=ctx.budget,
        kernels=ctx.kernels,
    ),
    second_order=True,
    time_per_sample="O(1/theta')",
    memory="O(|E|)",
)
SAMPLER_REGISTRY.register(
    "memory-aware",
    _memory_aware_stepper_factory,
    second_order=True,
    needs_table_budget=True,
    time_per_sample="mixed",
    memory="<= budget",
)


def _build_stepper(name, graph, model, ctx: SamplerContext):
    """Resolve a sampler name through the registry and build its stepper.

    Unknown names raise :class:`~repro.errors.WalkError` listing the
    registered samplers with near-miss suggestions.
    """
    factory = SAMPLER_REGISTRY.get(name)
    return factory(graph, model, ctx)


class VectorizedWalkEngine:
    """Lock-step walk generation for any model × sampler combination.

    Parameters
    ----------
    graph:
        CSR network.
    model:
        Bound model instance or registry name (``model_params`` forwarded:
        ``p``, ``q``, ``metapath``, ...).
    sampler:
        Any name in :data:`repro.registry.SAMPLER_REGISTRY`: ``"mh"``
        (default), ``"direct"``, ``"alias"``, ``"alias-first-order"``,
        ``"rejection"``, ``"knightking"``, ``"memory-aware"``, or a
        third-party sampler registered with
        :func:`repro.registry.register_sampler`.
    initializer:
        M-H chain initialization, resolved through
        :data:`repro.registry.INITIALIZER_REGISTRY`: ``"random"``,
        ``"high-weight"`` (default) or ``"burn-in"``.
    budget:
        Optional :class:`~repro.sampling.memory_model.MemoryBudget`; the
        sampler's footprint is charged at construction (simulated OOM).
    backend:
        Kernel backend driving the step hot loops, resolved through
        :data:`repro.registry.KERNEL_REGISTRY`: ``"numpy"`` (default,
        always available), ``"numba"`` or ``"cnative"``. Requesting a
        backend whose dependency is missing raises
        :class:`~repro.errors.ConfigError`; a compiled backend that
        cannot evaluate the model's weight rule (a *generic*
        ``kernel_spec``) silently falls back to NumPy — ``stats()``
        reports both ``requested_backend`` and the effective ``backend``.

    The constructor performs all sampler preprocessing; its duration is
    exposed as :attr:`setup_seconds` and lazily accrued M-H
    initialization time as ``stats()["init_seconds"]`` — together they
    form the paper's ``Ti``. One-time kernel compilation is booked
    separately as :attr:`compile_seconds` (also inside
    ``setup_seconds``), so walks/sec comparisons can exclude warm-up.
    """

    def __init__(
        self,
        graph,
        model,
        sampler="mh",
        *,
        initializer="high-weight",
        init_sample_cap: int | None = 16,
        burn_in_iterations: int = 100,
        table_budget_bytes=None,
        chain_store=None,
        max_reject_rounds: int = 10_000,
        budget=None,
        backend: str = "numpy",
        seed=None,
        **model_params,
    ):
        self.graph = graph
        self.model = make_model(model, graph, **model_params)
        start = time.perf_counter()
        self.requested_backend = KERNEL_REGISTRY.canonical(backend)
        kernels = resolve_backend(self.requested_backend)
        if not kernels.supports(self.model.kernel_spec()):
            # generic weight rule: only the NumPy backend can evaluate it
            kernels = resolve_backend("numpy")
        self.kernels = kernels
        self.backend = kernels.name
        self.compile_seconds = float(kernels.warmup())
        ctx = SamplerContext(
            initializer=initializer,
            init_sample_cap=init_sample_cap,
            burn_in_iterations=burn_in_iterations,
            table_budget_bytes=table_budget_bytes,
            chain_store=chain_store,
            max_reject_rounds=max_reject_rounds,
            budget=budget,
            kernels=kernels,
        )
        self.stepper = _build_stepper(sampler, graph, self.model, ctx)
        self.setup_seconds = time.perf_counter() - start
        self.rng = as_rng(seed)

    # ------------------------------------------------------------------
    def generate(self, num_walks: int = 10, walk_length: int = 80, start_nodes=None) -> WalkCorpus:
        """Run ``num_walks`` waves of walks with ``walk_length`` nodes each.

        Every valid start node launches one walker per wave (Algorithm
        2's outer loops). Walks may end early at dead ends; the corpus
        records actual lengths.
        """
        if num_walks < 1 or walk_length < 1:
            raise WalkError("num_walks and walk_length must be >= 1")
        if start_nodes is None:
            starts = self.model.valid_start_nodes()
        else:
            starts = np.asarray(start_nodes, dtype=np.int64)
        if starts.size == 0:
            raise WalkError("no valid start nodes for this model/graph")
        walks = np.full((num_walks * starts.size, walk_length), -1, dtype=np.int64)
        lengths = np.empty(num_walks * starts.size, dtype=np.int64)
        for wave in range(num_walks):
            base = wave * starts.size
            lengths[base : base + starts.size] = self._run_wave(
                starts, walk_length, walks, base
            )
        return WalkCorpus(walks, lengths)

    def generate_stream(
        self,
        num_walks: int = 10,
        walk_length: int = 80,
        start_nodes=None,
        *,
        shard_walks: int | None = None,
    ):
        """Yield the walk corpus as a stream of bounded shards.

        Same walk semantics as :meth:`generate`, but instead of one
        monolithic matrix the walks arrive as :class:`WalkCorpus` shards
        of at most ``shard_walks`` rows (default: one full wave per
        shard), so a consumer can train on each shard while only
        O(shard) corpus bytes are resident. With ``shard_walks=None``
        the shard boundaries fall on wave boundaries and the RNG
        consumption is identical to :meth:`generate` — merging the
        stream reproduces the monolithic corpus exactly.
        """
        if num_walks < 1 or walk_length < 1:
            raise WalkError("num_walks and walk_length must be >= 1")
        if shard_walks is not None and shard_walks < 1:
            raise WalkError("shard_walks must be >= 1")
        if start_nodes is None:
            starts = self.model.valid_start_nodes()
        else:
            starts = np.asarray(start_nodes, dtype=np.int64)
        if starts.size == 0:
            raise WalkError("no valid start nodes for this model/graph")
        chunk = starts.size if shard_walks is None else min(shard_walks, starts.size)
        for __ in range(num_walks):
            for lo in range(0, starts.size, chunk):
                part = starts[lo : lo + chunk]
                walks = np.full((part.size, walk_length), -1, dtype=np.int64)
                lengths = self._run_wave(part, walk_length, walks, 0)
                yield WalkCorpus(walks, lengths)

    def _run_wave(self, starts, walk_length, walks, row_base) -> np.ndarray:
        graph, model, stepper, rng = self.graph, self.model, self.stepper, self.rng
        k = starts.size
        walks[row_base : row_base + k, 0] = starts
        lengths = np.ones(k, dtype=np.int64)
        ids = np.arange(k, dtype=np.int64)
        cur = starts.astype(np.int64).copy()
        prev = np.full(k, -1, dtype=np.int64)
        prev_off = np.full(k, -1, dtype=np.int64)
        for step in range(walk_length - 1):
            if cur.size == 0:
                break
            if model.order == 2 and step == 0:
                chosen = self._first_step(cur, rng)
            else:
                chosen = stepper.step(prev, prev_off, cur, step, rng)
            alive = chosen != NO_EDGE
            ids = ids[alive]
            chosen = chosen[alive]
            prev = cur[alive]
            prev_off = chosen
            cur = graph.targets[chosen]
            walks[row_base + ids, step + 1] = cur
            lengths[ids] += 1
        return lengths

    def _first_step(self, cur, rng):
        """Second-order walks take step 0 from the model's start-state law.

        With no previous edge the models define α = 1, which reduces to
        the static distribution for node2vec/edge2vec but keeps
        fairwalk's group discounting — so the exact draw goes through the
        model kernel rather than the raw static weights.
        """
        graph = self.graph
        lo = graph.offsets[cur]
        deg = graph.offsets[cur + 1] - lo
        flat_offs, seg = concat_ranges(lo, deg)
        if flat_offs.size == 0:
            return np.full(cur.size, NO_EDGE, dtype=np.int64)
        no_prev = np.full(flat_offs.size, -1, dtype=np.int64)
        expanded_cur = cur[seg]

        def weight_fn(offs, lanes=None):
            ctx = expanded_cur if lanes is None else expanded_cur[lanes]
            none = np.full(offs.size, -1, dtype=np.int64)
            return self.model.batch_dynamic_weight(none, none, ctx, 0, offs)

        weights = self.kernels.dyn_weights(
            self.stepper.kernel_state, no_prev, flat_offs, weight_fn
        )
        pos = segment_sample(weights, deg, rng)
        return np.where(pos >= 0, lo + pos, NO_EDGE)

    # ------------------------------------------------------------------
    def apply_delta(self, delta):
        """Mutate the engine's graph and refresh sampler state in place.

        ``delta`` is a :class:`~repro.graph.delta.GraphDelta` (applied
        here) or a prebuilt :class:`~repro.graph.delta.DeltaPlan` whose
        ``old_graph`` is this engine's current graph. The model is
        rebound first, then the stepper revalidates only what the delta
        touched — M-H remaps its chain array; table-based samplers
        rebuild affected tables (costs visible in ``stats()`` under
        ``rebuilt_nodes`` / ``rebuild_cost_bytes`` /
        ``invalidated_states`` / ``delta_seconds``). Returns the new
        graph.
        """
        from repro.graph.delta import DeltaPlan

        if isinstance(delta, DeltaPlan):
            plan = delta
            if plan.old_graph is not self.graph:
                raise WalkError("DeltaPlan.old_graph is not this engine's graph")
        else:
            plan = DeltaPlan.build(self.graph, delta)
        self.model.rebind(plan.new_graph)
        self.graph = plan.new_graph
        self.stepper.model = self.model
        self.stepper.on_delta(plan)
        return plan.new_graph

    def stats(self) -> dict:
        """Sampler counters plus engine setup/backend bookkeeping."""
        out = self.stepper.stats()
        out["setup_seconds"] = self.setup_seconds
        out["backend"] = self.backend
        out["requested_backend"] = self.requested_backend
        out["compile_seconds"] = self.compile_seconds
        return out

    def memory_bytes(self) -> int:
        """Persistent sampler bytes (chains / tables / proposals)."""
        return self.stepper.memory_bytes()
