"""node2vec (Grover & Leskovec, KDD 2016) — second-order biased walk.

The dynamic weight of edge (v, u) given previous node s is α·w_vu with

    α = 1/p  if u == s             (return,    d(u, s) = 0)
    α = 1    if (s, u) ∈ E         (stay near, d(u, s) = 1)
    α = 1/q  otherwise             (explore,   d(u, s) = 2)

(paper Eq. 2). The state is the previous edge, so #state = |E| and the
adjacency test makes each weight evaluation O(log deg) via binary search —
the complexity quoted in the paper's Section III-A analysis.

The first step of a walk has no previous edge; the engine draws it from
the static distribution, matching the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.walks.models.base import RandomWalkModel
from repro.walks.state import NO_PREVIOUS


class Node2Vec(RandomWalkModel):
    """Second-order walk with return parameter p and in-out parameter q."""

    name = "node2vec"
    order = 2

    def __init__(self, graph, p: float = 1.0, q: float = 1.0):
        super().__init__(graph)
        if p <= 0 or q <= 0:
            raise ModelError(f"node2vec needs p > 0 and q > 0, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)

    def calculate_weight(self, state, edge_offset: int) -> float:
        w = float(self.graph.edge_weight_at(edge_offset))
        s = state.previous
        if s == NO_PREVIOUS:
            return w
        u = int(self.graph.targets[edge_offset])
        if u == s:
            return w / self.p
        if self.graph.has_edge(s, u):
            return w
        return w / self.q

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets) -> np.ndarray:
        w = np.asarray(self.graph.edge_weight_at(edge_offsets), dtype=np.float64)
        u = self.graph.targets[edge_offsets]
        alpha = np.full(u.size, 1.0 / self.q)
        safe_prev = np.maximum(prev, 0)
        near = self.graph.has_edge_batch(safe_prev, u)
        alpha[near] = 1.0
        alpha[u == prev] = 1.0 / self.p
        alpha[prev == NO_PREVIOUS] = 1.0
        return w * alpha

    def kernel_spec(self) -> dict:
        """Compiled backends evaluate α with the same ``w · (1/p)`` /
        ``w · (1/q)`` products as :meth:`batch_dynamic_weight`, so the
        corpora stay bitwise-identical across backends."""
        return {"kind": "node2vec", "p": self.p, "q": self.q}

    # ------------------------------------------------------------------
    # rejection support
    # ------------------------------------------------------------------
    def alpha_bound(self, graph) -> float:
        return max(1.0 / self.p, 1.0, 1.0 / self.q)

    @property
    def bulk_bound(self) -> float:
        """Bound over the non-return edges (d(u,s) ∈ {1, 2})."""
        return max(1.0, 1.0 / self.q)

    @property
    def supports_folding(self) -> bool:
        """True when the single return-edge outlier is worth folding."""
        return 1.0 / self.p > self.bulk_bound

    def fold_outliers(self, graph, state):
        if not self.supports_folding or state.previous == NO_PREVIOUS:
            return None
        rev = self.graph.edge_index(state.current, state.previous)
        if rev < 0:
            return None
        return np.array([rev], dtype=np.int64), self.bulk_bound

    def batch_outlier_excess(self, prev, cur) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized folding data: (return-edge offsets, excess mass).

        The only enumerable outlier of node2vec is the return edge
        (v -> s), whose dynamic weight w/p exceeds the bulk envelope by
        w·(1/p − bulk). Offsets are -1 (and excess 0) where no return
        edge exists or the walker has no previous node.
        """
        safe_prev = np.maximum(prev, 0)
        rev = self.graph.edge_index_batch(cur, safe_prev)
        rev = np.where(prev == NO_PREVIOUS, -1, rev)
        w_rev = np.where(
            rev >= 0,
            np.asarray(self.graph.edge_weight_at(np.maximum(rev, 0)), dtype=np.float64),
            0.0,
        )
        excess = w_rev * max(1.0 / self.p - self.bulk_bound, 0.0)
        return rev, excess
