"""DeepWalk (Perozzi et al., KDD 2014) — first-order random walk.

The transition distribution of a walker at node v is the static edge
weights of v's out-edges (paper Eq. 1): the dynamic weight *is* the static
weight, the state is just the current node, and #state = |V|. Because the
distribution is already proportional to the static weights, every sampler
is exact here and the random/high-weight initialization strategies of the
M-H sampler coincide with the target being reached immediately on
unweighted graphs.
"""

from __future__ import annotations

import numpy as np

from repro.walks.models.base import RandomWalkModel


class DeepWalk(RandomWalkModel):
    """First-order walk over static edge weights."""

    name = "deepwalk"
    order = 1
    is_static = True

    def calculate_weight(self, state, edge_offset: int) -> float:
        return float(self.graph.edge_weight_at(edge_offset))

    def dynamic_weights_row(self, graph, state) -> np.ndarray:
        return self.graph.neighbor_weights(state.current)

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets) -> np.ndarray:
        return np.asarray(self.graph.edge_weight_at(edge_offsets), dtype=np.float64)

    def alpha_bound(self, graph) -> float:
        return 1.0
