"""metapath2vec (Dong et al., KDD 2017) — metapath-guided heterogeneous walk.

A metapath like "A-P-V-P-A" prescribes the node type of every walk
position; the walker may only traverse edges whose target matches the next
type in the (cyclically repeated) path, with probability proportional to
static weight among the matches (paper Eq. 4). The dynamic weight is
therefore w_vu when Φ(u) = T and 0 otherwise, and the state is (T, v):
#state = |V|·|Φ| (Table I).

Metapaths must be cyclic (first type == last type) to guide walks longer
than the path itself, and walks start only at nodes of the path's first
type — both conventions of the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.graph.hetero import parse_metapath
from repro.walks.models.base import RandomWalkModel


class MetaPath2Vec(RandomWalkModel):
    """Metapath-constrained first-order walk on a typed graph."""

    name = "metapath2vec"
    order = 1
    requires_node_types = True

    def __init__(self, graph, metapath="APA", type_names=None):
        super().__init__(graph)
        self.metapath = parse_metapath(metapath, type_names)
        if self.metapath[0] != self.metapath[-1]:
            raise ModelError(
                f"metapath must be cyclic (first type == last type), got {self.metapath}"
            )
        if max(self.metapath) >= graph.num_node_types:
            raise ModelError(
                f"metapath uses type {max(self.metapath)} but the graph has "
                f"{graph.num_node_types} node types"
            )
        # target type by step: step s samples a node of type _targets[s % k]
        k = len(self.metapath) - 1
        self._targets = np.array([self.metapath[(s % k) + 1] for s in range(k)], dtype=np.int64)

    # ------------------------------------------------------------------
    def target_type(self, step: int) -> int:
        """Node type the walker must move to at walk step ``step``."""
        return int(self._targets[step % self._targets.size])

    def valid_start_nodes(self) -> np.ndarray:
        """Only nodes of the metapath's first type may start a walk."""
        return np.flatnonzero(self.graph.node_types == self.metapath[0]).astype(np.int64)

    # ------------------------------------------------------------------
    def calculate_weight(self, state, edge_offset: int) -> float:
        u = int(self.graph.targets[edge_offset])
        if int(self.graph.node_types[u]) != self.target_type(state.step):
            return 0.0
        return float(self.graph.edge_weight_at(edge_offset))

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets) -> np.ndarray:
        w = np.asarray(self.graph.edge_weight_at(edge_offsets), dtype=np.float64)
        u_types = self.graph.node_types[self.graph.targets[edge_offsets]].astype(np.int64)
        wanted = self._targets[step % self._targets.size]
        return np.where(u_types == wanted, w, 0.0)

    # ------------------------------------------------------------------
    # state layout: idx = current * |Φ| + target_type  (paper Fig. 4:
    # position = current node, affixture = metapath type)
    # ------------------------------------------------------------------
    def state_index(self, graph, state) -> int:
        return int(state.current) * self.graph.num_node_types + self.target_type(state.step)

    def batch_state_index(self, prev_off, cur, step) -> np.ndarray:
        wanted = self._targets[step % self._targets.size]
        return cur * self.graph.num_node_types + wanted

    def state_space_size(self, graph) -> int:
        return self.graph.num_nodes * self.graph.num_node_types

    def state_table_degrees(self, graph) -> np.ndarray:
        # v-major layout: states (v, 0..|Φ|-1) share v's degree
        return np.repeat(self.graph.degrees(), self.graph.num_node_types)

    def alpha_bound(self, graph) -> float:
        return 1.0

    def enumerate_state_contexts(self, graph) -> dict:
        """Contexts for states (v, T); types outside the path are invalid.

        The batch weight kernel derives the wanted type from the step
        counter, so each type T present in the path is mapped back to the
        first step index that targets it.
        """
        n = self.graph.num_nodes
        num_types = self.graph.num_node_types
        pseudo_step = np.full(num_types, -1, dtype=np.int64)
        for s in range(self._targets.size - 1, -1, -1):
            pseudo_step[self._targets[s]] = s
        cur = np.repeat(np.arange(n, dtype=np.int64), num_types)
        t = np.tile(np.arange(num_types, dtype=np.int64), n)
        step = pseudo_step[t]
        size = n * num_types
        return {
            "prev": np.full(size, -1, dtype=np.int64),
            "prev_off": np.full(size, -1, dtype=np.int64),
            "cur": cur,
            "step": np.maximum(step, 0),
            "valid": (step >= 0) & (self.graph.degrees()[cur] > 0),
        }
