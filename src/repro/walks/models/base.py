"""Base class of the unified random-walk model abstraction (Section IV-B).

To define a model a user implements two methods — exactly the interface of
the paper's Fig. 3:

* :meth:`RandomWalkModel.calculate_weight` — the *dynamic edge weight*
  w'_x(e) given the walker state, which fixes the unnormalised transition
  distribution G_x(u) = w'_xu / Σ_k w'_xk;
* :meth:`RandomWalkModel.update_state` — how the state evolves after
  traversing an edge (a default covering all five published models is
  provided).

Everything else on this class is derived support machinery with sensible
defaults: state indexing for the 2D sampler layout, rejection-sampling
bounds, alias-table sizing, and the vectorized kernels used by the
lock-step engine. Models are *bound to a graph at construction* so they
may precompute lookup tables (e.g. fairwalk's per-node type counts).

Subclasses set ``order`` (1 = distribution depends only on the current
node [+ metapath position], 2 = on the previous edge) and may override any
derived method for efficiency.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ModelError
from repro.walks.state import NO_PREVIOUS, WalkerState


class RandomWalkModel(abc.ABC):
    """A random-walk model bound to a graph.

    Attributes
    ----------
    name: registry name of the model.
    order: 1 for first-order models, 2 when transitions depend on the
        previous edge.
    requires_node_types: True for heterogeneous models.
    """

    name = "abstract"
    order = 1
    requires_node_types = False
    #: True when dynamic weights always equal static weights (deepwalk),
    #: which makes per-node static samplers exact for this model.
    is_static = False

    def __init__(self, graph):
        if self.requires_node_types and not graph.is_heterogeneous:
            raise ModelError(f"{self.name} requires a typed (heterogeneous) graph")
        self.graph = graph

    def rebind(self, graph) -> "RandomWalkModel":
        """Rebind this model to a (mutated) graph in place; returns self.

        Called by the dynamic-graph machinery after a delta is applied.
        The base implementation swaps the graph reference; models that
        precompute graph-derived tables (e.g. fairwalk's per-node type
        counts) override to refresh them.
        """
        if self.requires_node_types and not graph.is_heterogeneous:
            raise ModelError(f"{self.name} requires a typed (heterogeneous) graph")
        self.graph = graph
        return self

    # ------------------------------------------------------------------
    # the unified abstraction (user-facing, paper Fig. 3)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def calculate_weight(self, state: WalkerState, edge_offset: int) -> float:
        """Dynamic edge weight w'_x(e) of the edge entry at ``edge_offset``."""

    def update_state(self, state: WalkerState, edge_offset: int) -> WalkerState:
        """State after traversing ``edge_offset`` (default: shift window)."""
        return state.advanced(self.graph, edge_offset)

    # ------------------------------------------------------------------
    # walk lifecycle
    # ------------------------------------------------------------------
    def initial_state(self, start: int) -> WalkerState:
        """State of a fresh walker at node ``start``."""
        return WalkerState(current=int(start))

    def valid_start_nodes(self) -> np.ndarray:
        """Nodes walks may start from (metapath models restrict this)."""
        return np.arange(self.graph.num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # sampler support (scalar)
    # ------------------------------------------------------------------
    def dynamic_weight(self, graph, state, edge_offset: int) -> float:
        """Sampler-protocol alias for :meth:`calculate_weight`."""
        return self.calculate_weight(state, edge_offset)

    def dynamic_weights_row(self, graph, state) -> np.ndarray:
        """w'_x for all out-edges of the state's current node.

        The default evaluates the batch kernel on the whole row; models
        with cheaper row formulas may override.
        """
        lo, hi = self.graph.edge_range(state.current)
        offsets = np.arange(lo, hi, dtype=np.int64)
        if offsets.size == 0:
            return np.empty(0, dtype=np.float64)
        prev = np.full(offsets.size, state.previous, dtype=np.int64)
        prev_off = np.full(offsets.size, state.prev_edge_offset, dtype=np.int64)
        cur = np.full(offsets.size, state.current, dtype=np.int64)
        step = np.full(offsets.size, state.step, dtype=np.int64)
        return self.batch_dynamic_weight(prev, prev_off, cur, step, offsets)

    def state_index(self, graph, state) -> int:
        """Flat index of ``state`` in [0, state_space_size).

        Default layouts: first-order models index by current node;
        second-order models index by the *taken* directed edge entry
        (the transpose of Fig. 4's bucket layout — same size, same O(1)
        lookup, no extra binary search). Second-order states before the
        first step have no previous edge and are never indexed — the walk
        engine resolves the first step from the static distribution.
        """
        if self.order == 1:
            return int(state.current)
        if state.prev_edge_offset == NO_PREVIOUS:
            raise ModelError(
                f"{self.name}: start states have no chain index; the engine "
                "must take the first step from the static distribution"
            )
        return int(state.prev_edge_offset)

    def state_space_size(self, graph) -> int:
        """#state (Table I): |V| for first-order, |E| for second-order."""
        if self.order == 1:
            return self.graph.num_nodes
        return self.graph.num_edge_entries

    def state_table_degrees(self, graph) -> np.ndarray:
        """Alias-table size (current node's degree) per flat state index."""
        degrees = self.graph.degrees()
        if self.order == 1:
            return degrees
        # state = directed edge entry (s -> v); its table covers N(v)
        return degrees[self.graph.targets]

    def alias_entries(self, graph) -> int:
        """Total alias-table entries across all states (Σ table degrees)."""
        return int(self.state_table_degrees(graph).sum())

    # ------------------------------------------------------------------
    # rejection-sampling support
    # ------------------------------------------------------------------
    def alpha_bound(self, graph) -> float:
        """Upper bound on w'(e) / w(e) over all states and edges."""
        return 1.0

    def fold_outliers(self, graph, state):
        """Enumerable outliers for KnightKing folding, or None.

        Returns ``(outlier_edge_offsets, bulk_bound)`` where the bulk
        bound covers every non-outlier edge. ``None`` means folding is
        not applicable (the default; see the KnightKing sampler notes).
        """
        return None

    # ------------------------------------------------------------------
    # vectorized kernels (lock-step engine)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def batch_dynamic_weight(
        self,
        prev: np.ndarray,
        prev_off: np.ndarray,
        cur: np.ndarray,
        step: np.ndarray,
        edge_offsets: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`calculate_weight`.

        All arrays are aligned per query: walker context (previous node,
        previous edge offset, current node, step count) and the candidate
        edge entry. Returns float64 dynamic weights.
        """

    def batch_state_index(self, prev_off: np.ndarray, cur: np.ndarray, step: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`state_index`."""
        if self.order == 1:
            return cur.astype(np.int64, copy=True)
        return prev_off.astype(np.int64, copy=True)

    def kernel_spec(self) -> dict:
        """Weight rule for the compiled step kernels (:mod:`repro.walks.kernels`).

        A dict whose ``"kind"`` selects how a compiled backend evaluates
        this model's dynamic weight without calling back into Python:
        ``"static"`` (weight = static edge weight), ``"node2vec"`` (keys
        ``p``/``q``), or ``"generic"`` — no compiled rule exists, so only
        the NumPy backend (which evaluates
        :meth:`batch_dynamic_weight` directly) can drive the walk and
        the engine falls back to it.

        Contract every model must honour regardless of kind: the dynamic
        weight of an edge is a pure function of ``(state index, edge
        offset)`` — the same invariant that makes one M-H chain per state
        meaningful, and which lets the engine cache w'(LAST_x) alongside
        the chain array.
        """
        return {"kind": "static"} if self.is_static else {"kind": "generic"}

    def enumerate_state_contexts(self, graph) -> dict[str, np.ndarray]:
        """Walker contexts for every flat state index (for eager tables).

        Used by samplers that materialise one structure per state (alias,
        memory-aware). Returns aligned arrays ``prev``, ``prev_off``,
        ``cur``, ``step`` plus a ``valid`` mask of states that can be
        realised by an actual walker.
        """
        if self.order == 1:
            n = self.graph.num_nodes
            return {
                "prev": np.full(n, NO_PREVIOUS, dtype=np.int64),
                "prev_off": np.full(n, NO_PREVIOUS, dtype=np.int64),
                "cur": np.arange(n, dtype=np.int64),
                "step": np.zeros(n, dtype=np.int64),
                "valid": self.graph.degrees() > 0,
            }
        m = self.graph.num_edge_entries
        cur = self.graph.targets.astype(np.int64)
        return {
            "prev": self.graph.edge_sources(),
            "prev_off": np.arange(m, dtype=np.int64),
            "cur": cur,
            "step": np.ones(m, dtype=np.int64),
            "valid": self.graph.degrees()[cur] > 0,
        }

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self.graph!r})"
