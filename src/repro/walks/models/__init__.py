"""The unified random-walk model abstraction and the five Table I models.

A model is defined by two callbacks (paper Fig. 3):
``calculate_weight(state, edge)`` — the dynamic edge weight w' that fixes
the unnormalised transition distribution — and ``update_state(state,
edge)``. Everything else (state indexing, rejection bounds, vectorized
kernels) is derived support machinery declared on
:class:`~repro.walks.models.base.RandomWalkModel`.

Models live in :data:`repro.registry.MODEL_REGISTRY`; third-party models
plug in with :func:`repro.registry.register_model` and then work by name
everywhere a built-in does (``UniNet``, ``RunSpec``, the CLI). Each
registration declares a ``param_spec`` capability describing its
constructor parameters, which drives CLI flags and spec validation.
"""

from repro.errors import ModelError
from repro.registry import MODEL_REGISTRY, register_model
from repro.walks.models.base import RandomWalkModel
from repro.walks.models.deepwalk import DeepWalk
from repro.walks.models.edge2vec import Edge2Vec
from repro.walks.models.fairwalk import FairWalk
from repro.walks.models.metapath2vec import MetaPath2Vec
from repro.walks.models.node2vec import Node2Vec

_P_SPEC = {"type": "float", "default": 1.0, "help": "return parameter p"}
_Q_SPEC = {"type": "float", "default": 1.0, "help": "in-out parameter q"}

register_model(
    "deepwalk", DeepWalk, second_order=False, needs_hetero=False, param_spec={}
)
register_model(
    "node2vec",
    Node2Vec,
    second_order=True,
    needs_hetero=False,
    param_spec={"p": _P_SPEC, "q": _Q_SPEC},
)
register_model(
    "metapath2vec",
    MetaPath2Vec,
    second_order=False,
    needs_hetero=True,
    param_spec={
        "metapath": {"type": "str", "default": "APA", "help": "node-type pattern"},
        "type_names": {"cli": False},
    },
)
register_model(
    "edge2vec",
    Edge2Vec,
    second_order=True,
    needs_hetero=True,
    param_spec={"p": _P_SPEC, "q": _Q_SPEC, "transition_matrix": {"cli": False}},
)
register_model(
    "fairwalk",
    FairWalk,
    second_order=True,
    needs_hetero=True,
    param_spec={"p": _P_SPEC, "q": _Q_SPEC},
)

#: Mapping view over the model registry (canonical name -> class).
#: Kept for backward compatibility; ``MODELS["node2vec"]`` and iteration
#: over canonical names behave like the old plain dict.
MODELS = MODEL_REGISTRY

__all__ = [
    "RandomWalkModel",
    "DeepWalk",
    "Node2Vec",
    "MetaPath2Vec",
    "Edge2Vec",
    "FairWalk",
    "MODELS",
    "MODEL_REGISTRY",
    "register_model",
    "make_model",
]


def make_model(name, graph, **params) -> RandomWalkModel:
    """Instantiate a model by registry name, bound to ``graph``.

    Unknown names raise :class:`~repro.errors.ModelError` listing the
    registered models (with near-miss suggestions); a bound
    :class:`RandomWalkModel` instance passes through unchanged.

    >>> from repro.graph.generators import cycle_graph
    >>> model = make_model("node2vec", cycle_graph(5), p=0.25, q=4.0)
    >>> model.name
    'node2vec'
    """
    if isinstance(name, RandomWalkModel):
        return name
    if not isinstance(name, str):
        raise ModelError(
            f"model must be a registry name or a RandomWalkModel instance, "
            f"got {type(name).__name__}"
        )
    return MODEL_REGISTRY.create(name, graph, **params)
