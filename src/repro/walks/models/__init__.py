"""The unified random-walk model abstraction and the five Table I models.

A model is defined by two callbacks (paper Fig. 3):
``calculate_weight(state, edge)`` — the dynamic edge weight w' that fixes
the unnormalised transition distribution — and ``update_state(state,
edge)``. Everything else (state indexing, rejection bounds, vectorized
kernels) is derived support machinery declared on
:class:`~repro.walks.models.base.RandomWalkModel`.
"""

from repro.errors import ModelError
from repro.walks.models.base import RandomWalkModel
from repro.walks.models.deepwalk import DeepWalk
from repro.walks.models.edge2vec import Edge2Vec
from repro.walks.models.fairwalk import FairWalk
from repro.walks.models.metapath2vec import MetaPath2Vec
from repro.walks.models.node2vec import Node2Vec

MODELS = {
    "deepwalk": DeepWalk,
    "node2vec": Node2Vec,
    "metapath2vec": MetaPath2Vec,
    "edge2vec": Edge2Vec,
    "fairwalk": FairWalk,
}

__all__ = [
    "RandomWalkModel",
    "DeepWalk",
    "Node2Vec",
    "MetaPath2Vec",
    "Edge2Vec",
    "FairWalk",
    "MODELS",
    "make_model",
]


def make_model(name, graph, **params) -> RandomWalkModel:
    """Instantiate a model by registry name, bound to ``graph``.

    >>> from repro.graph.generators import cycle_graph
    >>> model = make_model("node2vec", cycle_graph(5), p=0.25, q=4.0)
    >>> model.name
    'node2vec'
    """
    if isinstance(name, RandomWalkModel):
        return name
    key = str(name).lower()
    if key not in MODELS:
        raise ModelError(f"unknown model {name!r}; available: {sorted(MODELS)}")
    return MODELS[key](graph, **params)
