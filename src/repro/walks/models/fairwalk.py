"""fairwalk (Rahman et al., IJCAI 2019) — group-fair biased walk.

fairwalk removes the representation bias caused by unbalanced neighbour
groups: conceptually the walker first picks a neighbour *type* uniformly,
then a node within that type by node2vec rules. In the paper's unified
abstraction (Table IV) that two-stage draw becomes the dynamic weight

    w'(v, u) = α_u · w_vu / |K_{Φ(u)}|,
    K_t = {k ∈ N(v) : Φ(k) = t},

i.e. each neighbour's weight is discounted by the *count* of same-type
neighbours, equalising the total mass per group. Per-node type counts are
precomputed at model construction (O(|E|) once), keeping each weight
evaluation O(log deg) like node2vec's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.walks.models.base import RandomWalkModel
from repro.walks.state import NO_PREVIOUS


class FairWalk(RandomWalkModel):
    """Second-order walk with per-group neighbour-count discounting."""

    name = "fairwalk"
    order = 2
    requires_node_types = True

    def __init__(self, graph, p: float = 1.0, q: float = 1.0):
        super().__init__(graph)
        if p <= 0 or q <= 0:
            raise ModelError(f"fairwalk needs p > 0 and q > 0, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)
        self._recount(graph)

    def _recount(self, graph) -> None:
        # type_counts[v, t] = |{u in N(v) : Φ(u) = t}|
        num_types = graph.num_node_types
        src = graph.edge_sources()
        dst_types = graph.node_types[graph.targets].astype(np.int64)
        flat = src * num_types + dst_types
        counts = np.bincount(flat, minlength=graph.num_nodes * num_types)
        self.type_counts = counts.reshape(graph.num_nodes, num_types).astype(np.float64)

    def rebind(self, graph) -> "FairWalk":
        # the per-(node, type) neighbour counts are a function of the
        # adjacency; refresh them for the mutated graph
        super().rebind(graph)
        self._recount(graph)
        return self

    def calculate_weight(self, state, edge_offset: int) -> float:
        w = float(self.graph.edge_weight_at(edge_offset))
        u = int(self.graph.targets[edge_offset])
        group = self.type_counts[state.current, int(self.graph.node_types[u])]
        s = state.previous
        if s == NO_PREVIOUS:
            alpha = 1.0
        elif u == s:
            alpha = 1.0 / self.p
        elif self.graph.has_edge(s, u):
            alpha = 1.0
        else:
            alpha = 1.0 / self.q
        return alpha * w / group

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets) -> np.ndarray:
        w = np.asarray(self.graph.edge_weight_at(edge_offsets), dtype=np.float64)
        u = self.graph.targets[edge_offsets]
        alpha = np.full(u.size, 1.0 / self.q)
        safe_prev = np.maximum(prev, 0)
        near = self.graph.has_edge_batch(safe_prev, u)
        alpha[near] = 1.0
        alpha[u == prev] = 1.0 / self.p
        alpha[prev == NO_PREVIOUS] = 1.0
        groups = self.type_counts[cur, self.graph.node_types[u].astype(np.int64)]
        return alpha * w / groups

    def alpha_bound(self, graph) -> float:
        # |K| >= 1 for every existing neighbour, so w'/w <= α_max
        return max(1.0 / self.p, 1.0, 1.0 / self.q)
