"""edge2vec (Gao et al., BMC Bioinformatics 2019) — edge-semantics walk.

edge2vec extends node2vec to heterogeneous networks through an edge-type
transition matrix M: the dynamic weight of edge (v, u) given previous edge
(s, v) is α_u · M[Φ(s,v), Φ(v,u)] · w_vu (paper Eq. 3), where α follows
node2vec's p/q scheme. M_ij is the propensity of moving from an edge of
type i to one of type j; the original trains M with an EM loop, which
:func:`fit_transition_matrix` reproduces (walk, count type transitions,
renormalise, repeat).

Because both the hyper-parameters *and* the type pattern shape the
distribution, its outliers are non-deterministic — the reason KnightKing's
folding cannot help here (paper Section V-D) — so this model declares no
foldable outliers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.walks.models.base import RandomWalkModel
from repro.walks.state import NO_PREVIOUS


class Edge2Vec(RandomWalkModel):
    """Second-order heterogeneous walk with an edge-type transition matrix."""

    name = "edge2vec"
    order = 2

    def __init__(self, graph, p: float = 1.0, q: float = 1.0, transition_matrix=None):
        super().__init__(graph)
        if graph.edge_types is None:
            raise ModelError("edge2vec requires a graph with edge types")
        if p <= 0 or q <= 0:
            raise ModelError(f"edge2vec needs p > 0 and q > 0, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)
        t = graph.num_edge_types
        if transition_matrix is None:
            matrix = np.ones((t, t), dtype=np.float64)
        else:
            matrix = np.asarray(transition_matrix, dtype=np.float64)
            if matrix.shape != (t, t):
                raise ModelError(
                    f"transition_matrix must be ({t}, {t}) for this graph, got {matrix.shape}"
                )
            if np.any(matrix < 0) or np.any(~np.isfinite(matrix)):
                raise ModelError("transition_matrix entries must be finite and >= 0")
        self.transition_matrix = matrix

    def rebind(self, graph) -> "Edge2Vec":
        super().rebind(graph)
        if graph.edge_types is None:
            raise ModelError("edge2vec requires a graph with edge types")
        if graph.num_edge_types > self.transition_matrix.shape[0]:
            raise ModelError(
                f"graph now has {graph.num_edge_types} edge types but the "
                f"transition matrix covers {self.transition_matrix.shape[0]}"
            )
        return self

    def calculate_weight(self, state, edge_offset: int) -> float:
        w = float(self.graph.edge_weight_at(edge_offset))
        s = state.previous
        if s == NO_PREVIOUS:
            return w
        u = int(self.graph.targets[edge_offset])
        if u == s:
            alpha = 1.0 / self.p
        elif self.graph.has_edge(s, u):
            alpha = 1.0
        else:
            alpha = 1.0 / self.q
        m = self.transition_matrix[
            int(self.graph.edge_types[state.prev_edge_offset]),
            int(self.graph.edge_types[edge_offset]),
        ]
        return alpha * m * w

    def batch_dynamic_weight(self, prev, prev_off, cur, step, edge_offsets) -> np.ndarray:
        w = np.asarray(self.graph.edge_weight_at(edge_offsets), dtype=np.float64)
        u = self.graph.targets[edge_offsets]
        alpha = np.full(u.size, 1.0 / self.q)
        safe_prev = np.maximum(prev, 0)
        near = self.graph.has_edge_batch(safe_prev, u)
        alpha[near] = 1.0
        alpha[u == prev] = 1.0 / self.p
        at_start = prev == NO_PREVIOUS
        alpha[at_start] = 1.0
        prev_types = self.graph.edge_types[np.maximum(prev_off, 0)].astype(np.int64)
        cand_types = self.graph.edge_types[edge_offsets].astype(np.int64)
        m = self.transition_matrix[prev_types, cand_types]
        m[at_start] = 1.0
        return alpha * m * w

    def alpha_bound(self, graph) -> float:
        alpha_max = max(1.0 / self.p, 1.0, 1.0 / self.q)
        return alpha_max * float(self.transition_matrix.max())


def fit_transition_matrix(
    graph,
    *,
    p: float = 1.0,
    q: float = 1.0,
    iterations: int = 3,
    num_walks: int = 2,
    walk_length: int = 20,
    seed=None,
):
    """EM-style estimation of edge2vec's type-transition matrix.

    Mirrors the original implementation's loop: walk under the current
    matrix, count observed consecutive edge-type pairs, renormalise rows
    into the next matrix. Returns the final (row-stochastic, scaled so the
    max entry is 1) matrix.
    """
    from repro.walks.vectorized import VectorizedWalkEngine

    t = graph.num_edge_types
    matrix = np.ones((t, t), dtype=np.float64)
    for iteration in range(iterations):
        model = Edge2Vec(graph, p=p, q=q, transition_matrix=matrix)
        engine = VectorizedWalkEngine(
            graph, model, sampler="mh", seed=None if seed is None else seed + iteration
        )
        corpus = engine.generate(num_walks=num_walks, walk_length=walk_length)
        counts = np.ones((t, t), dtype=np.float64)  # add-one smoothing
        for walk in corpus.iter_walks():
            if walk.size < 3:
                continue
            src, dst = walk[:-1], walk[1:]
            offs = graph.edge_index_batch(src, dst)
            etypes = graph.edge_types[np.maximum(offs, 0)].astype(np.int64)
            etypes = etypes[offs >= 0]
            if etypes.size >= 2:
                np.add.at(counts, (etypes[:-1], etypes[1:]), 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        matrix = counts / row_sums
        matrix = matrix / matrix.max()
    return matrix
