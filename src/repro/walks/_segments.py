"""Segmented (ragged-array) primitives for the vectorized walk engine.

A wave of walkers sits at nodes of wildly different degrees, so per-step
row operations (exact sampling, row argmax) act on a *ragged* collection
of CSR rows. These helpers flatten the active rows into one contiguous
buffer and run the per-row reductions as O(total) vector passes —
the numpy equivalent of the per-thread loops in the paper's C++ engine.

Conventions: ``starts``/``lengths`` describe each walker's row (global CSR
offset of its first edge, its degree). All functions tolerate zero-length
segments.
"""

from __future__ import annotations

import numpy as np


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ``[starts_i, starts_i + lengths_i)`` ranges into one array.

    Returns ``(flat_indices, segment_ids)`` where ``segment_ids[j]`` tells
    which input segment produced ``flat_indices[j]``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    seg_ids = np.repeat(np.arange(starts.size, dtype=np.int64), lengths)
    seg_start_pos = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - seg_start_pos[seg_ids]
    return starts[seg_ids] + within, seg_ids


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flat buffer laid out by :func:`concat_ranges`."""
    prefix = np.concatenate(([0.0], np.cumsum(values, dtype=np.float64)))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return prefix[ends] - prefix[starts]


def race_keys(values: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Exponential-race key per entry: ``-log1p(-u) / value`` (+inf at <= 0).

    ``argmin`` of the keys within a segment is an exact categorical draw
    ∝ ``values`` (the Exp(w) race construction). Each key is a pure
    function of its own ``(value, u)`` pair — no prefix sums across
    entries — so any contiguous slice of a wave's flat buffer yields the
    same keys whether it is evaluated whole or split across workers.
    """
    values = np.asarray(values, dtype=np.float64)
    keys = np.full(values.shape, np.inf, dtype=np.float64)
    pos = values > 0.0
    keys[pos] = -np.log1p(-u[pos]) / values[pos]
    return keys


def segment_race_argmin(keys: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Within-segment argmin position of finite race keys per segment.

    Returns -1 for empty segments and for segments whose keys are all
    +inf (zero-mass rows). The reduction is per-segment only — entries
    of one segment never affect another's winner.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    num_segments = lengths.size
    out = np.full(num_segments, -1, dtype=np.int64)
    if keys.size == 0 or num_segments == 0:
        return out
    ends = np.cumsum(lengths)
    starts = ends - lengths
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    # reduceat needs strictly valid start indices; restrict to nonempty rows
    ne_starts = starts[nonempty]
    mins = np.minimum.reduceat(keys, ne_starts)
    seg_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    min_per_pos = np.empty(num_segments, dtype=np.float64)
    min_per_pos[nonempty] = mins
    hits = keys <= min_per_pos[seg_ids]
    hit_pos = np.flatnonzero(hits)
    hit_seg = seg_ids[hit_pos]
    first_seg, first_idx = np.unique(hit_seg, return_index=True)
    out[first_seg] = hit_pos[first_idx] - starts[first_seg]
    # an all-inf segment trivially "hits" at its first entry; mask it out
    winner = np.full(num_segments, np.inf, dtype=np.float64)
    winner[nonempty] = mins
    out[~np.isfinite(winner)] = -1
    return out


def segment_sample(values: np.ndarray, lengths: np.ndarray, rng) -> np.ndarray:
    """Exact categorical draw within each segment, ∝ ``values``.

    Returns the *within-segment* position of the draw per segment, or -1
    for segments whose values sum to zero (or that are empty). This is the
    vectorized direct sampler.

    Exactly one uniform is consumed per flat entry (``values.size``
    draws, independent of the weight values), and every entry's race key
    is a pure function of its own (value, uniform) pair — the property
    the sharded walk engine relies on to hand each shard a slice of one
    driver-drawn uniform stream and still reproduce this function's
    winners bitwise.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    out = np.full(lengths.size, -1, dtype=np.int64)
    if values.size == 0:
        return out
    keys = race_keys(values, rng.random(values.size))
    return segment_race_argmin(keys, lengths)


def segment_argmax(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Within-segment argmax position per segment (-1 for empty segments)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    num_segments = lengths.size
    out = np.full(num_segments, -1, dtype=np.int64)
    if values.size == 0 or num_segments == 0:
        return out
    ends = np.cumsum(lengths)
    starts = ends - lengths
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    # reduceat needs strictly valid start indices; restrict to nonempty rows
    ne_starts = starts[nonempty]
    maxes = np.maximum.reduceat(values, ne_starts)
    # tail segment of reduceat runs to the end of the buffer; that is fine
    # because segments are contiguous and ordered.
    seg_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    max_per_pos = np.empty(num_segments, dtype=np.float64)
    max_per_pos[nonempty] = maxes
    hits = values >= max_per_pos[seg_ids]
    hit_pos = np.flatnonzero(hits)
    hit_seg = seg_ids[hit_pos]
    first_seg, first_idx = np.unique(hit_seg, return_index=True)
    out[first_seg] = hit_pos[first_idx] - starts[first_seg]
    return out
