"""Segmented (ragged-array) primitives for the vectorized walk engine.

A wave of walkers sits at nodes of wildly different degrees, so per-step
row operations (exact sampling, row argmax) act on a *ragged* collection
of CSR rows. These helpers flatten the active rows into one contiguous
buffer and run the per-row reductions as O(total) vector passes —
the numpy equivalent of the per-thread loops in the paper's C++ engine.

Conventions: ``starts``/``lengths`` describe each walker's row (global CSR
offset of its first edge, its degree). All functions tolerate zero-length
segments.
"""

from __future__ import annotations

import numpy as np


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ``[starts_i, starts_i + lengths_i)`` ranges into one array.

    Returns ``(flat_indices, segment_ids)`` where ``segment_ids[j]`` tells
    which input segment produced ``flat_indices[j]``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    seg_ids = np.repeat(np.arange(starts.size, dtype=np.int64), lengths)
    seg_start_pos = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - seg_start_pos[seg_ids]
    return starts[seg_ids] + within, seg_ids


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flat buffer laid out by :func:`concat_ranges`."""
    prefix = np.concatenate(([0.0], np.cumsum(values, dtype=np.float64)))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return prefix[ends] - prefix[starts]


def segment_sample(values: np.ndarray, lengths: np.ndarray, rng) -> np.ndarray:
    """Exact categorical draw within each segment, ∝ ``values``.

    Returns the *within-segment* position of the draw per segment, or -1
    for segments whose values sum to zero (or that are empty). This is the
    vectorized direct sampler.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    num_segments = lengths.size
    out = np.full(num_segments, -1, dtype=np.int64)
    if values.size == 0:
        return out
    cdf = np.cumsum(values, dtype=np.float64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    base = np.where(starts > 0, cdf[np.maximum(starts - 1, 0)], 0.0)
    base[starts == 0] = 0.0
    totals = cdf[np.maximum(ends - 1, 0)] - base
    ok = (lengths > 0) & (totals > 0)
    if not ok.any():
        return out
    targets = base[ok] + rng.random(int(ok.sum())) * totals[ok]
    flat_pos = np.searchsorted(cdf, targets, side="right")
    flat_pos = np.minimum(flat_pos, ends[ok] - 1)
    flat_pos = np.maximum(flat_pos, starts[ok])
    out[ok] = flat_pos - starts[ok]
    return out


def segment_argmax(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Within-segment argmax position per segment (-1 for empty segments)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    num_segments = lengths.size
    out = np.full(num_segments, -1, dtype=np.int64)
    if values.size == 0 or num_segments == 0:
        return out
    ends = np.cumsum(lengths)
    starts = ends - lengths
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    # reduceat needs strictly valid start indices; restrict to nonempty rows
    ne_starts = starts[nonempty]
    maxes = np.maximum.reduceat(values, ne_starts)
    # tail segment of reduceat runs to the end of the buffer; that is fine
    # because segments are contiguous and ordered.
    seg_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    max_per_pos = np.empty(num_segments, dtype=np.float64)
    max_per_pos[nonempty] = maxes
    hits = values >= max_per_pos[seg_ids]
    hit_pos = np.flatnonzero(hits)
    hit_seg = seg_ids[hit_pos]
    first_seg, first_idx = np.unique(hit_seg, return_index=True)
    out[first_seg] = hit_pos[first_idx] - starts[first_seg]
    return out
