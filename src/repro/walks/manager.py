"""Sampler management: the flat chain store behind Fig. 4's 2D layout.

The paper manages one M-H edge sampler per walker state and needs O(1)
lookup from a state to its sampler. Its answer is a 2D (position,
affixture) decomposition: all states sharing a *position* (a node) form a
bucket, and the *affixture* (the model-specific remainder: predecessor
rank, metapath type, nothing) indexes within the bucket.

Because each sampler's entire mutable content is one integer (LAST_x, the
edge offset of its chain's current sample), the whole manager collapses to
a single int64 array indexed by the model's flat state index — the
densest possible realisation of the 2D layout. One deviation from the
figure, documented here: second-order states are indexed by the *taken*
directed edge (bucket = previous node, affixture = rank of the current
node in its row) rather than by the reverse edge. Both are bijections onto
[0, |E|) with O(1) lookup; ours avoids a per-step binary search.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import NO_EDGE
from repro.sampling.memory_model import mh_bytes


def _invalidate_touched(vals: np.ndarray, plan) -> np.ndarray:
    """Remap resident edge offsets across a delta; touched entries → NO_EDGE.

    A chain whose resident edge survived untouched keeps it (remapped to
    the new global offset); a chain whose resident edge was removed *or
    reweighted* is invalidated and lazily re-initialised on next visit —
    exactly the O(touched) revalidation the M-H sampler's tableless
    design buys under graph mutation.
    """
    out = np.full(vals.shape, NO_EDGE, dtype=np.int64)
    has = vals != NO_EDGE
    if not has.any():
        return out
    resident = vals[has]
    mapped = plan.remap_offsets(resident)
    touched = plan.touched_old_offsets()
    if touched.size:
        pos = np.searchsorted(touched, resident)
        hit = (pos < touched.size) & (touched[np.minimum(pos, touched.size - 1)] == resident)
        mapped[hit] = NO_EDGE
    out[has] = mapped
    return out


def remap_chain_array(last: np.ndarray, model, plan) -> tuple[np.ndarray, int]:
    """Carry an M-H chain array (LAST_x per state) across a graph delta.

    ``model`` must already be rebound to ``plan.new_graph`` (its state
    space sizes the output). First-order state indices are node-stable
    (new nodes append NO_EDGE slots); second-order indices are edge
    offsets and follow :meth:`DeltaPlan.edge_remap`. Returns the new
    chain array and the number of previously-initialised chains that
    were invalidated (resident edge touched, or defining edge removed).
    """
    old_n = plan.old_graph.num_nodes
    new_size = int(model.state_space_size(plan.new_graph))
    initialized_before = int((last != NO_EDGE).sum())
    if getattr(model, "order", 1) == 1:
        per_node = last.size // max(old_n, 1) if old_n else 1
        resident = _invalidate_touched(last, plan)
        rows = resident.reshape(old_n, per_node) if old_n else resident.reshape(0, max(per_node, 1))
        new_n = new_size // max(per_node, 1) if per_node else plan.new_graph.num_nodes
        new_last = np.full((new_n, max(per_node, 1)), NO_EDGE, dtype=np.int64)
        copy_n = min(old_n, new_n)
        new_last[:copy_n] = rows[:copy_n]
        new_last = new_last.reshape(-1)[:new_size]
    else:
        state_remap = plan.edge_remap()
        resident = _invalidate_touched(last, plan)
        new_last = np.full(new_size, NO_EDGE, dtype=np.int64)
        keep = state_remap >= 0
        new_last[state_remap[keep]] = resident[keep]
    invalidated = initialized_before - int((new_last != NO_EDGE).sum())
    return new_last, invalidated


class ChainStore:
    """LAST_x storage for every M-H chain of a (graph, model) pair.

    Shared between the scalar sampler and the vectorized engine so chains
    persist across walk waves (the paper's samplers live for the whole
    training run and are initialised once, on first query).

    The store is a plain two-array bundle sized by the flat state space —
    the shape the compiled step kernels consume directly:

    ``last``
        int64, the resident edge offset of each chain (NO_EDGE = never
        initialised).
    ``last_w``
        float64, the cached dynamic weight w'(LAST_x) of the resident
        edge (NaN = not cached; kernels re-evaluate the model on NaN).
        Sound because the model contract makes w' a pure function of
        (state index, edge offset) — see
        :meth:`~repro.walks.models.base.RandomWalkModel.kernel_spec`.
        Anything that moves a chain without knowing the new weight must
        write NaN into the matching slot.
    """

    def __init__(self, graph, model, *, budget=None):
        self.size = int(model.state_space_size(graph))
        if budget is not None:
            budget.charge(mh_bytes(graph, model), "mh-chains")
        self.last = np.full(self.size, NO_EDGE, dtype=np.int64)
        self.last_w = np.full(self.size, np.nan, dtype=np.float64)
        self._graph = graph
        self._model = model

    @property
    def num_initialized(self) -> int:
        """Chains that have been touched (lazily initialised) so far."""
        return int((self.last != NO_EDGE).sum())

    def reset(self) -> None:
        """Forget every chain position."""
        self.last.fill(NO_EDGE)
        self.last_w.fill(np.nan)

    def on_delta(self, plan, model=None) -> dict:
        """Revalidate every chain across a graph delta (in place).

        ``plan`` is a :class:`~repro.graph.delta.DeltaPlan`; ``model``
        defaults to the bound model, which must already be rebound to
        ``plan.new_graph``. The array is resized to the new state space
        and only chains whose resident or defining edge was touched are
        invalidated; everything else keeps its (remapped) sample.
        """
        model = self._model if model is None else model
        new_last, invalidated = remap_chain_array(self.last, model, plan)
        self.last = new_last
        # the weight cache cannot survive a delta: a reweighted edge (or,
        # for second-order models, a changed predecessor row) can alter
        # w'(LAST_x) even when the resident edge itself was untouched, so
        # every surviving chain re-evaluates once on next visit
        self.last_w = np.full(new_last.size, np.nan, dtype=np.float64)
        self.size = new_last.size
        self._graph = plan.new_graph
        self._model = model
        return {
            "invalidated_states": invalidated,
            "rebuilt_nodes": 0,
            "rebuild_cost_bytes": 0,
        }

    def memory_bytes(self) -> int:
        """Resident bytes — the O(#state) footprint of Section III-A."""
        return self.last.nbytes + self.last_w.nbytes

    def decompose(self, state_index: int) -> tuple[int, int]:
        """Split a flat state index into its (position, affixture) pair.

        For first-order models the affixture is empty (returned as 0);
        for second-order models the position is the bucket node and the
        affixture the rank within its CSR row; for metapath2vec the
        affixture is the metapath target type.
        """
        model = self._model
        if model.order == 1:
            per_node = self.size // self._graph.num_nodes
            if per_node > 1:  # metapath2vec: idx = v * |Φ| + T
                return state_index // per_node, state_index % per_node
            return state_index, 0
        # second-order: idx is a directed edge offset in the source's row
        src = int(np.searchsorted(self._graph.offsets, state_index, side="right") - 1)
        return src, state_index - int(self._graph.offsets[src])

    def __repr__(self) -> str:
        return f"ChainStore(size={self.size}, initialized={self.num_initialized})"
