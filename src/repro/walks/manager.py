"""Sampler management: the flat chain store behind Fig. 4's 2D layout.

The paper manages one M-H edge sampler per walker state and needs O(1)
lookup from a state to its sampler. Its answer is a 2D (position,
affixture) decomposition: all states sharing a *position* (a node) form a
bucket, and the *affixture* (the model-specific remainder: predecessor
rank, metapath type, nothing) indexes within the bucket.

Because each sampler's entire mutable content is one integer (LAST_x, the
edge offset of its chain's current sample), the whole manager collapses to
a single int64 array indexed by the model's flat state index — the
densest possible realisation of the 2D layout. One deviation from the
figure, documented here: second-order states are indexed by the *taken*
directed edge (bucket = previous node, affixture = rank of the current
node in its row) rather than by the reverse edge. Both are bijections onto
[0, |E|) with O(1) lookup; ours avoids a per-step binary search.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import NO_EDGE
from repro.sampling.memory_model import mh_bytes


class ChainStore:
    """LAST_x storage for every M-H chain of a (graph, model) pair.

    Shared between the scalar sampler and the vectorized engine so chains
    persist across walk waves (the paper's samplers live for the whole
    training run and are initialised once, on first query).
    """

    def __init__(self, graph, model, *, budget=None):
        self.size = int(model.state_space_size(graph))
        if budget is not None:
            budget.charge(mh_bytes(graph, model), "mh-chains")
        self.last = np.full(self.size, NO_EDGE, dtype=np.int64)
        self._graph = graph
        self._model = model

    @property
    def num_initialized(self) -> int:
        """Chains that have been touched (lazily initialised) so far."""
        return int((self.last != NO_EDGE).sum())

    def reset(self) -> None:
        """Forget every chain position."""
        self.last.fill(NO_EDGE)

    def memory_bytes(self) -> int:
        """Resident bytes — the O(#state) footprint of Section III-A."""
        return self.last.nbytes

    def decompose(self, state_index: int) -> tuple[int, int]:
        """Split a flat state index into its (position, affixture) pair.

        For first-order models the affixture is empty (returned as 0);
        for second-order models the position is the bucket node and the
        affixture the rank within its CSR row; for metapath2vec the
        affixture is the metapath target type.
        """
        model = self._model
        if model.order == 1:
            per_node = self.size // self._graph.num_nodes
            if per_node > 1:  # metapath2vec: idx = v * |Φ| + T
                return state_index // per_node, state_index % per_node
            return state_index, 0
        # second-order: idx is a directed edge offset in the source's row
        src = int(np.searchsorted(self._graph.offsets, state_index, side="right") - 1)
        return src, state_index - int(self._graph.offsets[src])

    def __repr__(self) -> str:
        return f"ChainStore(size={self.size}, initialized={self.num_initialized})"
