"""One-vs-rest L2-regularised logistic regression on scipy's L-BFGS.

The classifier the NRL literature (and the paper's Fig. 5) uses on top of
node embeddings. Each class gets an independent binary logistic model;
training minimises the mean log-loss plus an L2 penalty with analytic
gradients, optimised by ``scipy.optimize.minimize(method="L-BFGS-B")``.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.errors import EvaluationError


def _binary_loss_grad(params, features, targets, l2):
    w = params[:-1]
    b = params[-1]
    z = features @ w + b
    # stable log(1 + exp(-|z|)) formulation
    p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
    n = targets.size
    loss = float(
        np.mean(np.logaddexp(0.0, z) - targets * z) + 0.5 * l2 * (w @ w) / n
    )
    err = p - targets
    grad_w = features.T @ err / n + l2 * w / n
    grad_b = float(err.mean())
    return loss, np.concatenate([grad_w, [grad_b]])


class LogisticRegressionOVR:
    """One-vs-rest logistic regression over an indicator label matrix.

    Parameters
    ----------
    l2:
        L2 penalty weight (per-sample scaled).
    max_iter:
        L-BFGS iteration cap per class.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 200):
        if l2 < 0:
            raise EvaluationError("l2 must be >= 0")
        self.l2 = float(l2)
        self.max_iter = int(max_iter)
        self.weights_: np.ndarray | None = None  # (num_classes, dim)
        self.bias_: np.ndarray | None = None  # (num_classes,)

    def fit(self, features: np.ndarray, y: np.ndarray) -> "LogisticRegressionOVR":
        """Train one binary model per column of the indicator matrix ``y``."""
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y, dtype=bool)
        if features.ndim != 2 or y.ndim != 2 or features.shape[0] != y.shape[0]:
            raise EvaluationError("features and labels must align")
        if features.shape[0] == 0:
            raise EvaluationError("cannot fit on an empty training set")
        num_classes = y.shape[1]
        dim = features.shape[1]
        self.weights_ = np.zeros((num_classes, dim))
        self.bias_ = np.zeros(num_classes)
        for cls in range(num_classes):
            targets = y[:, cls].astype(np.float64)
            if targets.min() == targets.max():
                # degenerate class: constant predictor via bias only
                frac = float(targets.mean())
                self.bias_[cls] = 30.0 if frac >= 0.5 else -30.0
                continue
            x0 = np.zeros(dim + 1)
            result = optimize.minimize(
                _binary_loss_grad,
                x0,
                args=(features, targets, self.l2),
                method="L-BFGS-B",
                jac=True,
                options={"maxiter": self.max_iter},
            )
            self.weights_[cls] = result.x[:-1]
            self.bias_[cls] = result.x[-1]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw per-class scores ``(num_samples, num_classes)``."""
        if self.weights_ is None:
            raise EvaluationError("classifier is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights_.T + self.bias_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class sigmoid probabilities."""
        z = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
