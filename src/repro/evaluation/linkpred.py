"""Link prediction over node embeddings (evaluation extension).

The node2vec paper's protocol: hide a fraction of edges, learn embeddings
on the remaining graph, and classify node pairs (held-out edges vs sampled
non-edges) from element-wise combinations of their endpoint embeddings.
Reported as ROC-AUC.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.evaluation.logistic import LogisticRegressionOVR
from repro.evaluation.metrics import roc_auc
from repro.graph.builder import from_edge_arrays
from repro.utils.rng import as_rng

_OPERATORS = ("hadamard", "average", "l1", "l2")


def edge_features(vectors, pairs: np.ndarray, operator: str = "hadamard") -> np.ndarray:
    """Combine endpoint embeddings into edge features."""
    if operator not in _OPERATORS:
        raise EvaluationError(f"operator must be one of {_OPERATORS}")
    a = vectors.matrix_for(pairs[:, 0], missing="zeros")
    b = vectors.matrix_for(pairs[:, 1], missing="zeros")
    if operator == "hadamard":
        return a * b
    if operator == "average":
        return (a + b) / 2.0
    if operator == "l1":
        return np.abs(a - b)
    return (a - b) ** 2


def split_edges(graph, *, test_fraction: float = 0.3, seed=None):
    """Hide a fraction of undirected edges for evaluation.

    Returns ``(train_graph, test_pairs)`` where ``test_pairs`` are the
    hidden undirected edges as an ``(k, 2)`` array. Only one direction of
    each undirected edge is considered for hiding; the training graph
    keeps both directions of every retained edge.
    """
    if not 0 < test_fraction < 1:
        raise EvaluationError("test_fraction must be in (0, 1)")
    rng = as_rng(seed)
    src, dst, w = graph.edge_list()
    forward = src < dst
    f_src, f_dst, f_w = src[forward], dst[forward], w[forward]
    k = f_src.size
    num_test = max(int(round(test_fraction * k)), 1)
    perm = rng.permutation(k)
    test_sel = perm[:num_test]
    train_sel = perm[num_test:]
    train_graph = from_edge_arrays(
        f_src[train_sel],
        f_dst[train_sel],
        f_w[train_sel] if graph.is_weighted else None,
        num_nodes=graph.num_nodes,
        directed=False,
        duplicate_policy="first",
    )
    test_pairs = np.stack([f_src[test_sel], f_dst[test_sel]], axis=1)
    return train_graph, test_pairs


def sample_non_edges(graph, count: int, *, seed=None) -> np.ndarray:
    """Uniformly sample ``count`` node pairs that are not edges."""
    rng = as_rng(seed)
    n = graph.num_nodes
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    while filled < count:
        need = (count - filled) * 2 + 8
        a = rng.integers(0, n, size=need)
        b = rng.integers(0, n, size=need)
        ok = (a != b) & ~graph.has_edge_batch(a, b)
        take = min(int(ok.sum()), count - filled)
        sel = np.flatnonzero(ok)[:take]
        out[filled : filled + take, 0] = a[sel]
        out[filled : filled + take, 1] = b[sel]
        filled += take
    return out


def link_prediction_experiment(
    graph,
    embed_fn,
    *,
    test_fraction: float = 0.3,
    operator: str = "hadamard",
    seed=None,
) -> dict:
    """End-to-end link prediction.

    ``embed_fn(train_graph) -> KeyedVectors`` learns embeddings on the
    training graph (so test edges are never seen). Returns AUC of a
    logistic classifier and of the raw feature scores.
    """
    rng = as_rng(seed)
    train_graph, pos_pairs = split_edges(graph, test_fraction=test_fraction, seed=rng)
    neg_pairs = sample_non_edges(graph, pos_pairs.shape[0], seed=rng)
    vectors = embed_fn(train_graph)

    pairs = np.concatenate([pos_pairs, neg_pairs])
    labels = np.concatenate(
        [np.ones(pos_pairs.shape[0], dtype=bool), np.zeros(neg_pairs.shape[0], dtype=bool)]
    )
    features = edge_features(vectors, pairs, operator)
    perm = rng.permutation(labels.size)
    cut = labels.size // 2
    train_idx, test_idx = perm[:cut], perm[cut:]
    clf = LogisticRegressionOVR(l2=1.0)
    clf.fit(features[train_idx], labels[train_idx, None])
    scores = clf.decision_function(features[test_idx])[:, 0]
    return {
        "auc": roc_auc(labels[test_idx], scores),
        "num_positive": int(pos_pairs.shape[0]),
        "num_negative": int(neg_pairs.shape[0]),
        "operator": operator,
    }
