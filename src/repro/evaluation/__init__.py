"""Downstream evaluation: node classification and link prediction.

The paper's accuracy study (Fig. 5) runs multi-label node classification
with a one-vs-rest logistic classifier over the learned embeddings,
sweeping the training-label fraction and reporting micro-/macro-F1 — the
protocol introduced by the DeepWalk paper. This package implements that
protocol from scratch (numpy + scipy optimiser) plus a link-prediction
task as an extension.
"""

from repro.evaluation.classification import (
    classification_sweep,
    evaluate_split,
    top_k_predictions,
)
from repro.evaluation.clustering import (
    clustering_experiment,
    kmeans,
    normalized_mutual_information,
)
from repro.evaluation.linkpred import link_prediction_experiment
from repro.evaluation.logistic import LogisticRegressionOVR
from repro.evaluation.metrics import (
    accuracy,
    macro_f1,
    micro_f1,
    roc_auc,
)

__all__ = [
    "LogisticRegressionOVR",
    "micro_f1",
    "macro_f1",
    "accuracy",
    "roc_auc",
    "classification_sweep",
    "evaluate_split",
    "top_k_predictions",
    "link_prediction_experiment",
    "clustering_experiment",
    "kmeans",
    "normalized_mutual_information",
]
