"""Clustering evaluation: k-means over embeddings + NMI against labels.

Network clustering is one of the applications motivating the paper's
introduction. This module provides a dependency-free evaluation path:
Lloyd's k-means (k-means++ seeding) on the embedding vectors and
normalised mutual information against ground-truth communities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.utils.rng import as_rng


def kmeans(features: np.ndarray, k: int, *, max_iter: int = 100, seed=None):
    """Lloyd's algorithm with k-means++ initialisation.

    Returns ``(assignments, centers, inertia)``.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[0] < k:
        raise EvaluationError("need a 2-D feature matrix with at least k rows")
    if k < 1:
        raise EvaluationError("k must be >= 1")
    rng = as_rng(seed)
    n = features.shape[0]

    # k-means++ seeding
    centers = np.empty((k, features.shape[1]))
    centers[0] = features[rng.integers(n)]
    closest_sq = ((features - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[j:] = features[rng.integers(0, n, size=k - j)]
            break
        probs = closest_sq / total
        centers[j] = features[rng.choice(n, p=probs)]
        closest_sq = np.minimum(closest_sq, ((features - centers[j]) ** 2).sum(axis=1))

    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(max_iter):
        # squared distances via the expansion ||x||^2 - 2 x.c + ||c||^2
        cross = features @ centers.T
        sq = (features**2).sum(axis=1, keepdims=True) - 2 * cross + (centers**2).sum(axis=1)
        new_assignments = np.argmin(sq, axis=1)
        if np.array_equal(new_assignments, assignments) and __ > 0:
            break
        assignments = new_assignments
        for j in range(k):
            members = features[assignments == j]
            if members.shape[0]:
                centers[j] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the worst-fit point
                centers[j] = features[int(np.argmax(sq.min(axis=1)))]
    inertia = float(np.min(sq, axis=1).sum())
    return assignments, centers, inertia


def normalized_mutual_information(labels_a, labels_b) -> float:
    """NMI (arithmetic normalisation) between two partitions."""
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise EvaluationError("partitions must be non-empty aligned 1-D arrays")
    n = a.size
    ka, kb = int(a.max()) + 1, int(b.max()) + 1
    contingency = np.zeros((ka, kb))
    np.add.at(contingency, (a, b), 1.0)
    pa = contingency.sum(axis=1) / n
    pb = contingency.sum(axis=0) / n
    pab = contingency / n
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = pab / np.outer(pa, pb)
        terms = np.where(pab > 0, pab * np.log(ratio), 0.0)
    mi = float(terms.sum())

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pa), entropy(pb)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    denom = (ha + hb) / 2.0
    if denom == 0.0:
        return 0.0
    return mi / denom


def clustering_experiment(embeddings, labels, *, seed=None) -> dict:
    """Cluster labeled nodes' embeddings into #classes groups, report NMI.

    Only meaningful for single-label data (partition vs partition).
    """
    if labels.is_multilabel:
        raise EvaluationError("clustering NMI needs single-label ground truth")
    features = embeddings.matrix_for(labels.node_ids, missing="zeros")
    truth = labels.class_ids()
    k = labels.num_classes
    assignments, __, inertia = kmeans(features, k, seed=seed)
    return {
        "nmi": normalized_mutual_information(truth, assignments),
        "num_clusters": k,
        "inertia": inertia,
    }
