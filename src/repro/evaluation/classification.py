"""The node-classification protocol of Fig. 5.

Following the DeepWalk evaluation convention the paper inherits:

1. learn embeddings unsupervised;
2. for each training fraction f, sample f of the labeled nodes, train a
   one-vs-rest logistic classifier on their embeddings;
3. on the held-out nodes, predict for each node as many labels as it
   truly has (the *top-k* protocol — k is the node's true label count),
   sidestepping threshold calibration;
4. report micro-F1 and macro-F1, averaged over shuffles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.evaluation.logistic import LogisticRegressionOVR
from repro.evaluation.metrics import macro_f1, micro_f1
from repro.utils.rng import as_rng
from repro.utils.validation import check_fraction


def top_k_predictions(scores: np.ndarray, label_counts: np.ndarray) -> np.ndarray:
    """Select each row's ``label_counts[i]`` highest-scoring classes.

    The standard multi-label NRL protocol: the evaluator reveals how many
    labels each test node has and the classifier ranks which ones.
    """
    scores = np.asarray(scores, dtype=np.float64)
    label_counts = np.asarray(label_counts, dtype=np.int64)
    if scores.shape[0] != label_counts.size:
        raise EvaluationError("scores and label_counts must align")
    n, c = scores.shape
    pred = np.zeros((n, c), dtype=bool)
    order = np.argsort(-scores, axis=1)
    col_rank = np.empty_like(order)
    rows = np.arange(n)[:, None]
    col_rank[rows, order] = np.arange(c)[None, :]
    return col_rank < label_counts[:, None]


def evaluate_split(
    features: np.ndarray,
    y: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    *,
    l2: float = 1.0,
) -> dict:
    """Train on one split and score the held-out nodes."""
    clf = LogisticRegressionOVR(l2=l2)
    clf.fit(features[train_idx], y[train_idx])
    scores = clf.decision_function(features[test_idx])
    y_test = y[test_idx]
    pred = top_k_predictions(scores, y_test.sum(axis=1))
    return {
        "micro_f1": micro_f1(y_test, pred),
        "macro_f1": macro_f1(y_test, pred),
        "num_train": int(train_idx.size),
        "num_test": int(test_idx.size),
    }


def classification_sweep(
    embeddings,
    labels,
    *,
    train_fractions=(0.1, 0.3, 0.5, 0.7, 0.9),
    trials: int = 3,
    l2: float = 1.0,
    seed=None,
) -> list[dict]:
    """Fig. 5's x-axis sweep: F1 vs training-label fraction.

    Parameters
    ----------
    embeddings:
        :class:`~repro.embedding.keyed_vectors.KeyedVectors`.
    labels:
        :class:`~repro.graph.labels.NodeLabels` (single- or multi-label).
    train_fractions:
        fractions of labeled nodes used for training.
    trials:
        random shuffles averaged per fraction.

    Returns one dict per fraction with mean/std micro- and macro-F1.
    """
    rng = as_rng(seed)
    y = labels.indicator_matrix()
    features = embeddings.matrix_for(labels.node_ids, missing="zeros")
    n = labels.num_labeled
    results = []
    for fraction in train_fractions:
        check_fraction("train_fraction", fraction)
        micro_scores = []
        macro_scores = []
        for __ in range(trials):
            perm = rng.permutation(n)
            cut = max(int(round(fraction * n)), 1)
            if cut >= n:
                cut = n - 1
            out = evaluate_split(features, y, perm[:cut], perm[cut:], l2=l2)
            micro_scores.append(out["micro_f1"])
            macro_scores.append(out["macro_f1"])
        results.append(
            {
                "train_fraction": float(fraction),
                "micro_f1_mean": float(np.mean(micro_scores)),
                "micro_f1_std": float(np.std(micro_scores)),
                "macro_f1_mean": float(np.mean(macro_scores)),
                "macro_f1_std": float(np.std(macro_scores)),
                "trials": trials,
            }
        )
    return results
