"""Classification metrics: micro/macro F1 (Fig. 5's y-axes), accuracy, AUC.

All metrics operate on boolean indicator matrices ``(num_samples,
num_classes)`` so single-label and multi-label tasks share one code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape or y_true.ndim != 2:
        raise EvaluationError(
            f"y_true and y_pred must be equal-shape 2-D indicators, "
            f"got {y_true.shape} vs {y_pred.shape}"
        )
    return y_true, y_pred


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 over globally pooled true/false positives (label-frequency weighted)."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = float((y_true & y_pred).sum())
    fp = float((~y_true & y_pred).sum())
    fn = float((y_true & ~y_pred).sum())
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 0.0
    return 2 * tp / denom


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 (sensitive to rare classes).

    Classes absent from both truth and prediction contribute F1 = 0,
    matching the strict convention used by the NRL literature.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    tp = (y_true & y_pred).sum(axis=0).astype(np.float64)
    fp = (~y_true & y_pred).sum(axis=0).astype(np.float64)
    fn = (y_true & ~y_pred).sum(axis=0).astype(np.float64)
    denom = 2 * tp + fp + fn
    f1 = np.zeros(y_true.shape[1])
    nonzero = denom > 0
    f1[nonzero] = 2 * tp[nonzero] / denom[nonzero]
    return float(f1.mean()) if f1.size else 0.0


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Exact-match ratio (all labels of a sample correct)."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.shape[0] == 0:
        return 0.0
    return float((y_true == y_pred).all(axis=1).mean())


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC-AUC via the Mann-Whitney rank statistic.

    Ties receive average ranks. Returns 0.5 when one class is absent.
    """
    y_true = np.asarray(y_true, dtype=bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise EvaluationError("y_true and scores must align")
    pos = int(y_true.sum())
    neg = y_true.size - pos
    if pos == 0 or neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # average ranks over tied groups
    boundaries = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_scores)) + 1, [scores.size])
    )
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        ranks[order[lo:hi]] = 0.5 * (lo + hi - 1) + 1.0
    rank_sum = float(ranks[y_true].sum())
    return (rank_sum - pos * (pos + 1) / 2.0) / (pos * neg)
