"""Built-in lint rules RPR001-RPR006.

This module is the ``home`` of :data:`~repro.analysis.core.LINT_REGISTRY`
— importing it registers the rules, and the registry imports it lazily
on first lookup, exactly like the sampler/codec registries load theirs.

Each rule encodes one repo invariant that a generic linter cannot see;
the module docstrings below say *why* the invariant exists, because a
finding a maintainer cannot justify gets suppressed instead of fixed.
"""

from __future__ import annotations

import ast

from repro.analysis.core import LintRule, register_rule
from repro.analysis.project import (
    FuncSig,
    dotted_name,
    relpath_matches,
)

# ---------------------------------------------------------------------------
# RPR001: rng-discipline
# ---------------------------------------------------------------------------

#: numpy global-state RNG surface (module-level functions + RandomState).
_LEGACY_RNG = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "lognormal", "binomial", "poisson", "beta", "gamma",
    "exponential", "geometric", "multinomial", "dirichlet", "bytes",
    "get_state", "set_state", "RandomState",
})

#: the one module allowed to touch numpy RNG construction directly.
_RNG_HOME = ("utils/rng.py",)


@register_rule("rng-discipline", code="RPR001")
class RngDisciplineRule(LintRule):
    """No numpy global-state RNG; seeds flow through ``as_rng``.

    Every reproducibility guarantee in this repo — seeded walks, the
    streaming/dynamic bitwise-parity tests, spawn-keyed per-walker
    generators — assumes all randomness descends from one
    ``SeedSequence``. A single ``np.random.seed()`` or stray
    ``default_rng()`` reintroduces hidden global state (or fresh OS
    entropy) and silently breaks determinism for every caller sharing
    the process.
    """

    severity = "error"
    description = "numpy RNG construction outside repro.utils.rng"

    def check_module(self, module, project):
        if relpath_matches(module.relpath, _RNG_HOME):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = module.resolve(name)
            if resolved.startswith("numpy.random."):
                leaf = resolved[len("numpy.random."):]
                if leaf in _LEGACY_RNG:
                    yield self.finding(
                        module, node,
                        f"numpy.random.{leaf} uses process-global RNG state; "
                        "derive a Generator via repro.utils.rng.as_rng / "
                        "spawn_rngs instead",
                    )
                elif leaf == "default_rng":
                    how = (
                        "seeds from fresh OS entropy (non-reproducible)"
                        if not node.args and not node.keywords
                        else "bypasses the repo's single SeedSequence root"
                    )
                    yield self.finding(
                        module, node,
                        f"numpy.random.default_rng {how}; construct "
                        "generators via repro.utils.rng.as_rng / spawn_rngs",
                    )


# ---------------------------------------------------------------------------
# RPR002: registry-contract
# ---------------------------------------------------------------------------

#: family -> methods a registered class must provide (directly or via a
#: project-resolvable base). Families whose registrations are factory
#: functions (vectorized samplers) are checked only when the registered
#: target resolves to a class.
_FAMILY_PROTOCOLS = {
    "model": ("calculate_weight", "batch_dynamic_weight"),
    "sampler": ("step",),
    "scalar sampler": ("sample", "memory_bytes"),
    "initialization strategy": ("initialize",),
    "codec": ("fit", "encode", "decode", "state", "from_state"),
    "index": ("topk", "memory_bytes"),
    "lint rule": (),
    "partitioner": ("partition",),
}


@register_rule("registry-contract", code="RPR002")
class RegistryContractRule(LintRule):
    """Registered components honour their family's contract.

    A registry entry is a promise: ``create()`` will hand back an object
    the engine can drive, and ``param_spec`` tells the CLI/RunSpec layer
    which constructor knobs exist and what they default to. A missing
    protocol method or a ``param_spec`` key the ``__init__`` does not
    accept only surfaces at run time, deep inside a training run.
    """

    severity = "error"
    description = "registration vs implementation contract drift"

    def check_project(self, project):
        yield from self._check_collisions(project)
        for reg in project.registrations:
            info = project.lookup_class(reg.target)
            if info is None:
                continue  # factory / function / external target
            yield from self._check_protocol(project, reg, info)
            if reg.param_spec is not None:
                yield from self._check_param_spec(project, reg, info)

    def _check_collisions(self, project):
        taken: dict[tuple[str, str], object] = {}
        for reg in project.registrations:
            if reg.name is None:
                continue
            for token in (reg.name, *reg.aliases):
                key = (reg.family, token)
                prior = taken.get(key)
                if prior is not None and not reg.replace:
                    yield self.finding(
                        reg.module, reg,
                        f"{reg.family} name/alias {token!r} already "
                        f"registered at {prior.module.relpath}:{prior.lineno} "
                        "(pass replace=True to override deliberately)",
                    )
                elif prior is None:
                    taken[key] = reg

    def _check_protocol(self, project, reg, info):
        required = _FAMILY_PROTOCOLS.get(reg.family, ())
        if not required:
            return
        _, complete = project.base_chain(info)
        for method in required:
            found = project.find_method(info, method)
            if found is not None and not found[1].is_abstract:
                continue
            if found is None and not complete:
                continue  # an unresolved base may provide it
            yield self.finding(
                reg.module, reg,
                f"{reg.family} {reg.name or info.name!r}: registered class "
                f"{info.qualname} does not implement required method "
                f"{method}()",
            )

    def _check_param_spec(self, project, reg, info):
        found = project.find_method(info, "__init__")
        if found is None:
            _, complete = project.base_chain(info)
            if not complete:
                return
            sig = None
        else:
            sig = found[1]
        for key, spec in reg.param_spec.items():
            if sig is None or sig.has_kwarg:
                accepted = True
            else:
                accepted = key in sig.callable_positional or key in sig.kwonly
            if not accepted:
                yield self.finding(
                    reg.module, reg,
                    f"{reg.family} {reg.name!r}: param_spec key {key!r} is "
                    f"not a parameter of {info.qualname}.__init__",
                )
                continue
            if (
                sig is not None
                and isinstance(spec, dict)
                and "default" in spec
                and key in sig.default_literals
                and spec["default"] != sig.default_literals[key]
            ):
                yield self.finding(
                    reg.module, reg,
                    f"{reg.family} {reg.name!r}: param_spec default for "
                    f"{key!r} is {spec['default']!r} but "
                    f"{info.qualname}.__init__ defaults it to "
                    f"{sig.default_literals[key]!r}",
                )


# ---------------------------------------------------------------------------
# RPR003: protocol-signature-drift
# ---------------------------------------------------------------------------

#: methods whose overrides must stay call-compatible with their base.
_CHECKED_METHODS = frozenset({
    "on_delta", "step", "encode", "decode", "sample", "fit",
    "initialize", "topk", "from_state", "_refresh",
})

#: the canonical dynamic-update protocol every ``on_delta`` answers to.
_ON_DELTA_CANON = FuncSig(
    name="on_delta",
    lineno=0,
    positional=("self", "plan", "model"),
    pos_defaults=1,
    kwonly=(),
    kwonly_required=(),
    has_vararg=False,
    has_kwarg=False,
)


def signature_problems(base: FuncSig, override: FuncSig) -> list[str]:
    """Why ``override`` cannot take every call ``base`` accepts.

    Positional names must match in order (callers use keywords);
    override extras need defaults; base keyword-only names must be
    accepted; override-required keyword-onlys must exist in the base;
    ``*args``/``**kwargs`` in the base require the same in the override.
    """
    if override.has_vararg and override.has_kwarg:
        return []  # accepts anything
    problems: list[str] = []
    bpos = base.callable_positional
    opos = override.callable_positional
    shared = min(len(bpos), len(opos))
    for i in range(shared):
        if bpos[i] != opos[i]:
            problems.append(
                f"positional parameter {i + 1} is {opos[i]!r}, base has "
                f"{bpos[i]!r} (keyword callers break)"
            )
    if len(opos) < len(bpos) and not override.has_vararg:
        for name in bpos[len(opos):]:
            if name not in override.kwonly:
                problems.append(f"missing base parameter {name!r}")
    b_required = len(bpos) - base.pos_defaults
    o_required = len(opos) - override.pos_defaults
    if o_required > max(b_required, 0):
        for name in opos[max(b_required, 0):o_required]:
            if name in bpos:
                problems.append(
                    f"parameter {name!r} is optional for base callers but "
                    "required here"
                )
            else:
                problems.append(
                    f"extra required parameter {name!r} (base callers omit it)"
                )
    for name in base.kwonly:
        accepted = (
            name in override.kwonly
            or name in opos
            or override.has_kwarg
        )
        if not accepted:
            problems.append(f"missing base keyword-only parameter {name!r}")
    base_names = set(bpos) | set(base.kwonly)
    for name in override.kwonly_required:
        if name not in base_names:
            problems.append(
                f"extra required keyword-only parameter {name!r}"
            )
    if base.has_vararg and not override.has_vararg:
        problems.append("base accepts *args, override does not")
    if base.has_kwarg and not override.has_kwarg:
        problems.append("base accepts **kwargs, override does not")
    return problems


@register_rule("signature-drift", code="RPR003")
class SignatureDriftRule(LintRule):
    """Overrides stay call-compatible with the base / canonical protocol.

    The engines dispatch on these methods polymorphically —
    ``stepper.on_delta(plan, model=model)`` must work for every stepper
    ever registered. Signature drift (the pre-tentpole ``plan`` vs
    ``graph, delta`` vs ``plan, model, state_mask`` spread) turns a
    working call site into a ``TypeError`` the moment the registry
    resolves a different implementation.
    """

    severity = "error"
    description = "method override incompatible with base signature"

    def check_module(self, module, project):
        for info in module.classes.values():
            for name, sig in info.methods.items():
                if name == "on_delta":
                    for problem in signature_problems(_ON_DELTA_CANON, sig):
                        yield self.finding(
                            module, sig,
                            f"{info.name}.on_delta is not call-compatible "
                            f"with the canonical on_delta(plan, model=None) "
                            f"protocol: {problem}",
                        )
                    continue
                if name not in _CHECKED_METHODS:
                    continue
                inherited = project.inherited_method(info, name)
                if inherited is None:
                    continue
                owner, base_sig = inherited
                for problem in signature_problems(base_sig, sig):
                    yield self.finding(
                        module, sig,
                        f"{info.name}.{name} drifts from "
                        f"{owner.name}.{name}: {problem}",
                    )


# ---------------------------------------------------------------------------
# RPR004: error-taxonomy
# ---------------------------------------------------------------------------

#: builtin exceptions library code must not raise directly — each has a
#: ``ReproError`` counterpart carrying the taxonomy the CLI/RunSpec
#: error handling keys on.
_FORBIDDEN_RAISES = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "AttributeError",
    "RuntimeError", "Exception", "BaseException", "LookupError",
    "ArithmeticError", "OSError", "IOError", "EOFError",
    "ZeroDivisionError", "OverflowError", "FloatingPointError",
    # the connection-layer builtins: the serving tier maps these to its
    # typed wire errors (ServerError and friends) instead of raising raw
    "ConnectionError", "ConnectionResetError", "ConnectionAbortedError",
    "ConnectionRefusedError", "BrokenPipeError", "TimeoutError",
})

_BROAD_EXCEPTS = frozenset({"Exception", "BaseException"})

#: connection-layer modules: code speaking sockets/pipes, where except
#: tuples historically accreted redundant ``ConnectionError`` subclasses
#: (``except (OSError, BrokenPipeError)`` — the second member is dead).
_CONNECTION_MODULES = (
    "serving/server.py",
    "serving/framing.py",
    "sharding/transport.py",
    "sharding/socket_worker.py",
    "sharding/wire.py",
)

#: builtin exception -> its builtin base chain; enough of the OSError
#: family to spot a subclass shadowed by its base in the same tuple.
_BUILTIN_EXC_BASES = {
    "BrokenPipeError": ("ConnectionError", "OSError"),
    "ConnectionResetError": ("ConnectionError", "OSError"),
    "ConnectionAbortedError": ("ConnectionError", "OSError"),
    "ConnectionRefusedError": ("ConnectionError", "OSError"),
    "ConnectionError": ("OSError",),
    "TimeoutError": ("OSError",),
    "InterruptedError": ("OSError",),
    "IOError": ("OSError",),
    "EnvironmentError": ("OSError",),
}

#: dunder -> builtins its *protocol* requires (``__getattr__`` must raise
#: AttributeError for ``hasattr`` to work; these are not taxonomy leaks).
_DUNDER_PROTOCOL_RAISES = {
    "__getattr__": frozenset({"AttributeError"}),
    "__getattribute__": frozenset({"AttributeError"}),
    "__setattr__": frozenset({"AttributeError"}),
    "__delattr__": frozenset({"AttributeError"}),
    "__getitem__": frozenset({"KeyError", "IndexError", "TypeError"}),
    "__delitem__": frozenset({"KeyError", "IndexError"}),
    "__missing__": frozenset({"KeyError"}),
    "__index__": frozenset({"TypeError"}),
}


@register_rule("error-taxonomy", code="RPR004")
class ErrorTaxonomyRule(LintRule):
    """Raises use the ``ReproError`` taxonomy; no swallowed broad excepts.

    The CLI and the RunSpec runner catch :class:`~repro.errors.ReproError`
    to turn failures into clean exit codes; a bare ``ValueError`` from
    library code escapes that net as a traceback. Conversely a broad
    ``except Exception`` that does not re-raise converts genuine bugs
    into silent misbehaviour. Classes *named* like errors must also join
    the taxonomy: an ``XyzError`` outside ``ReproError`` can never carry
    the stable wire ``code`` the query server's protocol responses key
    on, and callers catching the base class would silently miss it.
    """

    severity = "error"
    description = "ad-hoc builtin raises / broad exception handling"

    def check_module(self, module, project):
        yield from self._visit(module, project, module.tree, None)
        for info in module.classes.values():
            if not info.name.endswith("Error") or info.name == "ReproError":
                continue
            if project.derives_from(info, "ReproError") is False:
                yield self.finding(
                    module, info,
                    f"class {info.name} does not derive from ReproError; "
                    "error types must join the repro.errors taxonomy so "
                    "typed handling (CLI exit codes, server wire codes) "
                    "sees them",
                )

    def _visit(self, module, project, node, func_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(module, project, child, child.name)
                continue
            if isinstance(child, ast.Raise):
                yield from self._check_raise(module, project, child, func_name)
            elif isinstance(child, ast.ExceptHandler):
                yield from self._check_handler(module, child)
            yield from self._visit(module, project, child, func_name)

    def _check_raise(self, module, project, node, func_name=None):
        if node.exc is None:
            return  # bare re-raise — always fine
        target = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
        name = dotted_name(target)
        if name is None:
            return  # raise type(exc)(...) and friends — unknowable
        resolved = module.resolve(name)
        leaf = resolved.split(".")[-1]
        if func_name in _DUNDER_PROTOCOL_RAISES and leaf in _DUNDER_PROTOCOL_RAISES[func_name]:
            return
        if resolved in _FORBIDDEN_RAISES:
            yield self.finding(
                module, node,
                f"raises builtin {resolved}; use a ReproError subclass "
                f"(e.g. ConfigError for bad arguments, SerializationError "
                f"for format violations) so the CLI error handling sees it",
            )
            return
        info = project.lookup_class(resolved)
        if info is None:
            return  # external class — benefit of the doubt
        derives = project.derives_from(info, "ReproError")
        if derives is False:
            yield self.finding(
                module, node,
                f"raises {leaf}, which does not derive from ReproError; "
                "library errors must join the repro.errors taxonomy",
            )

    def _check_handler(self, module, node):
        if node.type is None:
            yield self.finding(
                module, node,
                "bare except: catches SystemExit/KeyboardInterrupt; name "
                "the exceptions (or `except Exception` with a re-raise)",
            )
            return
        types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        if len(types) > 1 and relpath_matches(module.relpath, _CONNECTION_MODULES):
            leaves = []
            for t in types:
                name = dotted_name(t)
                leaves.append(None if name is None else module.resolve(name).split(".")[-1])
            present = {leaf for leaf in leaves if leaf}
            for leaf in leaves:
                if leaf is None:
                    continue
                shadow = next(
                    (b for b in _BUILTIN_EXC_BASES.get(leaf, ()) if b in present), None
                )
                if shadow is not None:
                    yield self.finding(
                        module, node,
                        f"`except` tuple lists {leaf} alongside its base "
                        f"class {shadow}; the subclass is dead weight — "
                        "connection-layer handlers name each failure "
                        "class exactly once",
                    )
        for t in types:
            name = dotted_name(t)
            if name is None:
                continue
            if module.resolve(name) in _BROAD_EXCEPTS:
                reraises = any(
                    isinstance(child, ast.Raise) for child in ast.walk(node)
                )
                if reraises:
                    yield self.finding(
                        module, node,
                        f"broad `except {name}` — narrow to the exceptions "
                        "this block can actually recover from",
                        severity="warn",
                    )
                else:
                    yield self.finding(
                        module, node,
                        f"`except {name}` without re-raise swallows "
                        "unexpected failures; narrow it or re-raise",
                    )


# ---------------------------------------------------------------------------
# RPR005: serialization-dtype
# ---------------------------------------------------------------------------

#: format-defining modules: anything writing/reading bytes whose layout
#: other processes (or future versions) must reproduce.
_FORMAT_MODULES = ("serving/store.py", "serving/codec.py", "graph/io.py")

#: numpy constructor -> positional index where dtype may legally appear.
_DTYPE_FUNCS = {
    "frombuffer": 1,
    "fromfile": 1,
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "memmap": 1,
}


@register_rule("serialization-dtype", code="RPR005")
class SerializationDtypeRule(LintRule):
    """Format-defining numpy calls pass an explicit ``dtype=``.

    ``np.zeros(n)`` is float64 today, on this platform, under this numpy
    — the v1/v2 store format and codec byte layouts are only stable if
    every array that touches the wire states its dtype in source. A
    dtype-less ``frombuffer`` is a file-format bug waiting for a numpy
    default to shift.
    """

    severity = "error"
    description = "implicit dtype in serialization code"

    def check_module(self, module, project):
        if not relpath_matches(module.relpath, _FORMAT_MODULES):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = module.resolve(name)
            leaf = resolved.split(".")[-1]
            if leaf not in _DTYPE_FUNCS or not resolved.startswith("numpy."):
                continue
            pos = _DTYPE_FUNCS[leaf]
            has_dtype = len(node.args) > pos or any(
                kw.arg == "dtype" for kw in node.keywords
            )
            if not has_dtype:
                yield self.finding(
                    module, node,
                    f"{leaf}() without explicit dtype= in a format-defining "
                    "module; byte layouts must not depend on numpy defaults",
                )


# ---------------------------------------------------------------------------
# RPR006: hot-path-purity
# ---------------------------------------------------------------------------

#: the vectorized kernels: per-element Python here multiplies by |V|/|E|.
_KERNEL_MODULES = (
    "walks/vectorized.py",
    "sampling/alias.py",
    "walks/kernels/",
    "sharding/worker.py",
    "sharding/engine.py",
)

#: decorator leaves whose functions run compiled, not interpreted —
#: explicit Python loops inside them are the *point*, not a fallback.
_JIT_DECORATORS = frozenset({"njit", "jit"})

_ARRAY_PRODUCERS = frozenset({
    "flatnonzero", "nonzero", "unique", "arange", "argsort", "where",
})


def _mentions_array_size(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in ("size", "shape"):
            return True
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "len"
        ):
            return True
    return False


@register_rule("hot-path-purity", code="RPR006")
class HotPathPurityRule(LintRule):
    """Warn on per-element Python loops / ``tolist`` in kernel modules.

    The lock-step engine's whole premise is that each step costs a few
    numpy kernel launches, not |walkers| interpreter iterations. A
    ``for i in range(arr.size)`` or ``.tolist()`` in these modules is
    either setup code (fine — baseline it) or an accidental O(n)
    fallback on the sampling path (the thing this rule exists to catch).

    Functions decorated with ``@njit``/``@jit`` (numba) are exempt as a
    whole subtree: their element loops compile to machine code, so the
    explicit ``for i in range(n)`` / ``prange`` style is the idiom, not
    an interpreter fallback.
    """

    severity = "warn"
    description = "per-element Python in vectorized kernel modules"

    def check_module(self, module, project):
        if not relpath_matches(module.relpath, _KERNEL_MODULES):
            return
        jitted = self._jitted_nodes(module)
        for node in module.walk():
            if id(node) in jitted:
                continue
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tolist"
                ):
                    yield self.finding(
                        module, node,
                        ".tolist() materialises Python objects per element; "
                        "stay in numpy",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(module, node)

    @staticmethod
    def _jitted_nodes(module) -> set[int]:
        """ids of every AST node inside a ``@njit``/``@jit`` function."""
        exempt: set[int] = set()
        for node in module.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for dec in node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                name = dotted_name(target)
                if name and name.split(".")[-1] in _JIT_DECORATORS:
                    exempt.update(id(child) for child in ast.walk(node))
                    break
        return exempt

    def _check_loop(self, module, node):
        it = node.iter
        if not isinstance(it, ast.Call):
            return
        func = dotted_name(it.func)
        leaf = func.split(".")[-1] if func else None
        if leaf in ("enumerate", "zip"):
            yield self.finding(
                module, node,
                f"per-element {leaf}() loop in a kernel module; vectorize "
                "or hoist out of the hot path",
            )
        elif leaf == "range" and any(_mentions_array_size(a) for a in it.args):
            yield self.finding(
                module, node,
                "range() loop over an array extent in a kernel module; "
                "vectorize or hoist out of the hot path",
            )
        elif leaf in _ARRAY_PRODUCERS:
            yield self.finding(
                module, node,
                f"Python iteration over np.{leaf}() output in a kernel "
                "module; vectorize or hoist out of the hot path",
            )
