"""Baseline files: freeze accepted findings so CI only blocks new debt.

A baseline is a committed JSON document mapping finding fingerprints —
``(code, path, message)`` — to occurrence counts. Line numbers are
deliberately absent from the fingerprint (see
:meth:`repro.analysis.core.Finding.key`): edits move code, and a
position-keyed baseline would churn on every commit. Counts handle the
same message firing several times in one file: a baseline entry with
``count: 2`` absorbs up to two live occurrences; a third is new.

Workflow::

    python -m repro lint src/ --baseline .lint-baseline.json --update-baseline
    git add .lint-baseline.json          # accept current findings
    python -m repro lint src/ --baseline .lint-baseline.json
    # ... exits nonzero iff findings beyond the baseline appear
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

BASELINE_VERSION = 1

BaselineKey = tuple[str, str, str]


def baseline_from_findings(findings) -> dict[BaselineKey, int]:
    """Collapse findings into the fingerprint -> count mapping."""
    out: dict[BaselineKey, int] = {}
    for finding in findings:
        key = finding.key()
        out[key] = out.get(key, 0) + 1
    return out


def split_baseline(findings, baseline: dict[BaselineKey, int]):
    """Partition ``findings`` into (new, baselined) against the mapping."""
    budget = dict(baseline)
    new, baselined = [], []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined


def save_baseline(path, findings) -> None:
    """Write the findings' fingerprints to ``path`` as the baseline."""
    counts = baseline_from_findings(findings)
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {"code": code, "path": rel, "message": message, "count": count}
            for (code, rel, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def load_baseline(path) -> dict[BaselineKey, int]:
    """Read a baseline written by :func:`save_baseline`."""
    from repro.analysis.core import AnalysisError

    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    try:
        if doc["version"] != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {path}: unsupported version {doc['version']!r}"
            )
        out: dict[BaselineKey, int] = {}
        for item in doc["findings"]:
            key = (str(item["code"]), str(item["path"]), str(item["message"]))
            out[key] = out.get(key, 0) + int(item.get("count", 1))
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(f"baseline {path} is malformed: {exc}") from exc
    return out
