"""Lint engine: findings, rule base class, registry, and the runner.

The engine is two-phase. Phase one parses every target file into a
:class:`~repro.analysis.project.ModuleInfo` and assembles the
:class:`~repro.analysis.project.ProjectIndex`; phase two hands each rule
the whole project (once, via :meth:`LintRule.check_project`) and each
module (via :meth:`LintRule.check_module`). Rules therefore see
cross-file facts — class hierarchies, registrations — not just one AST.

Rules are components of :data:`LINT_REGISTRY`, the same
:class:`repro.registry.Registry` machinery that hosts models, samplers
and codecs, so third-party rules arrive through :func:`register_rule`
and are selectable by code or name from the CLI with no engine edits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.registry import Registry

#: Findings at these severities fail the lint unconditionally; ``warn``
#: findings fail only against a baseline (new-debt detection).
SEVERITIES = ("error", "warn")


class AnalysisError(ReproError):
    """A lint rule or the lint engine was misused or misconfigured."""


#: The rule registry. ``home`` points at the built-in rules module so the
#: first ``LINT_REGISTRY.create(...)`` / ``names()`` call loads RPR001-006
#: lazily, exactly like the sampler and codec registries.
LINT_REGISTRY = Registry(
    "lint rule", error_cls=AnalysisError, home="repro.analysis.rules"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic, addressable and fingerprint-stable.

    The fingerprint (:meth:`key`) deliberately excludes the line number:
    unrelated edits move lines constantly, and a baseline keyed on
    position would go stale on every commit. Identity is
    (code, file, message); multiple same-message findings in one file are
    baselined by count.
    """

    code: str
    rule: str
    severity: str
    path: str  # posix-style path relative to the lint root
    line: int
    col: int
    message: str

    def key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.severity}: {self.message} [{self.rule}]"
        )

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintRule:
    """Base class for lint rules.

    Subclasses set ``code`` (stable ``RPR...``/``RPX...`` identifier,
    unique across the registry), ``severity`` (``"error"`` or
    ``"warn"``) and implement :meth:`check_module` and/or
    :meth:`check_project`, yielding findings built with
    :meth:`finding`. ``name`` is injected at registration time from the
    registry name, so one rule class could in principle be registered
    under several names/configs.
    """

    code = "RPR000"
    severity = "error"
    name = "unnamed"  # set by the registry factory
    description = ""

    def check_module(self, module, project):
        """Yield findings for one module. Default: none."""
        return ()

    def check_project(self, project):
        """Yield findings needing the whole project. Default: none."""
        return ()

    # -- helpers --------------------------------------------------------
    def finding(self, module, node, message: str, *, severity: str | None = None) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", getattr(node, "col", 0)) + 1 if node is not None else 1
        return Finding(
            code=self.code,
            rule=self.name,
            severity=severity or self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
        )


def register_rule(name: str, *, code: str | None = None, aliases=(), replace: bool = False):
    """Class decorator registering a :class:`LintRule` subclass.

    ``code`` overrides the class attribute; the registered name becomes
    the rule's ``name``. Codes must be unique across registered rules —
    ``--select RPR004`` must be unambiguous.
    """

    def _register(cls):
        if not (isinstance(cls, type) and issubclass(cls, LintRule)):
            raise AnalysisError(
                f"@register_rule target must be a LintRule subclass, got {cls!r}"
            )
        if code is not None:
            cls.code = code
        cls.name = name
        if cls.severity not in SEVERITIES:
            raise AnalysisError(
                f"rule {name!r}: severity must be one of {SEVERITIES}, "
                f"got {cls.severity!r}"
            )
        LINT_REGISTRY.register(
            name,
            cls,
            aliases=aliases,
            replace=replace,
            code=cls.code,
            severity=cls.severity,
        )
        return cls

    return _register


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` pass."""

    findings: list[Finding]
    #: findings suppressed by the baseline (still real, just accepted)
    baselined: list[Finding]
    #: rule names that ran, in registry order
    rules: list[str]
    #: number of files parsed
    files: int
    #: files that failed to parse, as (path, message) pairs — these are
    #: engine-level errors and always fail the lint.
    parse_errors: list[tuple[str, str]]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    def failed(self, *, baseline_mode: bool) -> bool:
        """Should the CLI exit nonzero?

        Errors and parse failures always fail. Warnings fail only in
        baseline mode, where every finding in ``findings`` is by
        construction *new* relative to the committed baseline.
        """
        if self.parse_errors or self.errors:
            return True
        return baseline_mode and bool(self.warnings)


def iter_python_files(paths, *, root: Path) -> list[Path]:
    """Expand ``paths`` (files or directories) to sorted ``*.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            out.add(path)
        else:
            raise AnalysisError(f"lint path does not exist: {raw}")
    return sorted(out)


def _instantiate_rules(select, ignore) -> list[LintRule]:
    """Resolve ``--select`` / ``--ignore`` tokens (codes or names)."""
    from repro.analysis.project import ProjectIndex  # noqa: F401  (home import cycle guard)

    names = LINT_REGISTRY.names()  # triggers the lazy home import
    by_token: dict[str, str] = {}
    rules: list[tuple[str, type]] = []
    for name in names:
        entry = LINT_REGISTRY.entry(name)
        cls = entry.obj
        rules.append((name, cls))
        by_token[name.lower()] = name
        code = entry.capabilities.get("code", getattr(cls, "code", ""))
        if code:
            by_token[str(code).lower()] = name

    def _resolve(tokens, flag):
        chosen = set()
        for token in tokens or ():
            key = str(token).strip().lower()
            if key not in by_token:
                raise AnalysisError(
                    f"{flag}: unknown rule {token!r} "
                    f"(known: {', '.join(sorted(set(by_token)))})"
                )
            chosen.add(by_token[key])
        return chosen

    selected = _resolve(select, "--select")
    ignored = _resolve(ignore, "--ignore")
    active = []
    for name, cls in rules:
        if selected and name not in selected:
            continue
        if name in ignored:
            continue
        rule = cls()
        rule.name = name
        active.append(rule)
    return active


def run_lint(
    paths,
    *,
    root: Path | None = None,
    select=None,
    ignore=None,
    baseline: dict | None = None,
) -> LintReport:
    """Run the active rules over ``paths`` and return a report.

    ``baseline`` is the mapping produced by
    :func:`repro.analysis.baseline.load_baseline`; matching findings are
    moved to ``report.baselined`` up to their recorded counts.
    """
    from repro.analysis.baseline import split_baseline
    from repro.analysis.project import ModuleInfo, ProjectIndex, module_name_for

    root = Path(root) if root is not None else Path.cwd()
    files = iter_python_files(paths, root=root)
    modules: list[ModuleInfo] = []
    parse_errors: list[tuple[str, str]] = []
    for path in files:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        relpath = rel.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError, ValueError) as exc:
            parse_errors.append((relpath, str(exc)))
            continue
        modules.append(ModuleInfo(path, relpath, module_name_for(path), tree, source))

    project = ProjectIndex(modules)
    rules = _instantiate_rules(select, ignore)

    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            findings.append(finding)
        for module in modules:
            for finding in rule.check_module(module, project):
                findings.append(finding)

    # honour inline suppressions
    by_path = {m.relpath: m for m in modules}
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.code):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))

    new, baselined = split_baseline(kept, baseline or {})
    return LintReport(
        findings=new,
        baselined=baselined,
        rules=[rule.name for rule in rules],
        files=len(modules),
        parse_errors=parse_errors,
    )
