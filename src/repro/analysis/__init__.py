"""repro's own static-analysis layer: ``python -m repro lint``.

Generic linters see Python; they cannot see *this repo's* invariants —
that every stochastic component must route seeds through
:func:`repro.utils.rng.as_rng`, that a ``param_spec`` capability must
agree with the constructor it describes, or that the store file format
breaks if a ``frombuffer`` call picks its dtype from the platform. This
package encodes those contracts as AST-level rules and machine-checks
them in CI, so the guarantees the test suite samples (bitwise streaming
parity, deterministic walks, v1/v2 store stability) hold by
construction across every current and future implementation.

The checker is self-hosted on the same plugin architecture it audits:
rules live in :data:`LINT_REGISTRY` (a :class:`repro.registry.Registry`)
and third-party rules plug in with :func:`register_rule` — registered
rules immediately run from the CLI, participate in ``--select`` /
``--ignore`` and the baseline mechanism, with no package edits::

    from repro.analysis import LintRule, register_rule

    @register_rule("no-print", code="RPX001")
    class NoPrintRule(LintRule):
        severity = "warn"
        def check_module(self, module, project):
            for node in module.walk():
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    yield self.finding(module, node, "print() in library code")

Built-in rules (see :mod:`repro.analysis.rules`):

=======  ====================  ========================================
code     name                  invariant
=======  ====================  ========================================
RPR001   rng-discipline        no global-state numpy RNG; seeds flow
                               through ``as_rng`` / ``spawn_rngs``
RPR002   registry-contract     registered components implement their
                               family protocol; ``param_spec`` matches
                               ``__init__``; no alias collisions
RPR003   signature-drift       overrides stay call-compatible with the
                               base / canonical protocol signature
RPR004   error-taxonomy        raises use :class:`~repro.errors.ReproError`
                               subclasses; no swallowed ``except Exception``
RPR005   serialization-dtype   format-defining numpy calls pass an
                               explicit ``dtype=``
RPR006   hot-path-purity       no per-element Python loops / ``tolist``
                               in the vectorized kernel modules
=======  ====================  ========================================

Findings carry a severity (``error`` fails the lint; ``warn`` reports
only) and a stable fingerprint. A committed baseline file freezes the
accepted pre-existing findings: with ``--baseline``, *any* finding not
in the file — warning or error — fails, which is how CI blocks new
debt without blocking on old.
"""

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.core import (
    AnalysisError,
    Finding,
    LINT_REGISTRY,
    LintReport,
    LintRule,
    register_rule,
    run_lint,
)
from repro.analysis.project import ModuleInfo, ProjectIndex

__all__ = [
    "AnalysisError",
    "Finding",
    "LINT_REGISTRY",
    "LintReport",
    "LintRule",
    "ModuleInfo",
    "ProjectIndex",
    "load_baseline",
    "register_rule",
    "run_lint",
    "save_baseline",
]
