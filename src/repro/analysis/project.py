"""Project symbol table for the lint rules.

The interesting invariants are *cross-module*: a class registered in
``repro.sampling.__init__`` inherits its protocol methods from a base in
``repro.sampling.base``, and a ``param_spec`` declared in
``repro.walks.models.__init__`` describes a constructor defined three
files away. This module parses every linted file once and builds the
index the rules query:

* :class:`ModuleInfo` — one parsed file: AST, source lines, dotted
  module name, import aliases, classes, inline lint suppressions.
* :class:`ClassInfo` / :class:`FuncSig` — classes with their (resolved
  where possible) base names and per-method signature summaries.
* :class:`Registration` — every ``@register_model(...)`` decoration,
  ``register_codec("name", Cls)`` call or ``X_REGISTRY.register(...)``
  call, normalised to (family, name, aliases, target, param_spec).
* :class:`ProjectIndex` — lookup across modules: resolve a class name
  through imports, walk a project-internal MRO, decide whether a class
  derives from :class:`~repro.errors.ReproError`.

Resolution is deliberately best-effort: anything that leaves the parsed
file set (external bases, ``importlib`` tricks) resolves to ``None`` and
the rules give the benefit of the doubt rather than guessing.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

#: Marker object for constructor defaults that are not simple literals.
NOT_LITERAL = object()

#: ``register_<x>`` helper / ``<X>_REGISTRY`` variable -> family name.
#: Family names mirror ``Registry.kind`` of the live registries.
REGISTRY_FAMILIES = {
    "register_model": "model",
    "register_sampler": "sampler",
    "register_initializer": "initialization strategy",
    "register_codec": "codec",
    "register_index": "index",
    "register_rule": "lint rule",
    "register_partitioner": "partitioner",
    "MODEL_REGISTRY": "model",
    "SAMPLER_REGISTRY": "sampler",
    "SCALAR_SAMPLER_REGISTRY": "scalar sampler",
    "INITIALIZER_REGISTRY": "initialization strategy",
    "CODEC_REGISTRY": "codec",
    "INDEX_REGISTRY": "index",
    "LINT_REGISTRY": "lint rule",
    "PARTITIONER_REGISTRY": "partitioner",
}

_SUPPRESS_MARK = "repro-lint:"

#: Base names that resolve *outside* the parsed file set but whose
#: ancestry is still fully known: structural bases with no methods of
#: interest, plus every builtin exception. A class whose bases all land
#: here has a *complete* chain — it provably does not reach a project
#: class such as ``ReproError``.
KNOWN_EXTERNAL_BASES = frozenset({
    "object", "abc.ABC", "ABC", "Protocol", "typing.Protocol",
    "Generic", "typing.Generic",
}) | frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


def _literal(node: ast.AST):
    """Evaluate ``node`` as a literal, or :data:`NOT_LITERAL`."""
    try:
        return ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError, RecursionError):
        return NOT_LITERAL


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class FuncSig:
    """Call-compatibility summary of one ``def``."""

    name: str
    lineno: int
    #: positional parameters in order (pos-only then pos-or-keyword).
    positional: tuple[str, ...]
    #: how many trailing ``positional`` entries carry defaults.
    pos_defaults: int
    kwonly: tuple[str, ...]
    #: the subset of ``kwonly`` without a default (call-required).
    kwonly_required: tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    #: parameter name -> literal default (only literal defaults appear).
    default_literals: dict = field(default_factory=dict, compare=False)
    is_static: bool = False
    is_classmethod: bool = False
    is_abstract: bool = False

    @property
    def callable_positional(self) -> tuple[str, ...]:
        """Positional parameters as a caller sees them (implicit self/cls
        stripped)."""
        if self.is_static or not self.positional:
            return self.positional
        return self.positional[1:]


def _decorator_names(node) -> tuple[str, ...]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.append(name)
    return tuple(names)


def funcsig(node: ast.FunctionDef | ast.AsyncFunctionDef) -> FuncSig:
    """Extract a :class:`FuncSig` from a function definition node."""
    args = node.args
    positional = tuple(p.arg for p in (*args.posonlyargs, *args.args))
    defaults = args.defaults
    literals: dict = {}
    for pname, default in zip(positional[len(positional) - len(defaults):], defaults):
        value = _literal(default)
        if value is not NOT_LITERAL:
            literals[pname] = value
    kwonly = tuple(p.arg for p in args.kwonlyargs)
    kwonly_required = tuple(
        p.arg for p, d in zip(args.kwonlyargs, args.kw_defaults) if d is None
    )
    for p, d in zip(args.kwonlyargs, args.kw_defaults):
        if d is not None:
            value = _literal(d)
            if value is not NOT_LITERAL:
                literals[p.arg] = value
    decorators = _decorator_names(node)
    return FuncSig(
        name=node.name,
        lineno=node.lineno,
        positional=positional,
        pos_defaults=len(defaults),
        kwonly=kwonly,
        kwonly_required=kwonly_required,
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        default_literals=literals,
        is_static=any(d.split(".")[-1] == "staticmethod" for d in decorators),
        is_classmethod=any(d.split(".")[-1] == "classmethod" for d in decorators),
        is_abstract=any(d.split(".")[-1] == "abstractmethod" for d in decorators),
    )


@dataclass
class ClassInfo:
    """One class definition with resolved-where-possible bases."""

    name: str
    qualname: str  # "<module>.<name>"
    module: "ModuleInfo"
    lineno: int
    col: int
    #: base expressions resolved through the module's imports
    #: (``"repro.sampling.base.EdgeSampler"``, ``"abc.ABC"``, ...).
    bases: tuple[str, ...]
    methods: dict[str, FuncSig]
    decorators: tuple[str, ...]


@dataclass
class Registration:
    """A component registration, whatever syntax produced it."""

    family: str
    name: str | None  # None when the name is not a literal
    aliases: tuple[str, ...]
    #: qualname of the registered class when resolvable, else None.
    target: str | None
    #: literal ``param_spec`` capability, when declared literally.
    param_spec: dict | None
    replace: bool
    module: "ModuleInfo"
    lineno: int
    col: int


class ModuleInfo:
    """One parsed source file plus the lookup tables rules need."""

    def __init__(self, path: Path, relpath: str, modname: str, tree: ast.Module, source: str):
        self.path = path
        self.relpath = relpath  # posix-style, as reported in findings
        self.modname = modname
        self.tree = tree
        self.lines = source.splitlines()
        self.imports: dict[str, str] = {}  # local name -> dotted origin
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FuncSig] = {}
        self.registrations: list[Registration] = []
        self.suppressions: dict[int, set[str]] = self._scan_suppressions()
        self._index()

    # -- construction ---------------------------------------------------
    def _scan_suppressions(self) -> dict[int, set[str]]:
        """``# repro-lint: ignore[RPR001,RPR006]`` (or bare ``ignore``)."""
        out: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            marker = line.find(_SUPPRESS_MARK)
            if marker < 0 or "#" not in line[:marker]:
                continue
            directive = line[marker + len(_SUPPRESS_MARK):].strip()
            if not directive.startswith("ignore"):
                continue
            rest = directive[len("ignore"):].strip()
            if rest.startswith("[") and "]" in rest:
                codes = {c.strip() for c in rest[1 : rest.index("]")].split(",") if c.strip()}
            else:
                codes = {"*"}
            out[lineno] = codes
        return out

    def is_suppressed(self, lineno: int, code: str) -> bool:
        codes = self.suppressions.get(lineno)
        return codes is not None and ("*" in codes or code in codes)

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        for node in self.tree.body:
            self._index_statement(node)

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        if not node.level:
            return node.module
        # relative import: resolve against this module's package
        parts = self.modname.split(".")
        drop = node.level if self.path.name == "__init__.py" else node.level
        # a module's package is everything but its last component, except
        # for packages themselves (__init__.py), whose package is modname
        if self.path.name != "__init__.py":
            parts = parts[:-1]
        if drop - 1 > 0:
            parts = parts[: len(parts) - (drop - 1)] if drop - 1 <= len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    def _index_statement(self, node: ast.stmt, prefix: str = "") -> None:
        if isinstance(node, ast.ClassDef):
            bases = tuple(
                resolved
                for b in node.bases
                if (resolved := self._resolve_expr_name(b)) is not None
            )
            info = ClassInfo(
                name=node.name,
                qualname=f"{self.modname}.{node.name}",
                module=self,
                lineno=node.lineno,
                col=node.col_offset,
                bases=bases,
                methods={
                    child.name: funcsig(child)
                    for child in node.body
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                },
                decorators=_decorator_names(node),
            )
            self.classes[node.name] = info
            self._collect_decorator_registrations(node, info)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[node.name] = funcsig(node)
            self._collect_decorator_registrations(node, None)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            self._collect_call_registration(node.value)
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_statement(child)

    def _resolve_expr_name(self, node: ast.AST) -> str | None:
        name = dotted_name(node)
        if name is None:
            return None
        return self.resolve(name)

    def resolve(self, name: str) -> str:
        """Fully-qualify ``name`` through this module's imports.

        Locally defined symbols resolve to ``<modname>.<name>``; imported
        symbols to their origin; everything else is returned unchanged.
        """
        head, _, tail = name.partition(".")
        if head in self.imports:
            origin = self.imports[head]
            return f"{origin}.{tail}" if tail else origin
        if head in self.classes or head in self.functions:
            return f"{self.modname}.{name}"
        return name

    # -- registrations --------------------------------------------------
    def _registration_family(self, func: ast.AST) -> str | None:
        """Family for a decorator/call target, or None if not a registration."""
        name = dotted_name(func)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        if leaf == "register":
            # <X>_REGISTRY.register(...) — family from the variable name
            owner = name.split(".")[-2] if "." in name else None
            return REGISTRY_FAMILIES.get(owner or "")
        return REGISTRY_FAMILIES.get(leaf)

    def _collect_decorator_registrations(self, node, info: ClassInfo | None) -> None:
        for dec in node.decorator_list:
            if not isinstance(dec, ast.Call):
                continue
            family = self._registration_family(dec.func)
            if family is None:
                continue
            reg = self._registration_from_call(dec, family, skip_target=True)
            reg.target = info.qualname if info is not None else None
            self.registrations.append(reg)

    def _collect_call_registration(self, call: ast.Call) -> None:
        family = self._registration_family(call.func)
        if family is None:
            return
        self.registrations.append(self._registration_from_call(call, family))

    def _registration_from_call(
        self, call: ast.Call, family: str, *, skip_target: bool = False
    ) -> Registration:
        name = None
        if call.args:
            value = _literal(call.args[0])
            if isinstance(value, str):
                name = value.strip().lower()
        target = None
        if not skip_target and len(call.args) >= 2:
            target_name = dotted_name(call.args[1])
            if target_name is not None:
                target = self.resolve(target_name)
        aliases: tuple[str, ...] = ()
        param_spec = None
        replace = False
        scalar_target = None
        for kw in call.keywords:
            if kw.arg == "aliases":
                value = _literal(kw.value)
                if isinstance(value, (tuple, list)):
                    aliases = tuple(str(a).strip().lower() for a in value)
            elif kw.arg == "param_spec":
                value = _literal(kw.value)
                if isinstance(value, dict):
                    param_spec = value
            elif kw.arg == "replace":
                replace = bool(_literal(kw.value) is True)
            elif kw.arg == "scalar":
                scalar_name = dotted_name(kw.value)
                if scalar_name is not None:
                    scalar_target = self.resolve(scalar_name)
        reg = Registration(
            family=family,
            name=name,
            aliases=aliases,
            target=target,
            param_spec=param_spec,
            replace=replace,
            module=self,
            lineno=call.lineno,
            col=call.col_offset,
        )
        if scalar_target is not None:
            # register_sampler(..., scalar=X) also registers the scalar family
            self.registrations.append(
                Registration(
                    family="scalar sampler",
                    name=name,
                    aliases=aliases,
                    target=scalar_target,
                    param_spec=param_spec,
                    replace=replace,
                    module=self,
                    lineno=call.lineno,
                    col=call.col_offset,
                )
            )
        return reg

    # -- convenience ----------------------------------------------------
    def walk(self):
        """``ast.walk`` over the module body."""
        return ast.walk(self.tree)

    def __repr__(self) -> str:
        return f"ModuleInfo({self.relpath!r}, modname={self.modname!r})"


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


class ProjectIndex:
    """Cross-module lookups over a set of parsed :class:`ModuleInfo`."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self.classes: dict[str, ClassInfo] = {}
        for module in modules:
            for info in module.classes.values():
                self.classes[info.qualname] = info
        self.registrations: list[Registration] = [
            reg for module in modules for reg in module.registrations
        ]

    # -- class graph ----------------------------------------------------
    def lookup_class(self, qualname: str | None) -> ClassInfo | None:
        if qualname is None:
            return None
        return self.classes.get(qualname)

    def base_chain(self, info: ClassInfo) -> tuple[list[ClassInfo], bool]:
        """Project-resolvable ancestors (nearest first) and completeness.

        ``complete`` is False when any base anywhere up the chain could
        not be resolved inside the parsed file set (external classes,
        dynamic bases) — callers should then skip "missing method"
        style judgements.
        """
        out: list[ClassInfo] = []
        complete = True
        seen = {info.qualname}
        frontier = [info]
        while frontier:
            current = frontier.pop(0)
            for base in current.bases:
                if base in KNOWN_EXTERNAL_BASES:
                    continue
                resolved = self.classes.get(base)
                if resolved is None:
                    complete = False
                    continue
                if resolved.qualname in seen:
                    continue
                seen.add(resolved.qualname)
                out.append(resolved)
                frontier.append(resolved)
        return out, complete

    def find_method(self, info: ClassInfo, name: str) -> tuple[ClassInfo, FuncSig] | None:
        """Nearest definition of ``name`` in ``info``'s project MRO."""
        if name in info.methods:
            return info, info.methods[name]
        chain, _ = self.base_chain(info)
        for ancestor in chain:
            if name in ancestor.methods:
                return ancestor, ancestor.methods[name]
        return None

    def inherited_method(self, info: ClassInfo, name: str) -> tuple[ClassInfo, FuncSig] | None:
        """Nearest *ancestor* definition of ``name`` (excluding ``info``)."""
        chain, _ = self.base_chain(info)
        for ancestor in chain:
            if name in ancestor.methods:
                return ancestor, ancestor.methods[name]
        return None

    def derives_from(self, info: ClassInfo, qualname_leaf: str) -> bool | None:
        """Does ``info`` subclass a class whose (qual)name ends in
        ``qualname_leaf``?

        Returns True/False when the chain is fully resolved, None when an
        unresolved base leaves the answer unknowable.
        """
        chain, complete = self.base_chain(info)
        for candidate in (info, *chain):
            for base in (candidate.qualname, *candidate.bases):
                if base == qualname_leaf or base.endswith(f".{qualname_leaf}"):
                    return True
        return False if complete else None


def relpath_matches(relpath: str, suffixes: tuple[str, ...]) -> bool:
    """True when ``relpath`` names one of the modules in ``suffixes``.

    Matching is by posix path suffix on whole components, so a rule
    scoped to ``"serving/store.py"`` fires on
    ``src/repro/serving/store.py`` and on a fixture's
    ``serving/store.py`` but not on ``notserving/store.py``.

    An entry ending in ``"/"`` scopes a whole package: ``"walks/kernels/"``
    fires on every module whose *directory* path contains those
    components in order (``src/repro/walks/kernels/numpy_backend.py``),
    which plain suffix matching cannot express — the filename always
    occupies the final components.
    """
    parts = PurePosixPath(relpath).parts
    dirs = parts[:-1]
    for suffix in suffixes:
        want = PurePosixPath(suffix).parts
        if suffix.endswith("/"):
            if any(
                dirs[i : i + len(want)] == want
                for i in range(len(dirs) - len(want) + 1)
            ):
                return True
        elif len(parts) >= len(want) and parts[-len(want):] == want:
            return True
    return False
