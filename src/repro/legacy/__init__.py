"""Pure-Python baselines mimicking the released model implementations.

Table VI's "Open-sourced Version" column benchmarks the authors' public
code (phanein/deepwalk, aditya-grover/node2vec, the metapath2vec /
edge2vec / fairwalk releases). Those repositories share two traits this
package reproduces faithfully:

* Python-object graph representations (dict/list adjacency) walked one
  step at a time in interpreted code;
* their original sampling strategies — per-step ``random.choices`` for
  deepwalk/metapath2vec/edge2vec/fairwalk (direct sampling), and
  node2vec's infamous *preprocess-alias-tables-for-every-edge* step,
  whose time and memory explosion motivates the paper's Challenge 1.

They are baselines, not production code: run them on small graphs.
"""

from repro.legacy.api import LEGACY_MODELS, run_legacy_walks

__all__ = ["run_legacy_walks", "LEGACY_MODELS"]
