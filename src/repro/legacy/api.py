"""Driver for the legacy baselines with the paper's timing split."""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ModelError
from repro.legacy.walkers import (
    LegacyDeepWalk,
    LegacyEdge2Vec,
    LegacyFairWalk,
    LegacyMetaPath2Vec,
    LegacyNode2Vec,
)
from repro.walks.corpus import WalkCorpus

LEGACY_MODELS = {
    "deepwalk": LegacyDeepWalk,
    "node2vec": LegacyNode2Vec,
    "metapath2vec": LegacyMetaPath2Vec,
    "edge2vec": LegacyEdge2Vec,
    "fairwalk": LegacyFairWalk,
}


def run_legacy_walks(
    graph,
    model: str,
    *,
    num_walks: int = 10,
    walk_length: int = 80,
    start_nodes=None,
    seed=None,
    **params,
) -> tuple[WalkCorpus, dict]:
    """Generate the paper's workload with an open-source-style walker.

    Returns ``(corpus, timings)`` with ``timings["init"]`` covering graph
    conversion + preprocessing (node2vec's per-edge alias build) and
    ``timings["walk"]`` the interpreted walking loop.
    """
    key = model.lower()
    if key not in LEGACY_MODELS:
        raise ModelError(f"no legacy baseline for {model!r}")

    t0 = time.perf_counter()
    walker = LEGACY_MODELS[key](graph, seed=seed, **params)
    walker.preprocess()
    init_seconds = time.perf_counter() - t0

    if start_nodes is None:
        if key == "metapath2vec":
            wanted = walker.path[0]
            starts = np.flatnonzero(graph.node_types == wanted)
        else:
            starts = np.arange(graph.num_nodes)
    else:
        starts = np.asarray(start_nodes)

    t1 = time.perf_counter()
    sequences = []
    for __ in range(num_walks):
        for v in starts:
            sequences.append(walker.walk(int(v), walk_length))
    walk_seconds = time.perf_counter() - t1
    corpus = WalkCorpus.from_lists(sequences)
    return corpus, {"init": init_seconds, "walk": walk_seconds}
