"""Legacy walk generators, one per released implementation.

Each generator exposes ``preprocess()`` (returns seconds) and
``walk(start, length)``; :mod:`repro.legacy.api` drives them through the
paper's workload and reports the preprocess/walk timing split.
"""

from __future__ import annotations

import random

from repro.errors import ModelError
from repro.legacy.adjacency import AdjacencyGraph
from repro.legacy.alias import alias_draw, alias_setup


class LegacyDeepWalk:
    """phanein/deepwalk: per-step uniform (or weighted) random choice."""

    def __init__(self, graph, *, seed=None, **_params):
        self.adj = AdjacencyGraph(graph)
        self.rng = random.Random(seed)

    def preprocess(self) -> None:
        return None

    def walk(self, start: int, length: int) -> list[int]:
        rng, adj = self.rng, self.adj
        path = [start]
        cur = start
        for __ in range(length - 1):
            nbrs = adj.neighbors[cur]
            if not nbrs:
                break
            if adj.is_weighted:
                cur = rng.choices(nbrs, weights=adj.weights[cur], k=1)[0]
            else:
                cur = nbrs[int(rng.random() * len(nbrs))]
            path.append(cur)
        return path


class LegacyNode2Vec:
    """aditya-grover/node2vec: alias tables for every node *and* edge.

    ``preprocess`` builds ``alias_edges[(s, v)]`` for all directed edges
    — the O(|E|·d) time and memory cost that dominates the open-source
    column of Table VI and OOMs on large graphs.
    """

    def __init__(self, graph, *, p: float = 1.0, q: float = 1.0, seed=None, **_params):
        self.adj = AdjacencyGraph(graph)
        self.p = p
        self.q = q
        self.rng = random.Random(seed)
        self.alias_nodes: dict = {}
        self.alias_edges: dict = {}

    def preprocess(self) -> None:
        adj = self.adj
        for v in range(adj.num_nodes):
            weights = adj.weights[v]
            total = sum(weights)
            if total <= 0:
                continue
            self.alias_nodes[v] = alias_setup([w / total for w in weights])
        for s in range(adj.num_nodes):
            for v in adj.neighbors[s]:
                self.alias_edges[(s, v)] = self._edge_alias(s, v)

    def _edge_alias(self, s: int, v: int):
        adj = self.adj
        probs = []
        for u, w in zip(adj.neighbors[v], adj.weights[v]):
            if u == s:
                probs.append(w / self.p)
            elif adj.has_edge(s, u):
                probs.append(w)
            else:
                probs.append(w / self.q)
        total = sum(probs)
        return alias_setup([x / total for x in probs])

    def walk(self, start: int, length: int) -> list[int]:
        adj, rng = self.adj, self.rng
        path = [start]
        while len(path) < length:
            cur = path[-1]
            nbrs = adj.neighbors[cur]
            if not nbrs:
                break
            if len(path) == 1:
                table = self.alias_nodes.get(cur)
                if table is None:
                    break
                path.append(nbrs[alias_draw(table[0], table[1], rng)])
            else:
                table = self.alias_edges[(path[-2], cur)]
                path.append(nbrs[alias_draw(table[0], table[1], rng)])
        return path


class LegacyMetaPath2Vec:
    """Original metapath2vec: per-step filtering of type-matching neighbours."""

    def __init__(self, graph, *, metapath="APA", seed=None, **_params):
        from repro.graph.hetero import parse_metapath

        if graph.node_types is None:
            raise ModelError("legacy metapath2vec needs node types")
        self.adj = AdjacencyGraph(graph)
        self.path = parse_metapath(metapath)
        if self.path[0] != self.path[-1]:
            raise ModelError("metapath must be cyclic")
        self.rng = random.Random(seed)

    def preprocess(self) -> None:
        return None

    def walk(self, start: int, length: int) -> list[int]:
        adj, rng = self.adj, self.rng
        k = len(self.path) - 1
        path = [start]
        cur = start
        for step in range(length - 1):
            wanted = self.path[(step % k) + 1]
            candidates = []
            cand_weights = []
            for u, w in zip(adj.neighbors[cur], adj.weights[cur]):
                if adj.node_types[u] == wanted:
                    candidates.append(u)
                    cand_weights.append(w)
            if not candidates:
                break
            if adj.is_weighted:
                cur = rng.choices(candidates, weights=cand_weights, k=1)[0]
            else:
                cur = candidates[int(rng.random() * len(candidates))]
            path.append(cur)
        return path


class LegacyEdge2Vec:
    """Original edge2vec: per-step normalised direct sampling with the
    type-transition matrix."""

    def __init__(self, graph, *, p: float = 1.0, q: float = 1.0, transition_matrix=None, seed=None, **_params):
        if graph.edge_types is None:
            raise ModelError("legacy edge2vec needs edge types")
        self.adj = AdjacencyGraph(graph)
        self.p = p
        self.q = q
        t = graph.num_edge_types
        if transition_matrix is None:
            self.matrix = [[1.0] * t for __ in range(t)]
        else:
            self.matrix = [list(map(float, row)) for row in transition_matrix]
        self.rng = random.Random(seed)

    def preprocess(self) -> None:
        return None

    def walk(self, start: int, length: int) -> list[int]:
        adj, rng = self.adj, self.rng
        path = [start]
        cur = start
        prev = None
        prev_etype = None
        for __ in range(length - 1):
            nbrs = adj.neighbors[cur]
            if not nbrs:
                break
            weights = []
            for pos, (u, w) in enumerate(zip(nbrs, adj.weights[cur])):
                if prev is None:
                    weights.append(w)
                    continue
                if u == prev:
                    alpha = 1.0 / self.p
                elif adj.has_edge(prev, u):
                    alpha = 1.0
                else:
                    alpha = 1.0 / self.q
                m = self.matrix[prev_etype][adj.edge_types[cur][pos]]
                weights.append(alpha * m * w)
            total = sum(weights)
            if total <= 0:
                break
            pick = rng.choices(range(len(nbrs)), weights=weights, k=1)[0]
            prev = cur
            prev_etype = adj.edge_types[cur][pick]
            cur = nbrs[pick]
            path.append(cur)
        return path


class LegacyFairWalk:
    """Original fairwalk: choose a neighbour group uniformly, then a node
    within the group by node2vec rules."""

    def __init__(self, graph, *, p: float = 1.0, q: float = 1.0, seed=None, **_params):
        if graph.node_types is None:
            raise ModelError("legacy fairwalk needs node types")
        self.adj = AdjacencyGraph(graph)
        self.p = p
        self.q = q
        self.rng = random.Random(seed)

    def preprocess(self) -> None:
        return None

    def walk(self, start: int, length: int) -> list[int]:
        adj, rng = self.adj, self.rng
        path = [start]
        cur = start
        prev = None
        for __ in range(length - 1):
            nbrs = adj.neighbors[cur]
            if not nbrs:
                break
            groups: dict[int, list[tuple[int, float]]] = {}
            for u, w in zip(nbrs, adj.weights[cur]):
                groups.setdefault(adj.node_types[u], []).append((u, w))
            group = groups[rng.choice(list(groups))]
            weights = []
            for u, w in group:
                if prev is None:
                    alpha = 1.0
                elif u == prev:
                    alpha = 1.0 / self.p
                elif adj.has_edge(prev, u):
                    alpha = 1.0
                else:
                    alpha = 1.0 / self.q
                weights.append(alpha * w)
            total = sum(weights)
            if total <= 0:
                break
            pick = rng.choices(range(len(group)), weights=weights, k=1)[0]
            prev = cur
            cur = group[pick][0]
            path.append(cur)
        return path
