"""Python-object adjacency structures used by the legacy baselines."""

from __future__ import annotations


class AdjacencyGraph:
    """Dict-of-lists view of a CSR graph (the open-source repos' layout)."""

    def __init__(self, graph):
        self.num_nodes = graph.num_nodes
        self.neighbors: list[list[int]] = []
        self.weights: list[list[float]] = []
        self.is_weighted = graph.is_weighted
        for v in range(graph.num_nodes):
            self.neighbors.append(graph.neighbors(v).tolist())
            self.weights.append(graph.neighbor_weights(v).tolist())
        self.node_types = (
            graph.node_types.tolist() if graph.node_types is not None else None
        )
        # edge types per (src, position-in-row)
        if graph.edge_types is not None:
            self.edge_types = [
                graph.edge_types[graph.offsets[v] : graph.offsets[v + 1]].tolist()
                for v in range(graph.num_nodes)
            ]
        else:
            self.edge_types = None
        self._neighbor_sets = [set(ns) for ns in self.neighbors]

    def has_edge(self, u: int, v: int) -> bool:
        """Constant-time membership via per-node sets."""
        return v in self._neighbor_sets[u]
