"""The alias_setup / alias_draw pair from the original node2vec repository.

Kept deliberately close to the reference code (lists + stacks) because
its per-edge invocation *is* the preprocessing cost the paper measures.
"""

from __future__ import annotations

import random


def alias_setup(probs):
    """Build alias tables for a normalised probability list."""
    k = len(probs)
    q = [0.0] * k
    j = [0] * k
    smaller = []
    larger = []
    for i, prob in enumerate(probs):
        q[i] = k * prob
        if q[i] < 1.0:
            smaller.append(i)
        else:
            larger.append(i)
    while smaller and larger:
        small = smaller.pop()
        large = larger.pop()
        j[small] = large
        q[large] = q[large] + q[small] - 1.0
        if q[large] < 1.0:
            smaller.append(large)
        else:
            larger.append(large)
    return j, q


def alias_draw(j, q, rng: random.Random) -> int:
    """Draw one outcome from alias tables."""
    k = len(j)
    i = int(rng.random() * k)
    if rng.random() < q[i]:
        return i
    return j[i]
