"""Partition a monolithic :class:`EmbeddingStore` into per-shard stores.

The serving half of the sharded subsystem: a trained embedding store is
split row-wise by the same owner array that partitioned the graph, so
each shard serves exactly the nodes it owned during the walk. Every
per-shard store *shares the trained codec instance* — quantized stores
split without re-fitting codebooks, and decoding a row on a shard
reconstructs bit-identical bytes to decoding the same row monolithically.

The split keeps the monolithic row order recoverable
(:attr:`ShardedEmbeddingStore.monolith_rows`): the scatter-gather router
merges per-shard top-k candidates by ``(-score, monolithic row)``, which
is precisely the tie-break the monolithic brute-force index applies, so
the merged answer is *exactly* the monolithic answer, not merely
score-equivalent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError, ShardError
from repro.serving.store import EmbeddingStore


class ShardedEmbeddingStore:
    """A monolithic embedding store split row-wise across shards.

    Build one with :meth:`from_store`; the constructor wires pre-split
    pieces. Each shard holds a normal :class:`EmbeddingStore` (so every
    registered index works per shard unchanged) plus the mapping from
    its local rows back to monolithic rows.
    """

    def __init__(self, stores, monolith_rows, owner, keys_by_row):
        if len(stores) != len(monolith_rows):
            raise ShardError("one monolith-row map is needed per shard store")
        self.stores: list[EmbeddingStore] = list(stores)
        #: per shard: local row -> monolithic row (ascending).
        self.monolith_rows: list[np.ndarray] = [
            np.asarray(rows, dtype=np.int64) for rows in monolith_rows
        ]
        #: global node id -> owning shard (the walk plan's owner array).
        self.owner = np.asarray(owner, dtype=np.int64)
        #: monolithic row -> node key (the unsplit key column).
        self.keys_by_row = np.asarray(keys_by_row, dtype=np.int64)
        total = int(self.keys_by_row.size)
        #: monolithic row -> (owning shard, local row within it).
        self.row_shard = np.full(total, -1, dtype=np.int64)
        self.row_local = np.full(total, -1, dtype=np.int64)
        for j in range(len(self.stores)):
            rows = self.monolith_rows[j]
            self.row_shard[rows] = j
            self.row_local[rows] = np.arange(rows.size, dtype=np.int64)
        # key -> monolithic row, the same dense table the monolithic
        # store builds lazily
        table = np.full(int(self.keys_by_row.max(initial=-1)) + 1, -1, dtype=np.int64)
        table[self.keys_by_row] = np.arange(total, dtype=np.int64)
        self._row_of = table

    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: EmbeddingStore, plan) -> "ShardedEmbeddingStore":
        """Split ``store`` by a :class:`ShardPlan` (or a raw owner array).

        Rows keep their relative (monolithic) order inside each shard and
        all shards share ``store``'s trained codec, so per-row decode is
        bitwise identical before and after the split.
        """
        if hasattr(plan, "owner"):
            owner = np.asarray(plan.owner, dtype=np.int64)
            num_shards = int(plan.num_shards)
        else:
            owner = np.asarray(plan, dtype=np.int64)
            if owner.ndim != 1 or owner.size == 0:
                raise ShardError("owner must be a non-empty 1-d shard-id array")
            num_shards = int(owner.max()) + 1
        keys = np.asarray(store.keys)
        if keys.size and (keys.min() < 0 or keys.max() >= owner.size):
            raise ShardError(
                f"store keys fall outside the owner array [0, {owner.size}); "
                "the plan must come from the graph the embeddings were trained on"
            )
        codes = np.asarray(store.codes)
        norms = np.asarray(store.norms)
        key_owner = owner[keys]
        stores, rows_per = [], []
        for j in range(num_shards):
            rows = np.flatnonzero(key_owner == j)
            stores.append(
                EmbeddingStore(
                    keys[rows].copy(),
                    codes=np.ascontiguousarray(codes[rows]),
                    norms=norms[rows].copy(),
                    codec=store.codec,
                )
            )
            rows_per.append(rows)
        return cls(stores, rows_per, owner, keys.copy())

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.stores)

    @property
    def dimensions(self) -> int:
        return self.stores[0].dimensions if self.stores else 0

    @property
    def codec(self):
        return self.stores[0].codec if self.stores else None

    def __len__(self) -> int:
        return int(self.keys_by_row.size)

    @property
    def nbytes(self) -> int:
        """Total data bytes across all shard stores."""
        return sum(int(s.nbytes) for s in self.stores)

    def counts(self) -> np.ndarray:
        """Rows per shard (serving-side balance diagnostic)."""
        return np.asarray([len(s) for s in self.stores], dtype=np.int64)

    # ------------------------------------------------------------------
    def rows_for(self, keys) -> np.ndarray:
        """Monolithic rows of ``keys``; unknown ids raise like the monolith."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        table = self._row_of
        if table.size == 0:
            rows = np.full(keys.shape, -1, dtype=np.int64)
        else:
            safe = np.clip(keys, 0, table.size - 1)
            rows = np.where(keys == safe, table[safe], -1)
        if np.any(rows < 0):
            bad = int(keys[np.flatnonzero(rows < 0)[0]])
            raise ServingError(f"key {bad} is not in the store")
        return rows

    def decode_monolith_rows(self, rows) -> np.ndarray:
        """Float32 vectors of monolithic rows, gathered from their shards.

        Bitwise identical to ``store.decode_rows(rows)`` on the unsplit
        store: the codes are the same bytes and the codec is the same
        trained instance.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        out = np.empty((rows.size, self.dimensions), dtype=np.float32)
        shard = self.row_shard[rows]
        local = self.row_local[rows]
        for j in range(self.num_shards):
            mask = shard == j
            if mask.any():
                out[mask] = self.stores[j].decode_rows(local[mask])
        return out

    def __repr__(self) -> str:
        return (
            f"ShardedEmbeddingStore(shards={self.num_shards}, count={len(self)}, "
            f"dimensions={self.dimensions})"
        )


__all__ = ["ShardedEmbeddingStore"]
