"""Graph partitioners and the :class:`ShardPlan` they produce.

A partitioner assigns every node an owning shard; the plan then carves
one *local* CSR per shard out of the global graph. Each local graph is
the vertex-induced subgraph of the shard's **owned** nodes plus a halo:

* the targets of every owned out-edge (so owned rows are complete and a
  walker standing on an owned node sees its full neighbourhood), and
* the sources of every edge *into* an owned node (so second-order
  weight rules — node2vec's return/in-out classification probes the
  predecessor's row — evaluate on purely local data).

Halo rows are truncated to local members, which is exactly what those
probes need: both endpoints of any probed edge are local by
construction, and :meth:`~repro.graph.csr.CSRGraph.subgraph`'s monotone
relabeling keeps rows sorted so binary-search adjacency queries return
the same answers as on the full graph.

Partitioners are registry-pluggable (``PARTITIONER_REGISTRY``); the
contract is one method, ``partition(graph, num_shards) -> owner`` with
``owner[v]`` in ``[0, num_shards)`` for every node.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ShardError
from repro.registry import Registry

#: Registered node-to-shard assignment strategies. Entries are classes
#: instantiated with no arguments; ``partition(graph, num_shards)`` is
#: the family protocol (lint rule RPR002).
PARTITIONER_REGISTRY = Registry(
    "partitioner", error_cls=ShardError, home="repro.sharding.partitioner"
)


def register_partitioner(name, cls=None, *, aliases=(), replace=False, **capabilities):
    """Register a partitioner class under ``name`` (usable as a decorator)."""
    return PARTITIONER_REGISTRY.register(
        name, cls, aliases=aliases, replace=replace, **capabilities
    )


class HashPartitioner:
    """Stateless multiplicative-hash assignment (Knuth's constant).

    Placement depends only on the node id and the shard count, so it is
    reproducible across runs and machines with zero preprocessing — the
    default for the same reason distributed graph engines default to it.
    """

    name = "hash"

    def partition(self, graph, num_shards: int) -> np.ndarray:
        nodes = np.arange(graph.num_nodes, dtype=np.uint64)
        hashed = (nodes * np.uint64(2654435761)) % np.uint64(2**32)
        return (hashed % np.uint64(num_shards)).astype(np.int64)


class DegreeBalancedPartitioner:
    """Greedy longest-processing-time assignment on out-degree.

    Nodes are placed heaviest-first onto the currently lightest shard
    (ties break toward the lowest shard id), balancing *edge* load —
    walker residence time is proportional to degree under the stationary
    law, so this is the knob that evens out per-shard step work on
    skewed graphs where hashing leaves one shard holding the hubs.
    """

    name = "degree_balanced"

    def partition(self, graph, num_shards: int) -> np.ndarray:
        deg = graph.degrees()
        owner = np.empty(graph.num_nodes, dtype=np.int64)
        order = np.argsort(-deg, kind="stable")
        heap = [(0, j) for j in range(num_shards)]
        heapq.heapify(heap)
        for v in order:
            load, j = heapq.heappop(heap)
            owner[v] = j
            heapq.heappush(heap, (load + int(deg[v]) + 1, j))
        return owner


register_partitioner("hash", HashPartitioner, balances="nothing (stateless)")
register_partitioner(
    "degree_balanced",
    DegreeBalancedPartitioner,
    aliases=("degree-balanced",),
    balances="out-edges (greedy LPT)",
)


@dataclass(frozen=True)
class Shard:
    """One shard's local view of the global graph."""

    shard_id: int
    #: local CSR: owned nodes + halo, relabeled to ``[0, node_map.size)``.
    graph: object
    #: local node id -> global node id (sorted ascending).
    node_map: np.ndarray
    #: local edge offset -> global edge offset (sorted ascending).
    edge_map: np.ndarray
    #: global node id -> local id, -1 for non-local nodes.
    global_to_local: np.ndarray
    #: per local node: is it owned (True) or halo (False)?
    owned_local: np.ndarray


@dataclass(frozen=True)
class ShardPlan:
    """A complete partitioning: owner array, per-shard locals, stats."""

    num_shards: int
    partitioner: str
    #: global node id -> owning shard.
    owner: np.ndarray
    shards: tuple[Shard, ...]
    #: edges whose endpoints live on different shards (the migration
    #: surface: every traversal of one moves a walker between workers).
    boundary_edges: int
    #: per-shard owned node / owned out-edge counts.
    node_counts: np.ndarray
    edge_counts: np.ndarray

    @property
    def node_imbalance(self) -> float:
        """max/mean owned-node load (1.0 = perfectly balanced)."""
        mean = float(self.node_counts.mean()) if self.num_shards else 0.0
        return float(self.node_counts.max()) / mean if mean > 0 else 1.0

    @property
    def edge_imbalance(self) -> float:
        """max/mean owned-edge load (1.0 = perfectly balanced)."""
        mean = float(self.edge_counts.mean()) if self.num_shards else 0.0
        return float(self.edge_counts.max()) / mean if mean > 0 else 1.0

    def stats(self) -> dict:
        """Plan-level counters merged into the sharded engine's stats."""
        return {
            "num_shards": self.num_shards,
            "partitioner": self.partitioner,
            "boundary_edges": self.boundary_edges,
            "node_imbalance": self.node_imbalance,
            "edge_imbalance": self.edge_imbalance,
        }


def make_partitioner(partitioner):
    """Resolve a partitioner name or instance to an instance."""
    # the str check comes first: str.partition() exists but is not ours
    if not isinstance(partitioner, str) and hasattr(partitioner, "partition"):
        return partitioner
    return PARTITIONER_REGISTRY.create(partitioner)


def build_shard_plan(graph, num_shards: int, partitioner="hash") -> ShardPlan:
    """Partition ``graph`` into ``num_shards`` local views.

    ``partitioner`` is a registry name or an instance with a
    ``partition`` method. Validates the owner array, extracts each
    shard's owned+halo subgraph and records the boundary-edge count and
    owned-load imbalance the engine reports in its stats.
    """
    if int(num_shards) != num_shards or num_shards < 1:
        raise ShardError(f"num_shards must be a positive integer, got {num_shards!r}")
    num_shards = int(num_shards)
    part = make_partitioner(partitioner)
    name = getattr(part, "name", type(part).__name__)
    owner = np.asarray(part.partition(graph, num_shards), dtype=np.int64)
    if owner.shape != (graph.num_nodes,):
        raise ShardError(
            f"partitioner {name!r} returned owner array of shape {owner.shape}, "
            f"expected ({graph.num_nodes},)"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= num_shards):
        raise ShardError(
            f"partitioner {name!r} assigned shards outside [0, {num_shards})"
        )

    sources = graph.edge_sources()
    src_owner = owner[sources]
    tgt_owner = owner[graph.targets]
    boundary = int((src_owner != tgt_owner).sum())
    node_counts = np.bincount(owner, minlength=num_shards).astype(np.int64)
    edge_counts = np.bincount(src_owner, minlength=num_shards).astype(np.int64)

    shards = []
    for j in range(num_shards):
        owned = np.flatnonzero(owner == j)
        out_halo = graph.targets[src_owner == j]
        in_halo = sources[tgt_owner == j]
        local_nodes = np.unique(np.concatenate((owned, out_halo, in_halo)))
        sub, node_map, edge_map = graph.subgraph(local_nodes)
        g2l = np.full(graph.num_nodes, -1, dtype=np.int64)
        g2l[node_map] = np.arange(node_map.size, dtype=np.int64)
        shards.append(
            Shard(
                shard_id=j,
                graph=sub,
                node_map=node_map,
                edge_map=edge_map,
                global_to_local=g2l,
                owned_local=owner[node_map] == j,
            )
        )
    return ShardPlan(
        num_shards=num_shards,
        partitioner=str(name),
        owner=owner,
        shards=tuple(shards),
        boundary_edges=boundary,
        node_counts=node_counts,
        edge_counts=edge_counts,
    )
