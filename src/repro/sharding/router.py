"""Scatter-gather similarity queries over a :class:`ShardedEmbeddingStore`.

:class:`ScatterGatherRouter` is the sharded drop-in for
:class:`~repro.serving.service.QueryService.most_similar_batch`: it fans
each batch of query vectors out to one index per shard, asks every shard
for its local top-``topn+1``, and heap-merges the candidates by
``(-score, monolithic row)`` — the exact comparison order the monolithic
brute-force index sorts by — so with an exact per-shard index the merged
result is *identical* to the monolithic answer, including tie-breaks and
the self-key exclusion.

Correctness of the fan-out width: every row in the monolithic top-``k``
lives on some shard, and within that shard it outranks everything the
shard did not return — so each shard's local top-``k`` jointly cover the
monolithic top-``k`` for any partition of the rows.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

import numpy as np

from repro.errors import ServingError
from repro.serving.index import make_index
from repro.serving.service import LRUCache
from repro.sharding.store import ShardedEmbeddingStore


class ScatterGatherRouter:
    """Batched nearest-neighbour queries fanned across shard stores.

    Parameters
    ----------
    store:
        a :class:`ShardedEmbeddingStore` (or a monolithic
        :class:`~repro.serving.store.EmbeddingStore` plus ``plan=`` to
        split it here).
    index:
        registered index name built once per non-empty shard
        (``"bruteforce"`` keeps exact monolithic parity; approximate
        indexes trade that for speed exactly as they do monolithically).
    cache_size:
        LRU entries memoised per ``(key, topn)``; ``0`` disables caching.
    index_params:
        forwarded to each per-shard index factory.
    """

    def __init__(self, store, index="bruteforce", *, plan=None, cache_size: int = 4096, **index_params):
        if not isinstance(store, ShardedEmbeddingStore):
            if plan is None:
                raise ServingError(
                    "ScatterGatherRouter needs a ShardedEmbeddingStore, or a "
                    "monolithic EmbeddingStore together with plan="
                )
            store = ShardedEmbeddingStore.from_store(store, plan)
        self.store = store
        self.index_name = index if isinstance(index, str) else getattr(index, "name", "custom")
        self._index_params = dict(index_params)
        # empty shards cannot host an index (IVF refuses an empty store)
        # and contribute no candidates anyway
        self.indexes = [
            make_index(self.index_name, s, **index_params) if len(s) else None
            for s in store.stores
        ]
        self.cache = LRUCache(cache_size) if cache_size else None
        self.counters = {
            "queries": 0,
            "batches": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "fanouts": 0,
            "refreshes": 0,
            "seconds": 0.0,
        }
        self._counters_lock = threading.Lock()

    def _bump(self, **deltas) -> None:
        with self._counters_lock:
            for name, delta in deltas.items():
                self.counters[name] += delta

    # ------------------------------------------------------------------
    def _scatter(self, qvecs: np.ndarray, k: int):
        """Per-shard local top-``k``, remapped to (monolithic row, score)."""
        merged_rows, merged_scores = [], []
        for j in range(self.store.num_shards):
            if self.indexes[j] is None:
                continue
            rows, scores = self.indexes[j].topk(qvecs, k)
            merged_rows.append(
                np.where(rows >= 0, self.store.monolith_rows[j][np.maximum(rows, 0)], -1)
            )
            merged_scores.append(scores)
            self._bump(fanouts=1)
        if not merged_rows:
            m = qvecs.shape[0]
            return np.full((m, 0), -1, dtype=np.int64), np.full((m, 0), -np.inf, dtype=np.float32)
        return np.concatenate(merged_rows, axis=1), np.concatenate(merged_scores, axis=1)

    def _gather(self, own_row: int, rows: np.ndarray, scores: np.ndarray, topn: int):
        """Merge one query's shard candidates into the monolithic top list.

        ``heapq.merge``-equivalent done with one lexsort: candidates are
        ordered by descending score, ties by ascending monolithic row —
        matching ``_topk_rows``'s stable argsort over ascending columns —
        then the monolithic ``_decode`` walk (skip missing, skip self,
        stop at ``topn``) runs over that order.
        """
        order = np.lexsort((rows, -scores))
        keys = self.store.keys_by_row
        out = []
        for pos in order:
            row = int(rows[pos])
            if row < 0 or row == own_row:
                continue
            out.append((int(keys[row]), float(scores[pos])))
            if len(out) == topn:
                break
        return out

    def most_similar_batch(self, keys, topn: int = 10) -> list[list[tuple[int, float]]]:
        """Top-``topn`` neighbours (key, cosine) for each query key.

        Semantics mirror :meth:`QueryService.most_similar_batch`: one
        scatter answers all cache misses, duplicate keys share one fan-
        out, and each query's own key is excluded from its result.
        """
        if topn < 1:
            raise ServingError("topn must be >= 1")
        start = time.perf_counter()
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        results: list = [None] * keys.size
        miss_positions = []
        if self.cache is None:
            miss_positions = list(range(keys.size))
        else:
            for i, key in enumerate(keys):
                hit = self.cache.get((int(key), topn))
                if hit is None:
                    miss_positions.append(i)
                else:
                    results[i] = list(hit)
            self._bump(
                cache_hits=keys.size - len(miss_positions),
                cache_misses=len(miss_positions),
            )
        if miss_positions:
            miss_keys = keys[miss_positions]
            uniq_keys, inverse = np.unique(miss_keys, return_inverse=True)
            own_rows = self.store.rows_for(uniq_keys)
            qvecs = self.store.decode_monolith_rows(own_rows)
            # one extra per shard so dropping the query itself still
            # leaves topn — the same slack the monolithic service asks for
            cand_rows, cand_scores = self._scatter(qvecs, topn + 1)
            merged = [
                self._gather(int(own_rows[i]), cand_rows[i], cand_scores[i], topn)
                for i in range(uniq_keys.size)
            ]
            if self.cache is not None:
                for key, result in zip(uniq_keys, merged):
                    self.cache.put((int(key), topn), tuple(result))
            for pos, j in zip(miss_positions, inverse):
                results[pos] = list(merged[j])
        self._bump(
            queries=int(keys.size), batches=1, seconds=time.perf_counter() - start
        )
        return results

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot shaped like ``QueryService.stats`` plus shard info."""
        with self._counters_lock:
            c = dict(self.counters)
        seconds = c["seconds"]
        c["qps"] = (c["queries"] / seconds) if seconds > 0 else 0.0
        c["mean_batch_ms"] = (1000.0 * seconds / c["batches"]) if c["batches"] else 0.0
        lookups = c["cache_hits"] + c["cache_misses"]
        c["cache_hit_rate"] = (c["cache_hits"] / lookups) if lookups else 0.0
        c["index"] = self.index_name
        c["store_count"] = len(self.store)
        c["store_dimensions"] = self.store.dimensions
        c["codec"] = self.store.codec.name if self.store.codec is not None else "float32"
        c["store_bytes"] = int(self.store.nbytes)
        c["num_shards"] = self.store.num_shards
        c["shard_counts"] = [int(n) for n in self.store.counts()]
        return c

    def reset_stats(self) -> None:
        """Zero all counters (the cache is kept)."""
        with self._counters_lock:
            for key in self.counters:
                self.counters[key] = 0.0 if key == "seconds" else 0


def merge_shard_topk(per_shard, topn: int):
    """K-way heap merge of per-shard ``[(row, score), ...]`` lists.

    Each shard list must already be sorted by ``(-score, row)`` — the
    order every shard index returns — and the merge preserves that order
    globally, truncated to ``topn``. The streaming sibling of the
    router's batched :meth:`~ScatterGatherRouter.most_similar_batch`
    merge, for callers that gather shard replies incrementally.
    """
    merged = heapq.merge(
        *[[(-score, row) for row, score in chunk] for chunk in per_shard]
    )
    return [(row, -neg) for neg, row in itertools.islice(merged, topn)]


__all__ = ["ScatterGatherRouter", "merge_shard_topk"]
