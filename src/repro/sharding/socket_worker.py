"""The network-facing shard worker: ``repro shard-worker`` lives here.

One process, one listening socket, one shard. The worker is started
*empty* — it knows nothing about the graph until a driver connects and
sends the ``SETUP`` bootstrap (shard arrays + local subgraph + sampler
config), after which it is an ordinary :class:`~repro.sharding.worker.
ShardWorker` driven by binary op frames instead of in-process method
calls. That inversion is what makes multi-host deployment trivial: the
only thing an operator provisions per machine is ``repro shard-worker
--host 0.0.0.0 --port N`` — no dataset files, no shard assignment
flags; the driver ships each worker exactly the slice it owns.

Because workers are RNG-free by design (the driver draws every uniform
and ships slices — see :mod:`repro.sharding.engine`), a socket worker
computes bit-for-bit what an inline worker computes; the wire changes
latency, never results.

Session shape, mirroring the driver-side :class:`~repro.sharding.
transport.SocketTransport`:

* first frame must be ``SETUP`` (anything else is a protocol violation
  and ends the session);
* ``CALL`` frames dispatch ops on the worker; op failures answer with
  a typed ``ERROR`` frame and the session continues — the driver
  decides whether the run is salvageable;
* ``PING`` answers ``PONG`` (the transport's liveness probe);
* ``CLOSE`` answers ``BYE`` and ends the session (graceful drain);
* EOF or a framing violation ends the session without reply — the
  driver observes a short read and raises its typed error.
"""

from __future__ import annotations

import os
import socket

from repro.errors import FrameError, ReproError
from repro.serving.framing import MAX_BINARY_FRAME_BYTES, recv_frame, send_frame
from repro.sharding import wire


def _build_worker(setup):
    """Materialise a ShardWorker from a driver's SETUP bootstrap."""
    from repro.sharding.transport import _build_worker as build

    shard_arrays, graph, config = setup
    return build(shard_arrays, graph, config)


def _serve_session(conn, *, max_bytes: int = MAX_BINARY_FRAME_BYTES) -> None:
    """Run one driver session on an accepted connection until drain/EOF."""
    worker = None
    try:
        while True:
            payload = recv_frame(conn, max_bytes=max_bytes)
            if payload is None:
                return  # driver went away between frames
            kind, body = wire.decode_message(payload)
            if kind == wire.KIND_SETUP:
                worker = _build_worker(body)
                send_frame(conn, wire.encode_result(True), max_bytes=max_bytes)
                continue
            if kind == wire.KIND_PING:
                send_frame(conn, wire.encode_simple(wire.KIND_PONG), max_bytes=max_bytes)
                continue
            if kind == wire.KIND_CLOSE:
                send_frame(conn, wire.encode_simple(wire.KIND_BYE), max_bytes=max_bytes)
                return
            if kind != wire.KIND_CALL or worker is None:
                # out-of-order or unknown traffic: the session is not
                # recoverable, and an un-SETUP worker has no ops to run
                return
            op, args = body
            try:
                result = getattr(worker, op)(*args)
            except (ReproError, AttributeError, TypeError, ValueError, KeyError, IndexError) as err:
                reply = wire.encode_error(type(err).__name__, str(err))
            else:
                reply = wire.encode_result(result)
            send_frame(conn, reply, max_bytes=max_bytes)
    except (FrameError, OSError):
        return  # driver died mid-frame; nothing left to answer
    finally:
        if worker is not None:
            worker.close()
        try:
            conn.close()
        except OSError:
            pass


def serve_shard(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    sessions: int = 1,
    on_ready=None,
    max_bytes: int = MAX_BINARY_FRAME_BYTES,
) -> tuple[str, int]:
    """Listen on ``host:port`` and serve ``sessions`` driver sessions.

    ``port=0`` binds an ephemeral port; the bound ``(host, port)`` is
    passed to ``on_ready`` (and returned) so launchers — the loopback
    transport, the CLI, CI scripts — can discover the address before
    the first driver connects. Each session runs to its graceful drain
    (or the driver's death); the listener then accepts the next one, so
    a standing worker survives driver restarts when ``sessions > 1``.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, int(port)))
        listener.listen(1)
        address = listener.getsockname()[:2]
        if on_ready is not None:
            on_ready(address)
        for __ in range(int(sessions)):
            conn, __peer = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _serve_session(conn, max_bytes=max_bytes)
    finally:
        try:
            listener.close()
        except OSError:
            pass
    return address


def _loopback_worker_main(ready_conn, host: str) -> None:
    """Child-process entry for driver-spawned loopback workers.

    Binds an ephemeral port, reports it through the pipe, serves one
    session, and exits hard — a loopback worker has no business
    outliving its driver session, and ``os._exit`` avoids re-running
    the parent's atexit machinery in the fork.
    """
    try:
        def report(address):
            ready_conn.send(address)
            ready_conn.close()

        serve_shard(host, 0, sessions=1, on_ready=report)
    finally:
        os._exit(0)


__all__ = ["serve_shard"]
