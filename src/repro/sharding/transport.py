"""Driver-to-worker transports for the sharded walk engine.

Three interchangeable implementations of the same op protocol (``call``
/ ``call_many`` / ``close``):

* :class:`InlineTransport` — workers live in the driver process and ops
  are direct method calls. Zero serialization; the reference used by the
  bitwise-parity tests and the default for small graphs.
* :class:`ProcessTransport` — one OS process per shard, ops shipped
  over a ``multiprocessing.Pipe``. Each shard's local CSR is exported
  once into ``multiprocessing.shared_memory`` segments (the PR-7 walk
  transport) so the worker wraps zero-copy views instead of a pickled
  copy; platforms without usable shared memory fall back to pickling
  the local graph.
* :class:`SocketTransport` — one TCP connection per shard to a
  ``repro shard-worker`` process that may live on **another machine**.
  Ops travel as length-prefixed binary frames (:mod:`repro.sharding.
  wire`: array headers + raw bytes, no pickle on the hot path); the
  driver connects with retry/backoff, bounds every call with a
  timeout, probes liveness with ping frames and drains gracefully on
  close. Given no host list it spawns loopback workers itself, so the
  multi-process socket path runs end to end on one machine (the CI
  shape).

``call_many`` is the fan-out primitive: the process transport sends all
requests before collecting any reply, and the socket transport runs
each shard's request sequence on its own thread, so per-shard work
overlaps.

Failure discipline (shared by the out-of-process transports): any
connection-layer failure — a worker death, a short read, a missed
deadline — raises a typed :class:`~repro.errors.ShardError` (timeouts:
:class:`~repro.errors.ShardTimeoutError`) *and marks the transport
broken*. A broken transport refuses further calls instead of reading a
survivor's stale reply against the wrong op; the caller builds a fresh
engine. Remote *op* errors (the worker answered, typed) leave the
connection in sync and the transport usable.
"""

from __future__ import annotations

import socket
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import FrameError, ShardError, ShardTimeoutError
from repro.serving.framing import MAX_BINARY_FRAME_BYTES, recv_frame, send_frame
from repro.sharding import wire
from repro.sharding.worker import ShardWorker
from repro.walks.parallel import (
    _attach_shared_graph,
    _export_shared_graph,
    _release_segments,
)

#: op-protocol close sentinel (distinguishable from any (op, args) pair).
_CLOSE = None


def _build_worker(shard_arrays, graph, config) -> ShardWorker:
    return ShardWorker(
        shard_arrays["shard_id"],
        shard_arrays["num_shards"],
        graph,
        shard_arrays["node_map"],
        shard_arrays["edge_map"],
        shard_arrays["global_to_local"],
        shard_arrays["owned_local"],
        shard_arrays["owner"],
        config["model"],
        config["model_params"],
        config["sampler"],
        config["options"],
    )


def _shard_arrays(shard, num_shards: int, owner: np.ndarray) -> dict:
    return {
        "shard_id": shard.shard_id,
        "num_shards": num_shards,
        "node_map": shard.node_map,
        "edge_map": shard.edge_map,
        "global_to_local": shard.global_to_local,
        "owned_local": shard.owned_local,
        "owner": owner,
    }


class InlineTransport:
    """Workers in-process; ops are direct method calls."""

    name = "inline"

    def __init__(self, plan, model: str, model_params: dict, sampler: str, options: dict):
        config = {
            "model": model,
            "model_params": model_params,
            "sampler": sampler,
            "options": options,
        }
        self.workers = [
            _build_worker(_shard_arrays(shard, plan.num_shards, plan.owner), shard.graph, config)
            for shard in plan.shards
        ]

    def call(self, shard_id: int, op: str, *args):
        return getattr(self.workers[shard_id], op)(*args)

    def call_many(self, calls):
        """Run ``(shard_id, op, args)`` requests; returns results in order."""
        return [self.call(shard_id, op, *args) for shard_id, op, args in calls]

    def close(self):
        for worker in self.workers:
            worker.close()


def _worker_main(conn, graph_payload, shard_arrays, config):
    """Child-process loop: attach the shard graph, serve ops until close."""
    segments = []
    if graph_payload[0] == "shm":
        __, specs, meta = graph_payload
        graph, segments = _attach_shared_graph(specs, meta)
    else:
        graph = graph_payload[1]
    worker = _build_worker(shard_arrays, graph, config)
    try:
        while True:
            message = conn.recv()
            if message is _CLOSE or message is None:
                break
            op, args = message
            conn.send(getattr(worker, op)(*args))
    except EOFError:
        pass
    finally:
        _release_segments(segments, unlink=False)
        conn.close()


class ProcessTransport:
    """One worker process per shard, shared-memory CSR transport."""

    name = "process"

    def __init__(self, plan, model: str, model_params: dict, sampler: str, options: dict):
        import multiprocessing as mp

        config = {
            "model": model,
            "model_params": model_params,
            "sampler": sampler,
            "options": options,
        }
        ctx = mp.get_context()
        self._segments: list = []
        self._pipes = []
        self._procs = []
        self._broken = False
        self._closed = False
        started = False
        try:
            for shard in plan.shards:
                local_segments: list = []
                try:
                    payload = _export_shared_graph(local_segments, shard.graph)
                    self._segments.extend(local_segments)
                except (OSError, ImportError, ValueError):
                    # no usable shared memory: ship the local graph itself
                    _release_segments(local_segments, unlink=True)
                    payload = ("pickle", shard.graph)
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        payload,
                        _shard_arrays(shard, plan.num_shards, plan.owner),
                        config,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._procs.append(proc)
            started = True
        finally:
            # unwind partially-started workers on any failure (including
            # KeyboardInterrupt) without swallowing the exception
            if not started:
                self.close()

    def _check_usable(self) -> None:
        if self._closed:
            raise ShardError("transport is closed; build a fresh engine")
        if self._broken:
            raise ShardError(
                "transport is broken after a failed operation: surviving "
                "workers may hold undelivered replies that would be matched "
                "to the wrong op; build a fresh engine"
            )

    def _send(self, shard_id: int, op: str, args) -> None:
        try:
            self._pipes[shard_id].send((op, args))
        except OSError as err:
            self._broken = True
            raise ShardError(f"shard worker {shard_id} is gone: {err}") from err

    def _recv(self, shard_id: int):
        try:
            return self._pipes[shard_id].recv()
        except (EOFError, OSError) as err:
            self._broken = True
            raise ShardError(
                f"shard worker {shard_id} died mid-operation (see its traceback)"
            ) from err

    def call(self, shard_id: int, op: str, *args):
        self._check_usable()
        self._send(shard_id, op, args)
        return self._recv(shard_id)

    def call_many(self, calls):
        """Fan out: send every request before collecting any reply.

        A worker dying mid-round leaves the survivors' unread replies
        queued in their pipes; ``_recv`` marks the transport broken
        before raising, so no later call can consume one of those stale
        replies against a different op.
        """
        self._check_usable()
        calls = list(calls)
        for shard_id, op, args in calls:
            self._send(shard_id, op, args)
        return [self._recv(shard_id) for shard_id, __, ___ in calls]

    def close(self):
        """Shut down workers and release every OS resource; idempotent."""
        if self._closed:
            return
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(_CLOSE)
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            # release the process sentinel fd eagerly instead of waiting
            # for GC — repeated engine builds must not accumulate fds
            try:
                proc.close()
            except ValueError:
                pass  # still alive after terminate; GC will reap it
        self._pipes = []
        self._procs = []
        _release_segments(self._segments, unlink=True)
        self._segments = []


def _parse_host(entry) -> tuple[str, int]:
    """Normalise one worker address: ``"host:port"`` or ``(host, port)``."""
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return str(entry[0]), int(entry[1])
    if isinstance(entry, str) and ":" in entry:
        host, __, port = entry.rpartition(":")
        try:
            return host, int(port)
        except ValueError:
            raise ShardError(f"invalid worker port in {entry!r}") from None
    raise ShardError(
        f"invalid worker address {entry!r}; expected 'host:port' or a "
        "(host, port) pair"
    )


class SocketTransport:
    """One TCP connection per shard worker; workers may be remote.

    With ``hosts`` (one ``host:port`` per shard) the transport connects
    to standing ``repro shard-worker`` processes — the multi-host
    deployment. Without, it spawns one loopback worker process per
    shard and connects to those — the single-machine e2e path CI
    exercises. Either way each worker is bootstrapped over the wire
    with its shard's arrays, subgraph and sampler config (``SETUP``),
    then driven by binary op frames.

    Robustness knobs (``options``): ``connect_timeout`` bounds the
    retry-with-backoff connect loop per worker, ``call_timeout`` bounds
    every op round-trip (``None`` disables), ``heartbeat_timeout``
    bounds the liveness probe. Every op's bytes and round-trip latency
    are accounted per shard; :meth:`transport_stats` surfaces the
    totals the benchmark's network-budget column records.
    """

    name = "socket"

    def __init__(self, plan, model: str, model_params: dict, sampler: str, options: dict):
        config = {
            "model": model,
            "model_params": model_params,
            "sampler": sampler,
            "options": options,
        }
        self.num_shards = plan.num_shards
        self.connect_timeout = float(options.get("connect_timeout") or 10.0)
        self.call_timeout = options.get("call_timeout", 120.0)
        if self.call_timeout is not None:
            self.call_timeout = float(self.call_timeout)
        self.heartbeat_timeout = float(options.get("heartbeat_timeout") or 5.0)
        self.max_frame_bytes = int(options.get("max_frame_bytes") or MAX_BINARY_FRAME_BYTES)
        hosts = options.get("hosts")
        self._socks: list = []
        self._procs: list = []
        self._pool: ThreadPoolExecutor | None = None
        self._broken = False
        self._closed = False
        # per-shard accounting slots: each shard's socket is driven by at
        # most one thread at a time, so slot writes never race
        self._bytes_sent = np.zeros(self.num_shards, dtype=np.int64)
        self._bytes_recv = np.zeros(self.num_shards, dtype=np.int64)
        self._migration_payload_bytes = np.zeros(self.num_shards, dtype=np.int64)
        self._op_calls: list[dict] = [dict() for __ in range(self.num_shards)]
        started = False
        try:
            if hosts is None:
                addresses = self._spawn_loopback()
            else:
                addresses = [_parse_host(entry) for entry in hosts]
                if len(addresses) != self.num_shards:
                    raise ShardError(
                        f"sharding.hosts lists {len(addresses)} worker "
                        f"address(es) but the plan has {self.num_shards} shard(s)"
                    )
            for shard_id, address in enumerate(addresses):
                self._socks.append(self._connect(shard_id, address))
            for shard_id, shard in enumerate(plan.shards):
                payload = wire.encode_setup(
                    (_shard_arrays(shard, plan.num_shards, plan.owner), shard.graph, config)
                )
                reply = self._roundtrip(shard_id, payload, "setup")
                kind, body = wire.decode_message(reply)
                if kind == wire.KIND_ERROR:
                    raise ShardError(
                        f"shard worker {shard_id} rejected its setup: "
                        f"{body[0]}: {body[1]}"
                    )
                if kind != wire.KIND_RESULT or body is not True:
                    raise ShardError(
                        f"shard worker {shard_id} answered setup with "
                        f"message kind {kind}; not a repro shard worker?"
                    )
            self.ping()  # liveness: every worker answers before the first op
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_shards, thread_name_prefix="shard-io"
            )
            started = True
        finally:
            if not started:
                self.close()

    # -- connection management -----------------------------------------
    def _spawn_loopback(self) -> list[tuple[str, int]]:
        """Start one local worker process per shard; returns addresses."""
        import multiprocessing as mp

        from repro.sharding.socket_worker import _loopback_worker_main

        ctx = mp.get_context()
        addresses = []
        for __ in range(self.num_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_loopback_worker_main, args=(child_conn, "127.0.0.1"), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            try:
                if not parent_conn.poll(self.connect_timeout):
                    raise ShardError(
                        "loopback shard worker did not report its address "
                        f"within {self.connect_timeout:g}s"
                    )
                addresses.append(tuple(parent_conn.recv()))
            except (EOFError, OSError) as err:
                raise ShardError(
                    f"loopback shard worker died before binding: {err}"
                ) from err
            finally:
                parent_conn.close()
        return addresses

    def _connect(self, shard_id: int, address: tuple[str, int]):
        """Dial one worker with retry + exponential backoff."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(
                    address, timeout=max(deadline - time.monotonic(), 0.001)
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(self.call_timeout)
                return sock
            except OSError as err:
                if time.monotonic() + delay >= deadline:
                    raise ShardError(
                        f"cannot reach shard worker {shard_id} at "
                        f"{address[0]}:{address[1]} within "
                        f"{self.connect_timeout:g}s: {err}"
                    ) from err
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _check_usable(self) -> None:
        if self._closed:
            raise ShardError("transport is closed; build a fresh engine")
        if self._broken:
            raise ShardError(
                "transport is broken after a failed operation: surviving "
                "workers may hold undelivered replies that would be matched "
                "to the wrong op; build a fresh engine"
            )

    def _roundtrip(self, shard_id: int, payload: bytes, op: str) -> bytearray:
        """One framed request/reply on a shard's socket, fully accounted."""
        sock = self._socks[shard_id]
        start = time.perf_counter()
        try:
            sent = send_frame(sock, payload, max_bytes=self.max_frame_bytes)
            self._bytes_sent[shard_id] += sent
            reply = recv_frame(sock, max_bytes=self.max_frame_bytes)
        except socket.timeout as err:
            self._broken = True
            raise ShardTimeoutError(
                f"shard worker {shard_id} did not answer op {op!r} within "
                f"{self.call_timeout:g}s"
            ) from err
        except (FrameError, OSError) as err:
            self._broken = True
            raise ShardError(
                f"shard worker {shard_id} died mid-operation "
                f"(op {op!r}): {err}"
            ) from err
        if reply is None:
            self._broken = True
            raise ShardError(
                f"shard worker {shard_id} closed the connection instead of "
                f"answering op {op!r}"
            )
        self._bytes_recv[shard_id] += len(reply) + 4
        slot = self._op_calls[shard_id].setdefault(op, [0, 0.0])
        slot[0] += 1
        slot[1] += time.perf_counter() - start
        return reply

    # -- op protocol -----------------------------------------------------
    def _call_raw(self, shard_id: int, op: str, args):
        payload = wire.encode_call(op, args)
        if op == "absorb":
            self._migration_payload_bytes[shard_id] += len(payload)
        reply = self._roundtrip(shard_id, payload, op)
        try:
            kind, body = wire.decode_message(reply)
        except FrameError as err:
            self._broken = True
            raise ShardError(
                f"shard worker {shard_id} sent a corrupt reply to op "
                f"{op!r}: {err}"
            ) from err
        if kind == wire.KIND_ERROR:
            # the worker answered: the connection is in sync and usable
            raise ShardError(
                f"shard worker {shard_id} failed op {op!r}: {body[0]}: {body[1]}"
            )
        if kind != wire.KIND_RESULT:
            self._broken = True
            raise ShardError(
                f"shard worker {shard_id} answered op {op!r} with message "
                f"kind {kind}"
            )
        return body

    def call(self, shard_id: int, op: str, *args):
        self._check_usable()
        return self._call_raw(shard_id, op, args)

    def call_many(self, calls):
        """Fan out concurrently: one I/O thread per shard, order preserved.

        Calls are grouped by shard (preserving each shard's request
        order — migration rounds send several ``absorb`` batches to one
        destination) and each group runs request-by-request on its own
        thread. Every thread runs to completion before any error is
        re-raised, so surviving connections are never abandoned with an
        in-flight reply; a connection-layer failure marks the transport
        broken all the same.
        """
        self._check_usable()
        calls = list(calls)
        groups: dict[int, list[int]] = {}
        for position, (shard_id, __, ___) in enumerate(calls):
            groups.setdefault(shard_id, []).append(position)

        def run_group(positions):
            return [
                self._call_raw(calls[position][0], calls[position][1], calls[position][2])
                for position in positions
            ]

        if len(groups) <= 1 or self._pool is None:
            ordered = {
                shard_id: run_group(positions) for shard_id, positions in groups.items()
            }
        else:
            futures = {
                shard_id: self._pool.submit(run_group, positions)
                for shard_id, positions in groups.items()
            }
            ordered = {}
            first_error = None
            for shard_id, future in futures.items():
                try:
                    ordered[shard_id] = future.result()
                except ShardError as err:
                    if first_error is None:
                        first_error = err
            if first_error is not None:
                raise first_error
        results = [None] * len(calls)
        for shard_id, positions in groups.items():
            for position, result in zip(positions, ordered[shard_id]):
                results[position] = result
        return results

    # -- liveness --------------------------------------------------------
    def ping(self) -> list[float]:
        """Heartbeat every worker; returns per-shard round-trip seconds.

        A worker that does not answer ``PONG`` within
        ``heartbeat_timeout`` raises :class:`~repro.errors.
        ShardTimeoutError` (and a dead one :class:`~repro.errors.
        ShardError`) — the cheap pre-flight that tells a dead fabric
        from a slow one.
        """
        self._check_usable()
        latencies = []
        for shard_id, sock in enumerate(self._socks):
            previous = sock.gettimeout()
            sock.settimeout(self.heartbeat_timeout)
            start = time.perf_counter()
            try:
                reply = self._roundtrip(
                    shard_id, wire.encode_simple(wire.KIND_PING), "ping"
                )
            finally:
                try:
                    sock.settimeout(previous)
                except OSError:
                    pass
            kind, __ = wire.decode_message(reply)
            if kind != wire.KIND_PONG:
                self._broken = True
                raise ShardError(
                    f"shard worker {shard_id} answered the heartbeat with "
                    f"message kind {kind}"
                )
            latencies.append(time.perf_counter() - start)
        return latencies

    # -- observability ---------------------------------------------------
    def transport_stats(self) -> dict:
        """Wire-budget counters: bytes each way, payloads, per-op latency."""
        per_op: dict = {}
        for shard_ops in self._op_calls:
            for op, (count, seconds) in shard_ops.items():
                slot = per_op.setdefault(op, {"calls": 0, "seconds": 0.0})
                slot["calls"] += count
                slot["seconds"] += seconds
        for slot in per_op.values():
            slot["mean_ms"] = 1000.0 * slot["seconds"] / slot["calls"] if slot["calls"] else 0.0
            slot["seconds"] = round(slot["seconds"], 6)
            slot["mean_ms"] = round(slot["mean_ms"], 4)
        return {
            "bytes_sent": int(self._bytes_sent.sum()),
            "bytes_recv": int(self._bytes_recv.sum()),
            "migration_payload_bytes": int(self._migration_payload_bytes.sum()),
            "op_latency": per_op,
        }

    # -- lifecycle -------------------------------------------------------
    def close(self):
        """Drain workers gracefully and release sockets/processes; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard_id, sock in enumerate(self._socks):
            if not self._broken:
                try:
                    sock.settimeout(self.heartbeat_timeout)
                    send_frame(
                        sock, wire.encode_simple(wire.KIND_CLOSE),
                        max_bytes=self.max_frame_bytes,
                    )
                    recv_frame(sock, max_bytes=self.max_frame_bytes)  # BYE
                except (FrameError, OSError):
                    pass  # the drain is best-effort; the socket closes anyway
            try:
                sock.close()
            except OSError:
                pass
        self._socks = []
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            try:
                proc.close()
            except ValueError:
                pass
        self._procs = []


#: transport name -> class; the engine resolves its ``transport=`` knob here.
TRANSPORTS = {
    "inline": InlineTransport,
    "process": ProcessTransport,
    "socket": SocketTransport,
}


def make_transport(name, plan, model, model_params, sampler, options):
    """Build the named transport; unknown names raise :class:`ShardError`."""
    if not isinstance(name, str) or name.strip().lower() not in TRANSPORTS:
        raise ShardError(
            f"unknown shard transport {name!r}; available: {sorted(TRANSPORTS)}"
        )
    cls = TRANSPORTS[name.strip().lower()]
    return cls(plan, model, model_params, sampler, options)
