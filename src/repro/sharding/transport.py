"""Driver-to-worker transports for the sharded walk engine.

Two interchangeable implementations of the same op protocol (``call`` /
``call_many`` / ``close``):

* :class:`InlineTransport` — workers live in the driver process and ops
  are direct method calls. Zero serialization; the reference used by the
  bitwise-parity tests and the default for small graphs.
* :class:`ProcessTransport` — one OS process per shard, ops shipped
  over a ``multiprocessing.Pipe``. Each shard's local CSR is exported
  once into ``multiprocessing.shared_memory`` segments (the PR-7 walk
  transport) so the worker wraps zero-copy views instead of a pickled
  copy; platforms without usable shared memory fall back to pickling
  the local graph.

``call_many`` is the fan-out primitive: the process transport sends all
requests before collecting any reply, so per-shard work overlaps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShardError
from repro.sharding.worker import ShardWorker
from repro.walks.parallel import (
    _attach_shared_graph,
    _export_shared_graph,
    _release_segments,
)

#: op-protocol close sentinel (distinguishable from any (op, args) pair).
_CLOSE = None


def _build_worker(shard_arrays, graph, config) -> ShardWorker:
    return ShardWorker(
        shard_arrays["shard_id"],
        shard_arrays["num_shards"],
        graph,
        shard_arrays["node_map"],
        shard_arrays["edge_map"],
        shard_arrays["global_to_local"],
        shard_arrays["owned_local"],
        shard_arrays["owner"],
        config["model"],
        config["model_params"],
        config["sampler"],
        config["options"],
    )


def _shard_arrays(shard, num_shards: int, owner: np.ndarray) -> dict:
    return {
        "shard_id": shard.shard_id,
        "num_shards": num_shards,
        "node_map": shard.node_map,
        "edge_map": shard.edge_map,
        "global_to_local": shard.global_to_local,
        "owned_local": shard.owned_local,
        "owner": owner,
    }


class InlineTransport:
    """Workers in-process; ops are direct method calls."""

    name = "inline"

    def __init__(self, plan, model: str, model_params: dict, sampler: str, options: dict):
        config = {
            "model": model,
            "model_params": model_params,
            "sampler": sampler,
            "options": options,
        }
        self.workers = [
            _build_worker(_shard_arrays(shard, plan.num_shards, plan.owner), shard.graph, config)
            for shard in plan.shards
        ]

    def call(self, shard_id: int, op: str, *args):
        return getattr(self.workers[shard_id], op)(*args)

    def call_many(self, calls):
        """Run ``(shard_id, op, args)`` requests; returns results in order."""
        return [self.call(shard_id, op, *args) for shard_id, op, args in calls]

    def close(self):
        for worker in self.workers:
            worker.close()


def _worker_main(conn, graph_payload, shard_arrays, config):
    """Child-process loop: attach the shard graph, serve ops until close."""
    segments = []
    if graph_payload[0] == "shm":
        __, specs, meta = graph_payload
        graph, segments = _attach_shared_graph(specs, meta)
    else:
        graph = graph_payload[1]
    worker = _build_worker(shard_arrays, graph, config)
    try:
        while True:
            message = conn.recv()
            if message is _CLOSE or message is None:
                break
            op, args = message
            conn.send(getattr(worker, op)(*args))
    except EOFError:
        pass
    finally:
        _release_segments(segments, unlink=False)
        conn.close()


class ProcessTransport:
    """One worker process per shard, shared-memory CSR transport."""

    name = "process"

    def __init__(self, plan, model: str, model_params: dict, sampler: str, options: dict):
        import multiprocessing as mp

        config = {
            "model": model,
            "model_params": model_params,
            "sampler": sampler,
            "options": options,
        }
        ctx = mp.get_context()
        self._segments: list = []
        self._pipes = []
        self._procs = []
        started = False
        try:
            for shard in plan.shards:
                local_segments: list = []
                try:
                    payload = _export_shared_graph(local_segments, shard.graph)
                    self._segments.extend(local_segments)
                except (OSError, ImportError, ValueError):
                    # no usable shared memory: ship the local graph itself
                    _release_segments(local_segments, unlink=True)
                    payload = ("pickle", shard.graph)
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        payload,
                        _shard_arrays(shard, plan.num_shards, plan.owner),
                        config,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._procs.append(proc)
            started = True
        finally:
            # unwind partially-started workers on any failure (including
            # KeyboardInterrupt) without swallowing the exception
            if not started:
                self.close()

    def _send(self, shard_id: int, op: str, args) -> None:
        try:
            self._pipes[shard_id].send((op, args))
        except (OSError, BrokenPipeError) as err:
            raise ShardError(f"shard worker {shard_id} is gone: {err}") from err

    def _recv(self, shard_id: int):
        try:
            return self._pipes[shard_id].recv()
        except (EOFError, OSError) as err:
            raise ShardError(
                f"shard worker {shard_id} died mid-operation (see its traceback)"
            ) from err

    def call(self, shard_id: int, op: str, *args):
        self._send(shard_id, op, args)
        return self._recv(shard_id)

    def call_many(self, calls):
        """Fan out: send every request before collecting any reply."""
        calls = list(calls)
        for shard_id, op, args in calls:
            self._send(shard_id, op, args)
        return [self._recv(shard_id) for shard_id, __, ___ in calls]

    def close(self):
        for pipe in self._pipes:
            try:
                pipe.send(_CLOSE)
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        self._pipes = []
        self._procs = []
        _release_segments(self._segments, unlink=True)
        self._segments = []


#: transport name -> class; the engine resolves its ``transport=`` knob here.
TRANSPORTS = {
    "inline": InlineTransport,
    "process": ProcessTransport,
}


def make_transport(name, plan, model, model_params, sampler, options):
    """Build the named transport; unknown names raise :class:`ShardError`."""
    if not isinstance(name, str) or name.strip().lower() not in TRANSPORTS:
        raise ShardError(
            f"unknown shard transport {name!r}; available: {sorted(TRANSPORTS)}"
        )
    cls = TRANSPORTS[name.strip().lower()]
    return cls(plan, model, model_params, sampler, options)
