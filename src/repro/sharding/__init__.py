"""Sharded execution: partitioned graphs, walker migration, scatter-gather.

The scale-out layer over the single-process engines. Partitioners split
the CSR into per-shard local views (:mod:`repro.sharding.partitioner`),
:class:`ShardedWalkEngine` runs one worker per shard with KnightKing-
style walker migration and driver-owned RNG for bitwise parity with
:class:`~repro.walks.vectorized.VectorizedWalkEngine`
(:mod:`repro.sharding.engine`), and the serving side fans similarity
queries across per-shard stores with exact top-k merge
(:mod:`repro.sharding.router`).
"""

from repro.sharding.engine import ShardedWalkEngine
from repro.sharding.partitioner import (
    PARTITIONER_REGISTRY,
    DegreeBalancedPartitioner,
    HashPartitioner,
    Shard,
    ShardPlan,
    build_shard_plan,
    make_partitioner,
    register_partitioner,
)
from repro.sharding.router import ScatterGatherRouter
from repro.sharding.socket_worker import serve_shard
from repro.sharding.store import ShardedEmbeddingStore
from repro.sharding.transport import (
    InlineTransport,
    ProcessTransport,
    SocketTransport,
    make_transport,
)

__all__ = [
    "PARTITIONER_REGISTRY",
    "DegreeBalancedPartitioner",
    "HashPartitioner",
    "InlineTransport",
    "ProcessTransport",
    "SocketTransport",
    "ScatterGatherRouter",
    "Shard",
    "ShardPlan",
    "ShardedEmbeddingStore",
    "ShardedWalkEngine",
    "build_shard_plan",
    "make_partitioner",
    "make_transport",
    "register_partitioner",
    "serve_shard",
]
