"""Sharded walk engine: one driver, one RNG, one worker per shard.

The driver mirrors :class:`~repro.walks.vectorized.VectorizedWalkEngine`
wave-for-wave: it owns the full graph (for the cheap O(walkers) wave
bookkeeping — lane compaction, target lookups, pending sets, the
KnightKing outlier split), the bound model, and the **single** random
generator. Workers own the expensive O(edges) per-step work — weight
expansion, alias gathers, M-H chains — over their shard's local CSR.

Bitwise parity comes from one discipline: every uniform the monolithic
engine would draw is drawn *here*, in the same order, over the union of
all lanes in monolithic lane order, and then sliced per shard by lane
ownership. Workers consume their slices positionally (their resident
arrays are id-sorted, matching the driver's lane order) and never draw.
Because each per-entry kernel in this repo maps one uniform to one lane
or edge entry independently of the others, a worker evaluating its
slice computes exactly what the monolith computes for those lanes — so
the corpus is identical for any partitioner and any shard count.

Walkers that step across a shard boundary are emigrated by their old
owner into typed migration batches (KnightKing's walker-centric
exchange) and relayed to the new owner before the next step; the
round/batch/walker counts surface in :meth:`ShardedWalkEngine.stats`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ShardError, WalkError
from repro.registry import INITIALIZER_REGISTRY, KERNEL_REGISTRY, SAMPLER_REGISTRY
from repro.sampling.base import NO_EDGE
from repro.sharding.partitioner import build_shard_plan
from repro.sharding.transport import make_transport
from repro.utils.rng import as_rng
from repro.walks.corpus import WalkCorpus
from repro.walks.models import make_model

#: samplers whose per-step RNG schedule the driver knows how to slice.
_SUPPORTED_SAMPLERS = (
    "mh",
    "direct",
    "alias",
    "alias-first-order",
    "rejection",
    "knightking",
)

_BUILTIN_INITIALIZERS = ("random", "high-weight", "burn-in")


class ShardedWalkEngine:
    """Drop-in sharded counterpart of :class:`VectorizedWalkEngine`.

    Same ``generate`` / ``stats`` / ``memory_bytes`` surface, same
    corpora bit-for-bit, plus partitioning and migration counters.
    Options the sharded execution model cannot honour raise
    :class:`~repro.errors.ShardError` up front: instance models or
    custom initializer objects (workers rebuild both from names),
    ``memory-aware`` sampling and table budgets (per-shard budget
    accounting is not modelled), injected chain stores, and non-NumPy
    kernel backends (workers drive the NumPy kernels).
    """

    def __init__(
        self,
        graph,
        model,
        sampler="mh",
        *,
        num_shards: int = 2,
        partitioner="hash",
        transport: str = "inline",
        initializer="high-weight",
        init_sample_cap: int | None = 16,
        burn_in_iterations: int = 100,
        table_budget_bytes=None,
        chain_store=None,
        max_reject_rounds: int = 10_000,
        budget=None,
        backend: str = "numpy",
        seed=None,
        hosts=None,
        connect_timeout: float = 10.0,
        call_timeout: float | None = 120.0,
        **model_params,
    ):
        start = time.perf_counter()
        if not isinstance(model, str):
            raise ShardError(
                "the sharded engine needs a model registry name; workers "
                "rebuild the model per shard from (name, params)"
            )
        if table_budget_bytes is not None or budget is not None:
            raise ShardError(
                "memory budgets are not supported by the sharded engine; "
                "use VectorizedWalkEngine for budgeted runs"
            )
        if chain_store is not None:
            raise ShardError(
                "chain_store injection is not supported: M-H chains live "
                "per shard inside the workers"
            )
        self.sampler = SAMPLER_REGISTRY.canonical(sampler)
        if self.sampler not in _SUPPORTED_SAMPLERS:
            raise ShardError(
                f"sampler {self.sampler!r} is not supported by the sharded "
                f"engine; supported: {list(_SUPPORTED_SAMPLERS)}"
            )
        if not isinstance(initializer, str):
            raise ShardError(
                "custom initializer instances are not supported by the "
                "sharded engine; register and pass a builtin name"
            )
        self.strategy = INITIALIZER_REGISTRY.canonical(initializer)
        if self.sampler == "mh" and self.strategy not in _BUILTIN_INITIALIZERS:
            raise ShardError(
                f"initializer {self.strategy!r} has no vectorized sharded "
                f"protocol; supported: {list(_BUILTIN_INITIALIZERS)}"
            )
        self.requested_backend = KERNEL_REGISTRY.canonical(backend)
        if self.requested_backend != "numpy":
            raise ShardError(
                "the sharded engine drives the NumPy kernels in its workers; "
                f"backend {self.requested_backend!r} is not supported"
            )
        self.graph = graph
        self.model = make_model(model, graph, **model_params)
        if self.sampler == "alias-first-order" and not self.model.is_static:
            # mirror the monolithic engine's error for exactness claims
            raise WalkError(
                f"first-order alias sampling is exact only for static models; "
                f"{self.model.name} has state-dependent weights (use sampler='alias')"
            )
        self.init_sample_cap = init_sample_cap
        self.burn_in_iterations = int(burn_in_iterations)
        self.max_reject_rounds = int(max_reject_rounds)
        self.plan = build_shard_plan(graph, num_shards, partitioner)
        self.num_shards = self.plan.num_shards
        if hosts is not None and transport != "socket":
            raise ShardError(
                "worker host lists only apply to transport='socket'; "
                f"transport is {transport!r}"
            )
        options = {
            "initializer": self.strategy,
            "init_sample_cap": init_sample_cap,
            "burn_in_iterations": self.burn_in_iterations,
            "hosts": list(hosts) if hosts is not None else None,
            "connect_timeout": float(connect_timeout),
            "call_timeout": call_timeout,
        }
        self.transport = make_transport(
            transport, self.plan, model, dict(model_params), self.sampler, options
        )
        # KnightKing folding mirrors the monolithic stepper's feature gate
        self.fold = (
            self.sampler == "knightking"
            and getattr(self.model, "supports_folding", False)
            and hasattr(self.model, "batch_outlier_excess")
        )
        self.row_totals = graph.weight_row_sums() if self.fold else None
        self.proposal_uniform = not graph.is_weighted
        # sampler counters (monolithic stats surface)
        self.samples = 0
        self.proposals = 0
        self.accepts = 0
        self.initializations = 0
        self.init_seconds = 0.0
        # migration counters (the sharded extras)
        self.migrated_walkers = 0
        self.migration_batches = 0
        self.migration_rounds = 0
        self.walker_steps = 0
        if self.sampler == "alias" and not self.model.is_static:
            built = self.transport.call_many(
                [(j, "tables_built", ()) for j in range(self.num_shards)]
            )
            self.initializations += int(np.sum(np.asarray(built, dtype=np.int64)))
        self.setup_seconds = time.perf_counter() - start
        self.backend = "numpy"
        self.compile_seconds = 0.0
        self.rng = as_rng(seed)

    # ------------------------------------------------------------------
    def generate(self, num_walks: int = 10, walk_length: int = 80, start_nodes=None) -> WalkCorpus:
        """Identical semantics (and corpus) to the monolithic ``generate``."""
        if num_walks < 1 or walk_length < 1:
            raise WalkError("num_walks and walk_length must be >= 1")
        if start_nodes is None:
            starts = self.model.valid_start_nodes()
        else:
            starts = np.asarray(start_nodes, dtype=np.int64)
        if starts.size == 0:
            raise WalkError("no valid start nodes for this model/graph")
        walks = np.full((num_walks * starts.size, walk_length), -1, dtype=np.int64)
        lengths = np.empty(num_walks * starts.size, dtype=np.int64)
        for wave in range(num_walks):
            base = wave * starts.size
            lengths[base : base + starts.size] = self._run_wave(
                starts, walk_length, walks, base
            )
        return WalkCorpus(walks, lengths)

    # ------------------------------------------------------------------
    def _run_wave(self, starts, walk_length, walks, row_base) -> np.ndarray:
        graph, owner, rng = self.graph, self.plan.owner, self.rng
        k = starts.size
        walks[row_base : row_base + k, 0] = starts
        lengths = np.ones(k, dtype=np.int64)
        ids = np.arange(k, dtype=np.int64)
        cur = starts.astype(np.int64).copy()
        prev = np.full(k, -1, dtype=np.int64)
        prev_off = np.full(k, -1, dtype=np.int64)
        shard_of = owner[cur]
        calls = []
        for j in range(self.num_shards):
            lanes = np.flatnonzero(shard_of == j)
            calls.append((j, "load_wave", (ids[lanes], cur[lanes])))
        self.transport.call_many(calls)
        for step in range(walk_length - 1):
            if cur.size == 0:
                break
            self.walker_steps += cur.size
            shard_of = owner[cur]
            lanes_per = [np.flatnonzero(shard_of == j) for j in range(self.num_shards)]
            chosen = self._dispatch_step(step, prev, prev_off, cur, shard_of, lanes_per)
            self._advance(chosen, lanes_per)
            alive = chosen != NO_EDGE
            ids = ids[alive]
            chosen = chosen[alive]
            prev = cur[alive]
            prev_off = chosen
            cur = graph.targets[chosen]
            walks[row_base + ids, step + 1] = cur
            lengths[ids] += 1
        return lengths

    def _advance(self, chosen, lanes_per) -> None:
        """Ship step outcomes; relay the returned migration batches."""
        calls = []
        for j in range(self.num_shards):
            calls.append((j, "advance", (chosen[lanes_per[j]],)))
        results = self.transport.call_many(calls)
        relays = []
        moved = 0
        for j in range(self.num_shards):
            for dest, batch in results[j].items():
                moved += int(batch[0].size)
                relays.append((dest, "absorb", batch))
        if relays:
            self.migration_rounds += 1
            self.migration_batches += len(relays)
            self.migrated_walkers += moved
            self.transport.call_many(relays)

    # -- per-step dispatch ---------------------------------------------
    def _dispatch_step(self, step, prev, prev_off, cur, shard_of, lanes_per):
        if self.model.order == 2 and step == 0:
            return self._step_rowflat("step_first", step, cur, shard_of, lanes_per)
        if self.sampler == "direct":
            out = self._step_rowflat("step_direct", step, cur, shard_of, lanes_per)
            self.proposals += cur.size
            self.samples += int((out != NO_EDGE).sum())
            return out
        if self.sampler == "alias-first-order" or (
            self.sampler == "alias" and self.model.is_static
        ):
            return self._step_alias_static(cur, lanes_per)
        if self.sampler == "alias":
            return self._step_alias_state(step, cur, lanes_per)
        if self.sampler == "mh":
            return self._step_mh(step, cur, shard_of, lanes_per)
        return self._step_reject(step, prev, cur, shard_of, lanes_per)

    def _scatter(self, results, lanes_per, k) -> np.ndarray:
        out = np.full(k, NO_EDGE, dtype=np.int64)
        for j in range(self.num_shards):
            out[lanes_per[j]] = results[j]
        return out

    def _step_rowflat(self, op, step, cur, shard_of, lanes_per):
        """Ops consuming one uniform per *edge entry* of the active rows."""
        deg = self.graph.offsets[cur + 1] - self.graph.offsets[cur]
        u = self.rng.random(int(deg.sum()))
        owner_rep = np.repeat(shard_of, deg)
        calls = []
        for j in range(self.num_shards):
            u_j = u[owner_rep == j]
            args = (u_j,) if op == "step_first" else (u_j, step)
            calls.append((j, op, args))
        return self._scatter(self.transport.call_many(calls), lanes_per, cur.size)

    def _step_alias_static(self, cur, lanes_per):
        k = cur.size
        u_slot = self.rng.random(k)
        u_keep = None if self.proposal_uniform else self.rng.random(k)
        calls = []
        for j in range(self.num_shards):
            lanes = lanes_per[j]
            uk = None if u_keep is None else u_keep[lanes]
            calls.append((j, "step_alias", (u_slot[lanes], uk)))
        out = self._scatter(self.transport.call_many(calls), lanes_per, k)
        self.proposals += k
        self.samples += int((out != NO_EDGE).sum())
        return out

    def _step_alias_state(self, step, cur, lanes_per):
        k = cur.size
        u_slot = self.rng.random(k)
        u_keep = self.rng.random(k)
        calls = []
        for j in range(self.num_shards):
            lanes = lanes_per[j]
            calls.append((j, "step_state_alias", (u_slot[lanes], u_keep[lanes], step)))
        out = self._scatter(self.transport.call_many(calls), lanes_per, k)
        self.proposals += k
        self.samples += int((out != NO_EDGE).sum())
        return out

    # -- M-H ------------------------------------------------------------
    def _step_mh(self, step, cur, shard_of, lanes_per):
        k = cur.size
        begin = self.transport.call_many(
            [(j, "mh_begin", (step,)) for j in range(self.num_shards)]
        )
        uninit = np.zeros(k, dtype=bool)
        for j in range(self.num_shards):
            uninit[lanes_per[j]] = begin[j]
        if uninit.any():
            t0 = time.perf_counter()
            self._mh_init(uninit, cur, shard_of)
            self.initializations += int(uninit.sum())
            self.init_seconds += time.perf_counter() - t0
        u_cand = self.rng.random(k)
        u_acc = self.rng.random(k)
        calls = []
        for j in range(self.num_shards):
            lanes = lanes_per[j]
            calls.append((j, "mh_exec", (u_cand[lanes], u_acc[lanes])))
        results = self.transport.call_many(calls)
        out = np.full(k, NO_EDGE, dtype=np.int64)
        for j in range(self.num_shards):
            chosen_j, n_ok, n_acc = results[j]
            out[lanes_per[j]] = chosen_j
            self.proposals += n_ok
            self.accepts += n_acc
            self.samples += n_ok
        return out

    def _mh_init(self, uninit, cur, shard_of) -> None:
        """Draw the initializer's uniforms and fan them to the workers.

        Draw order replicates the monolithic initializers exactly:
        high-weight takes one ``(lanes, cap)`` block; random takes one
        lane draw plus one support draw per edge entry of the
        zero-weight lanes; burn-in follows random with two lane draws
        per iteration, drawn iteration-by-iteration.
        """
        rng = self.rng
        own_un = shard_of[uninit]
        n_un = int(own_un.size)
        if self.strategy == "high-weight":
            cap = self.init_sample_cap
            if cap is None:
                calls = [(j, "mh_init_hw", (None,)) for j in range(self.num_shards)]
            else:
                u = rng.random((n_un, cap))
                calls = []
                for j in range(self.num_shards):
                    calls.append((j, "mh_init_hw", (u[own_un == j],)))
            self.transport.call_many(calls)
            return
        # random (also the burn-in seed): one uniform slot per lane
        u1 = rng.random(n_un)
        calls = []
        for j in range(self.num_shards):
            calls.append((j, "mh_init_rand", (u1[own_un == j],)))
        results = self.transport.call_many(calls)
        bad_un = np.zeros(n_un, dtype=bool)
        for j in range(self.num_shards):
            bad_un[np.flatnonzero(own_un == j)] = results[j]
        if bad_un.any():
            cur_un = cur[uninit]
            bad_cur = cur_un[bad_un]
            deg_b = self.graph.offsets[bad_cur + 1] - self.graph.offsets[bad_cur]
            u_s = rng.random(int(deg_b.sum()))
            rep = np.repeat(own_un[bad_un], deg_b)
            calls = []
            for j in range(self.num_shards):
                calls.append((j, "mh_init_support", (u_s[rep == j],)))
            self.transport.call_many(calls)
        if self.strategy == "burn-in":
            sched = np.empty((self.burn_in_iterations, 2, n_un))
            for it in range(self.burn_in_iterations):
                sched[it, 0] = rng.random(n_un)
                sched[it, 1] = rng.random(n_un)
            calls = []
            for j in range(self.num_shards):
                calls.append((j, "mh_init_burn", (sched[:, :, own_un == j],)))
            self.transport.call_many(calls)

    # -- rejection / KnightKing ----------------------------------------
    def _step_reject(self, step, prev, cur, shard_of, lanes_per):
        k = cur.size
        out = np.full(k, NO_EDGE, dtype=np.int64)
        offsets = self.graph.offsets
        deg = offsets[cur + 1] - offsets[cur]
        pending = np.flatnonzero(deg > 0)
        if pending.size == 0:
            return out
        if self.fold:
            bulk = self.model.bulk_bound
            rev, excess = self.model.batch_outlier_excess(prev, cur)
            envelope = bulk * self.row_totals[cur]
            total = excess + envelope
            pending = pending[total[pending] > 0]
            bound, clip = bulk, True
        else:
            bound, clip = self.model.alpha_bound(self.graph), False
        rng = self.rng
        for __ in range(self.max_reject_rounds):
            if pending.size == 0:
                break
            self.proposals += pending.size
            if self.fold:
                r = rng.random(pending.size) * total[pending]
                hit_outlier = r < excess[pending]
                chosen_out = pending[hit_outlier]
                out[chosen_out] = rev[chosen_out]
                round_lanes = pending[~hit_outlier]
                if round_lanes.size == 0:
                    pending = round_lanes
                    continue
            else:
                round_lanes = pending
            u_prop = rng.random(round_lanes.size)
            u_keep = None if self.proposal_uniform else rng.random(round_lanes.size)
            u_acc = rng.random(round_lanes.size)
            own_r = shard_of[round_lanes]
            calls = []
            for j in range(self.num_shards):
                sel = own_r == j
                rel = np.searchsorted(lanes_per[j], round_lanes[sel])
                uk = None if u_keep is None else u_keep[sel]
                calls.append(
                    (j, "reject_round", (rel, u_prop[sel], uk, u_acc[sel], bound, clip, step))
                )
            results = self.transport.call_many(calls)
            accept = np.zeros(round_lanes.size, dtype=bool)
            off = np.full(round_lanes.size, NO_EDGE, dtype=np.int64)
            for j in range(self.num_shards):
                sel = np.flatnonzero(own_r == j)
                off_j, acc_j = results[j]
                off[sel] = off_j
                accept[sel] = acc_j
            out[round_lanes[accept]] = off[accept]
            pending = round_lanes[~accept]
        self.samples += int((out != NO_EDGE).sum())
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Monolithic stats keys plus partitioning/migration counters."""
        out = {
            "samples": self.samples,
            "proposals": self.proposals,
            "accepts": self.accepts,
            "initializations": self.initializations,
            "init_seconds": self.init_seconds,
            "acceptance_ratio": (self.samples / self.proposals) if self.proposals else 1.0,
            "rebuilt_nodes": 0,
            "rebuild_cost_bytes": 0,
            "invalidated_states": 0,
            "delta_seconds": 0.0,
            "setup_seconds": self.setup_seconds,
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "compile_seconds": self.compile_seconds,
            "migrated_walkers": self.migrated_walkers,
            "migration_batches": self.migration_batches,
            "migration_rounds": self.migration_rounds,
            "walker_steps": self.walker_steps,
            "migration_rate": (
                self.migrated_walkers / self.walker_steps if self.walker_steps else 0.0
            ),
        }
        out.update(self.plan.stats())
        out["transport"] = self.transport.name
        transport_stats = getattr(self.transport, "transport_stats", None)
        if transport_stats is not None:
            out["transport_stats"] = transport_stats()
        return out

    def memory_bytes(self) -> int:
        """Total resident sampler bytes across all shard workers."""
        parts = self.transport.call_many(
            [(j, "memory_bytes", ()) for j in range(self.num_shards)]
        )
        return int(np.sum(np.asarray(parts, dtype=np.int64)))

    def close(self) -> None:
        """Shut down the transport (worker processes, shared segments)."""
        self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
