"""Binary message codec for the multi-host shard transport.

The op protocol the sharded engine speaks (:mod:`repro.sharding.worker`)
moves NumPy arrays almost exclusively: uniform slices out, chosen edge
offsets and typed migration batches back. Pickling those per step would
put an object graph and a copy on the hot path, so this codec writes
**array headers + raw bytes** instead: each value is a 1-byte tag
followed by a fixed layout, and arrays are ``dtype.str`` (which pins
byte order, so a little-endian driver and a big-endian worker still
agree) + shape + their C-contiguous buffer. Decoding wraps the received
``bytearray`` zero-copy with :func:`numpy.frombuffer` — the payload
allocation *is* the array allocation.

The value grammar is exactly what the op protocol needs, nothing more:

==========  =============================================================
tag         value
==========  =============================================================
``NONE``    ``None`` (optional uniforms, e.g. unweighted ``u_keep``)
``TRUE``/
``FALSE``   booleans (the ``clip`` flag)
``INT``     signed 64-bit (steps, counters; NumPy integers fold in)
``FLOAT``   IEEE double (bounds; NumPy floats fold in)
``STR``     UTF-8 with 32-bit length (op names, error payloads)
``ARRAY``   dtype.str + shape + raw C-order bytes
``TUPLE``   32-bit count + values (lists decode as tuples)
``DICT``    32-bit count + alternating key/value values (migration
            batches: destination shard -> walker-state arrays)
==========  =============================================================

On top of the values, one message envelope per frame: a 1-byte kind.
``CALL`` carries ``op`` + argument tuple, ``RESULT`` one value,
``ERROR`` the remote exception's type name + message, ``PING``/``PONG``
are the liveness probes, ``CLOSE``/``BYE`` the graceful-drain
handshake. ``SETUP`` is the one deliberate exception to the no-pickle
rule: it ships the shard's local graph and sampler config exactly once
at connect time, where generality beats speed.

Malformed bytes raise :class:`~repro.errors.FrameError` (the shared
framing taxonomy); unencodable values raise
:class:`~repro.errors.ShardError` at the sender, where the bug is.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.errors import FrameError, ShardError

# -- message kinds ----------------------------------------------------------
KIND_SETUP = 1
KIND_CALL = 2
KIND_RESULT = 3
KIND_ERROR = 4
KIND_PING = 5
KIND_PONG = 6
KIND_CLOSE = 7
KIND_BYE = 8

_KINDS = frozenset({
    KIND_SETUP, KIND_CALL, KIND_RESULT, KIND_ERROR,
    KIND_PING, KIND_PONG, KIND_CLOSE, KIND_BYE,
})

# -- value tags -------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_ARRAY = 6
_T_TUPLE = 7
_T_DICT = 8

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")


def _encode_value(value, out: list) -> None:
    if value is None:
        out.append(_U8.pack(_T_NONE))
    elif isinstance(value, (bool, np.bool_)):
        out.append(_U8.pack(_T_TRUE if value else _T_FALSE))
    elif isinstance(value, (int, np.integer)):
        out.append(_U8.pack(_T_INT))
        out.append(_I64.pack(int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(_U8.pack(_T_FLOAT))
        out.append(_F64.pack(float(value)))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_U8.pack(_T_STR))
        out.append(_U32.pack(len(body)))
        out.append(body)
    elif isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise ShardError("object-dtype arrays cannot cross the shard wire")
        arr = np.ascontiguousarray(value)
        dt = arr.dtype.str.encode("ascii")
        out.append(_U8.pack(_T_ARRAY))
        out.append(_U8.pack(len(dt)))
        out.append(dt)
        out.append(_U8.pack(arr.ndim))
        for dim in arr.shape:
            out.append(_U64.pack(dim))
        out.append(arr.tobytes())
    elif isinstance(value, (tuple, list)):
        out.append(_U8.pack(_T_TUPLE))
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_U8.pack(_T_DICT))
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise ShardError(
            f"value of type {type(value).__name__} cannot cross the shard "
            "wire; the op protocol moves arrays, scalars, tuples and dicts"
        )


class _Reader:
    """Cursor over one frame payload with bounds-checked primitives."""

    __slots__ = ("view", "pos")

    def __init__(self, payload):
        self.view = memoryview(payload)
        self.pos = 0

    def take(self, count: int) -> memoryview:
        end = self.pos + count
        if end > len(self.view):
            raise FrameError(
                f"truncated shard frame: wanted {count} bytes at offset "
                f"{self.pos}, payload is {len(self.view)} bytes"
            )
        chunk = self.view[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def done(self) -> bool:
        return self.pos == len(self.view)


def _decode_value(reader: _Reader):
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return str(reader.take(reader.u32()), "utf-8")
    if tag == _T_ARRAY:
        try:
            dtype = np.dtype(str(reader.take(reader.u8()), "ascii"))
        except (TypeError, ValueError) as err:
            raise FrameError(f"unknown dtype on the shard wire: {err}") from None
        shape = tuple(reader.u64() for __ in range(reader.u8()))
        count = 1
        for dim in shape:
            count *= dim
        body = reader.take(count * dtype.itemsize)
        return np.frombuffer(body, dtype=dtype).reshape(shape)
    if tag == _T_TUPLE:
        return tuple(_decode_value(reader) for __ in range(reader.u32()))
    if tag == _T_DICT:
        out = {}
        for __ in range(reader.u32()):
            key = _decode_value(reader)
            out[key] = _decode_value(reader)
        return out
    raise FrameError(f"unknown value tag {tag} on the shard wire")


# -- message envelopes ------------------------------------------------------
def encode_call(op: str, args) -> bytes:
    """One op request: ``CALL`` + op name + argument tuple."""
    out = [_U8.pack(KIND_CALL)]
    _encode_value(op, out)
    _encode_value(tuple(args), out)
    return b"".join(out)


def encode_result(value) -> bytes:
    """One op reply carrying the return value."""
    out = [_U8.pack(KIND_RESULT)]
    _encode_value(value, out)
    return b"".join(out)


def encode_error(exc_type: str, message: str) -> bytes:
    """One op reply carrying a remote exception, typed by name."""
    out = [_U8.pack(KIND_ERROR)]
    _encode_value(exc_type, out)
    _encode_value(message, out)
    return b"".join(out)


def encode_setup(payload) -> bytes:
    """The connect-time shard bootstrap (the one pickled message)."""
    return _U8.pack(KIND_SETUP) + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def encode_simple(kind: int) -> bytes:
    """A bare control message (``PING`` / ``PONG`` / ``CLOSE`` / ``BYE``)."""
    return _U8.pack(kind)


def decode_message(payload):
    """Parse one frame payload into ``(kind, body)``.

    ``body`` is ``(op, args)`` for ``CALL``, the value for ``RESULT``,
    ``(type_name, message)`` for ``ERROR``, the unpickled bootstrap for
    ``SETUP`` and ``None`` for the control kinds. Trailing bytes mean a
    corrupt frame and raise :class:`~repro.errors.FrameError`.
    """
    reader = _Reader(payload)
    kind = reader.u8()
    if kind not in _KINDS:
        raise FrameError(f"unknown shard message kind {kind}")
    if kind == KIND_SETUP:
        try:
            return kind, pickle.loads(reader.view[reader.pos :])
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError) as err:
            raise FrameError(f"undecodable shard setup payload: {err}") from None
    if kind == KIND_CALL:
        op = _decode_value(reader)
        args = _decode_value(reader)
        if not isinstance(op, str) or not isinstance(args, tuple):
            raise FrameError("malformed CALL frame: expected op name + args tuple")
        body = (op, args)
    elif kind == KIND_RESULT:
        body = _decode_value(reader)
    elif kind == KIND_ERROR:
        exc_type = _decode_value(reader)
        message = _decode_value(reader)
        if not isinstance(exc_type, str) or not isinstance(message, str):
            raise FrameError("malformed ERROR frame: expected two strings")
        body = (exc_type, message)
    else:
        body = None
    if not reader.done():
        raise FrameError(
            f"{len(reader.view) - reader.pos} trailing bytes after a "
            "complete shard message"
        )
    return kind, body


__all__ = [
    "KIND_SETUP",
    "KIND_CALL",
    "KIND_RESULT",
    "KIND_ERROR",
    "KIND_PING",
    "KIND_PONG",
    "KIND_CLOSE",
    "KIND_BYE",
    "encode_call",
    "encode_result",
    "encode_error",
    "encode_setup",
    "encode_simple",
    "decode_message",
]
