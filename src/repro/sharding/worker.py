"""Per-shard walk worker: local sampling state, zero RNG, typed migration.

One :class:`ShardWorker` owns a shard's local CSR plus the sampler
structures for its owned states (alias tables, M-H chains, proposal
stores) and the *resident* walkers currently standing on its owned
nodes. The KnightKing discipline: walker state moves to the data, the
data never moves to the walkers.

RNG discipline (the bitwise-parity contract): workers draw **no**
random numbers. The driver owns the single generator, draws every
uniform over the union of all shards' walkers in monolithic lane order,
and ships each worker the slice for its lanes. Because every kernel in
this repo maps one uniform to one walker/edge entry as a pure function
of that entry (see :func:`repro.walks._segments.race_keys`), evaluating
a slice locally reproduces exactly what the single-process engine
computes for those lanes — whatever the partitioner or shard count.

Residency invariant: the resident arrays are kept sorted by walker id,
which equals the driver's per-shard lane order (its lane arrays stay
id-ascending through compaction), so uniform slices align with resident
rows positionally — no index vectors on the wire.

All walker/node/edge coordinates on the wire are **global**; workers
translate at the boundary (nodes through the dense ``global_to_local``
map, edges through a binary search of the sorted ``edge_map``).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.alias import FirstOrderAliasStore
from repro.sampling.base import NO_EDGE
from repro.walks._segments import (
    concat_ranges,
    race_keys,
    segment_argmax,
    segment_race_argmin,
)
from repro.walks.kernels import KernelState, resolve_backend
from repro.walks.manager import ChainStore
from repro.walks.models import make_model
from repro.walks.vectorized import EagerStateAliasTables


class ShardWorker:
    """Executes one shard's share of every walk step, driven by ops."""

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        graph,
        node_map: np.ndarray,
        edge_map: np.ndarray,
        global_to_local: np.ndarray,
        owned_local: np.ndarray,
        owner: np.ndarray,
        model: str,
        model_params: dict,
        sampler: str,
        options: dict,
    ):
        self.shard_id = int(shard_id)
        self.num_shards = int(num_shards)
        self.graph = graph
        self.node_map = node_map
        self.edge_map = edge_map
        self.g2l = global_to_local
        self.owned_local = owned_local
        self.owner = owner
        self.model = make_model(model, graph, **(model_params or {}))
        self.sampler = sampler
        self.kernels = resolve_backend("numpy")
        self.burn_in_iterations = int(options.get("burn_in_iterations", 100))
        self.init_sample_cap = options.get("init_sample_cap", 16)
        # sampler-local structures (only what this sampler needs)
        self.proposal = None
        self.tables = None
        self.chains = None
        if sampler in ("alias-first-order", "rejection", "knightking") or (
            sampler == "alias" and self.model.is_static
        ):
            self.proposal = FirstOrderAliasStore(graph)
        elif sampler == "alias":
            # dynamic per-state tables, restricted to this shard's owned
            # states: a state's home is owner(cur), so the masks of the
            # shards partition the monolith's valid-state set exactly
            contexts = self.model.enumerate_state_contexts(graph)
            mask = self.owned_local[contexts["cur"]]
            self.tables = EagerStateAliasTables(graph, self.model, state_mask=mask)
        elif sampler == "mh":
            self.chains = ChainStore(graph, self.model)
        # resident walkers, global coordinates, sorted by walker id
        self.ids = np.empty(0, dtype=np.int64)
        self.prev_g = np.empty(0, dtype=np.int64)
        self.prev_off_g = np.empty(0, dtype=np.int64)
        self.cur_g = np.empty(0, dtype=np.int64)
        self._mh = None  # per-step M-H scratch between begin and exec

    # -- coordinate translation ----------------------------------------
    def _nodes_local(self, g: np.ndarray) -> np.ndarray:
        return np.where(g < 0, np.int64(-1), self.g2l[np.maximum(g, 0)])

    def _edges_local(self, g: np.ndarray) -> np.ndarray:
        local = np.searchsorted(self.edge_map, np.maximum(g, 0))
        return np.where(g < 0, np.int64(-1), local)

    def _edges_global(self, local: np.ndarray) -> np.ndarray:
        out = self.edge_map[np.maximum(local, 0)]
        return np.where(local < 0, np.int64(NO_EDGE), out)

    def _lanes(self):
        """Resident lanes in local coordinates."""
        return (
            self._nodes_local(self.prev_g),
            self._edges_local(self.prev_off_g),
            self._nodes_local(self.cur_g),
        )

    def _kernel_state(self) -> KernelState:
        ks = KernelState.for_graph(self.graph, self.model)
        if self.proposal is not None:
            ks.prop_threshold = self.proposal.threshold
            ks.prop_alias = self.proposal.alias
        if self.tables is not None:
            ks.tab_base = self.tables.base
            ks.tab_threshold = self.tables.threshold
            ks.tab_alias = self.tables.alias_local
            ks.tab_deg = self.tables.table_deg
            ks.tab_has = self.tables.has_table
        if self.chains is not None:
            ks.chain_last = self.chains.last
            ks.chain_last_w = self.chains.last_w
        return ks

    def _weight_fn(self, prev, prev_off, cur, step, sel=None):
        def weight_fn(offs, lanes=None):
            p, po, c, s = prev, prev_off, cur, step
            if sel is not None:
                p, po, c = p[sel], po[sel], c[sel]
                s = s[sel] if isinstance(s, np.ndarray) else s
            if lanes is not None:
                p, po, c = p[lanes], po[lanes], c[lanes]
                s = s[lanes] if isinstance(s, np.ndarray) else s
            return self.model.batch_dynamic_weight(p, po, c, s, offs)

        return weight_fn

    def _rows(self, cur_l):
        lo = self.graph.offsets[cur_l]
        deg = self.graph.offsets[cur_l + 1] - lo
        return lo, deg

    # -- residency ------------------------------------------------------
    def load_wave(self, ids, cur_g):
        """Reset residency for a new wave (walkers at their start nodes)."""
        self.ids = np.asarray(ids, dtype=np.int64)
        self.cur_g = np.asarray(cur_g, dtype=np.int64)
        self.prev_g = np.full(self.ids.size, -1, dtype=np.int64)
        self.prev_off_g = np.full(self.ids.size, -1, dtype=np.int64)
        self._mh = None

    def absorb(self, ids, prev_g, prev_off_g, cur_g):
        """Merge an immigrant batch, restoring walker-id sort order."""
        self.ids = np.concatenate((self.ids, ids))
        self.prev_g = np.concatenate((self.prev_g, prev_g))
        self.prev_off_g = np.concatenate((self.prev_off_g, prev_off_g))
        self.cur_g = np.concatenate((self.cur_g, cur_g))
        order = np.argsort(self.ids, kind="stable")
        self.ids = self.ids[order]
        self.prev_g = self.prev_g[order]
        self.prev_off_g = self.prev_off_g[order]
        self.cur_g = self.cur_g[order]

    def advance(self, chosen_g):
        """Apply the step outcome; emigrate boundary-crossing walkers.

        ``chosen_g`` is this shard's lanes' chosen global edge offsets
        (``NO_EDGE`` = walk ended). Returns ``{dest_shard: (ids, prev_g,
        prev_off_g, cur_g)}`` — the typed migration batches; the driver
        relays each to its destination worker's :meth:`absorb`.
        """
        chosen_g = np.asarray(chosen_g, dtype=np.int64)
        alive = chosen_g != NO_EDGE
        ids = self.ids[alive]
        prev_g = self.cur_g[alive]
        prev_off_g = chosen_g[alive]
        chosen_l = self._edges_local(prev_off_g)
        cur_g = self.node_map[self.graph.targets[chosen_l]]
        dest = self.owner[cur_g]
        stay = dest == self.shard_id
        batches = {}
        for j in range(self.num_shards):
            if j == self.shard_id:
                continue
            mask = dest == j
            if mask.any():
                batches[j] = (ids[mask], prev_g[mask], prev_off_g[mask], cur_g[mask])
        self.ids = ids[stay]
        self.prev_g = prev_g[stay]
        self.prev_off_g = prev_off_g[stay]
        self.cur_g = cur_g[stay]
        self._mh = None
        return batches

    # -- step ops -------------------------------------------------------
    def step_first(self, u_flat):
        """Second-order step 0: exact draw from the start-state law."""
        __, ___, cur_l = self._lanes()
        lo, deg = self._rows(cur_l)
        flat_offs, seg = concat_ranges(lo, deg)
        if flat_offs.size == 0:
            return np.full(cur_l.size, NO_EDGE, dtype=np.int64)
        none = np.full(flat_offs.size, -1, dtype=np.int64)
        weights = self.model.batch_dynamic_weight(none, none, cur_l[seg], 0, flat_offs)
        pos = segment_race_argmin(race_keys(weights, u_flat), deg)
        return self._edges_global(np.where(pos >= 0, lo + pos, np.int64(NO_EDGE)))

    def step_direct(self, u_flat, step):
        """Exact O(deg) categorical draw over dynamic weights."""
        prev_l, prev_off_l, cur_l = self._lanes()
        lo, deg = self._rows(cur_l)
        flat_offs, seg = concat_ranges(lo, deg)
        if flat_offs.size == 0:
            return np.full(cur_l.size, NO_EDGE, dtype=np.int64)
        weights = self.model.batch_dynamic_weight(
            prev_l[seg], prev_off_l[seg], cur_l[seg], step, flat_offs
        )
        pos = segment_race_argmin(race_keys(weights, u_flat), deg)
        return self._edges_global(np.where(pos >= 0, lo + pos, np.int64(NO_EDGE)))

    def step_alias(self, u_slot, u_keep):
        """First-order alias gather (static models)."""
        __, ___, cur_l = self._lanes()
        out = self.kernels.alias_draw(self._kernel_state(), cur_l, u_slot, u_keep)
        return self._edges_global(out)

    def step_state_alias(self, u_slot, u_keep, step):
        """Per-state alias gather (dynamic models, owned states only)."""
        prev_l, prev_off_l, cur_l = self._lanes()
        idx = self.model.batch_state_index(prev_off_l, cur_l, step)
        out = self.kernels.state_alias_draw(
            self._kernel_state(), idx, cur_l, u_slot, u_keep
        )
        return self._edges_global(out)

    def reject_round(self, rel, u_prop, u_keep, u_acc, bound, clip, step):
        """One proposal/accept round for the driver's pending lanes.

        ``rel`` indexes into this shard's resident lanes. Returns
        ``(off_global, accept)``; the driver owns the pending-set loop
        (and, for KnightKing, the outlier-vs-bulk split).
        """
        prev_l, prev_off_l, cur_l = self._lanes()
        wf = self._weight_fn(prev_l, prev_off_l, cur_l, step, sel=rel)
        off, accept = self.kernels.rejection_round(
            self._kernel_state(),
            prev_l[rel],
            cur_l[rel],
            u_prop,
            u_keep,
            u_acc,
            bound,
            clip,
            wf,
        )
        return self._edges_global(off), accept

    # -- M-H ------------------------------------------------------------
    def mh_begin(self, step):
        """Start an M-H step: stash scratch, report uninitialised chains."""
        prev_l, prev_off_l, cur_l = self._lanes()
        __, deg = self._rows(cur_l)
        alive = deg > 0
        idx = self.model.batch_state_index(prev_off_l, cur_l, step)
        last = self.chains.last[idx].copy()
        last_w = self.chains.last_w[idx].copy()
        uninit = (last == NO_EDGE) & alive
        self._mh = {
            "step": step,
            "prev": prev_l,
            "prev_off": prev_off_l,
            "cur": cur_l,
            "alive": alive,
            "idx": idx,
            "last": last,
            "last_w": last_w,
            "uninit": uninit,
            "cand": None,
            "init": None,
        }
        return uninit

    def _mh_uninit_lanes(self):
        m = self._mh
        u = m["uninit"]
        return m["prev"][u], m["prev_off"][u], m["cur"][u], m["step"]

    def _batch_weights(self, prev0, prev_off0, cur0, step, offs):
        return self.kernels.dyn_weights(
            self._kernel_state(),
            prev0,
            offs,
            self._weight_fn(prev0, prev_off0, cur0, step),
        )

    def _exact_argmax(self, prev0, prev_off0, cur0, step):
        lo, deg = self._rows(cur0)
        flat_offs, seg = concat_ranges(lo, deg)
        weights = np.empty(0, dtype=np.float64)
        if flat_offs.size:
            weights = self.model.batch_dynamic_weight(
                prev0[seg], prev_off0[seg], cur0[seg], step, flat_offs
            )
        pos = segment_argmax(weights, deg)
        good = np.zeros(cur0.size, dtype=bool)
        nonempty = pos >= 0
        flat_best = (lo + np.maximum(pos, 0)).astype(np.int64)
        if weights.size:
            best_w = self.model.batch_dynamic_weight(
                prev0, prev_off0, cur0, step, np.maximum(flat_best, 0)
            )
            good = nonempty & (best_w > 0.0)
        return np.where(good, flat_best, np.int64(NO_EDGE))

    def mh_init_hw(self, u_block):
        """High-weight init: capped subsample argmax (exact when u is None)."""
        prev0, prev_off0, cur0, step = self._mh_uninit_lanes()
        if u_block is None:
            self._mh["init"] = self._exact_argmax(prev0, prev_off0, cur0, step)
            return None
        cap = u_block.shape[1]

        def flat_weight_fn(offs, lanes=None):
            wf = self._weight_fn(
                np.repeat(prev0, cap),
                np.repeat(prev_off0, cap),
                np.repeat(cur0, cap),
                step,
            )
            return wf(offs, lanes)

        result, w_best = self.kernels.mh_init_select(
            self._kernel_state(), prev0, cur0, u_block, flat_weight_fn
        )
        bad = w_best <= 0.0
        if bad.any():
            result[bad] = self._exact_argmax(
                prev0[bad], prev_off0[bad], cur0[bad], step
            )
        self._mh["init"] = result
        return None

    def mh_init_rand(self, u1):
        """Random init: uniform slot; report lanes that landed on zero weight."""
        prev0, prev_off0, cur0, step = self._mh_uninit_lanes()
        lo, deg = self._rows(cur0)
        cand = lo + (u1 * np.maximum(deg, 1)).astype(np.int64)
        w = self._batch_weights(prev0, prev_off0, cur0, step, cand)
        bad = w <= 0.0
        self._mh["cand"] = cand
        self._mh["bad"] = bad
        self._mh["init"] = cand
        return bad

    def mh_init_support(self, u_flat):
        """Repair zero-weight random inits: uniform over the row's support."""
        prev0, prev_off0, cur0, step = self._mh_uninit_lanes()
        bad = self._mh["bad"]
        prev_b, prev_off_b, cur_b = prev0[bad], prev_off0[bad], cur0[bad]
        lo, deg = self._rows(cur_b)
        flat_offs, seg = concat_ranges(lo, deg)
        weights = np.empty(0, dtype=np.float64)
        if flat_offs.size:
            weights = self.model.batch_dynamic_weight(
                prev_b[seg], prev_off_b[seg], cur_b[seg], step, flat_offs
            )
        support = (weights > 0.0).astype(np.float64)
        pos = segment_race_argmin(race_keys(support, u_flat), deg)
        cand = self._mh["cand"]
        cand[bad] = np.where(pos >= 0, lo + pos, np.int64(NO_EDGE))
        self._mh["init"] = cand
        return None

    def mh_init_burn(self, u_sched):
        """Burn-in init: driver-scheduled uniforms, local M-H iterations.

        ``u_sched`` has shape ``(iterations, 2, lanes)`` — per iteration
        one candidate draw and one acceptance draw, in the monolithic
        engine's exact consumption order.
        """
        prev0, prev_off0, cur0, step = self._mh_uninit_lanes()
        lo, deg = self._rows(cur0)
        last = self._mh["init"]
        w_last = self._batch_weights(prev0, prev_off0, cur0, step, np.maximum(last, 0))
        for it in range(self.burn_in_iterations):
            cand = lo + (u_sched[it, 0] * np.maximum(deg, 1)).astype(np.int64)
            w_cand = self._batch_weights(prev0, prev_off0, cur0, step, cand)
            accept = (w_cand > 0.0) & ((w_last <= 0.0) | (u_sched[it, 1] * w_last < w_cand))
            last = np.where(accept & (last != NO_EDGE), cand, last)
            w_last = np.where(accept, w_cand, w_last)
        self._mh["init"] = last
        return None

    def mh_exec(self, u_cand, u_acc):
        """Finish an M-H step: propose/accept kernel + chain scatter."""
        m = self._mh
        last, last_w, uninit = m["last"], m["last_w"], m["uninit"]
        if uninit.any():
            last[uninit] = m["init"]
            last_w[uninit] = np.nan
        dead = ~m["alive"] | (last == NO_EDGE)
        nxt, n_ok, n_acc = self.kernels.mh_step(
            self._kernel_state(),
            m["idx"],
            m["prev"],
            m["cur"],
            last,
            last_w,
            dead,
            u_cand,
            u_acc,
            self._weight_fn(m["prev"], m["prev_off"], m["cur"], m["step"]),
        )
        return self._edges_global(nxt), n_ok, n_acc

    # -- bookkeeping ----------------------------------------------------
    def tables_built(self) -> int:
        """Materialised per-state alias tables (setup-cost counter)."""
        return self.tables.num_tables if self.tables is not None else 0

    def memory_bytes(self) -> int:
        """Resident bytes of this shard's sampler structures."""
        total = 0
        if self.proposal is not None:
            total += self.proposal.memory_bytes()
        if self.tables is not None:
            total += self.tables.memory_bytes()
        if self.chains is not None:
            total += self.chains.memory_bytes()
        return total

    def debug_exit(self, code: int = 17):
        """Kill this worker's process immediately (fault-injection hook).

        Only meaningful behind an out-of-process transport: the process
        dies without replying, so the driver observes a closed pipe or
        socket mid-round — exactly the failure the transports' broken-
        state discipline exists for. ``os._exit`` skips all cleanup, as
        a real crash would.
        """
        import os

        os._exit(int(code))

    def close(self):
        """Release references (transport shutdown hook)."""
        self._mh = None
        return None
