"""On-disk, memory-mapped embedding store — the servable artifact.

Training produces a :class:`~repro.embedding.keyed_vectors.KeyedVectors`
blob that must be fully decompressed and copied into memory before the
first query. For serving, that is the wrong trade: a worker process wants
an O(1) open, demand-paged reads, and a file that many workers can share
through the page cache. :class:`EmbeddingStore` is that artifact — a
single flat file laid out for ``np.memmap``:

====================  =======================================
offset 0              8-byte magic ``UNINETES`` + version/dim/count header
64                    ``keys``     int64  ``(count,)``
64-aligned            ``vectors``  float32 ``(count, dim)``
64-aligned            ``norms``    float32 ``(count,)`` (precomputed L2)
====================  =======================================

Vectors are stored as float32 — half the bytes of the trainer's float64
with no measurable retrieval-quality loss — and the row norms are
precomputed at export time so cosine scoring never rescans the matrix.
Sections start on 64-byte boundaries (cache-line/SIMD friendly).

A store opened with :meth:`EmbeddingStore.open` touches only the 64-byte
header eagerly; keys, vectors and norms are memory-mapped and paged in on
first access, so opening a multi-gigabyte store is O(1) and concurrent
workers share one physical copy. The same class also wraps plain in-memory
arrays (:meth:`from_keyed_vectors`), so every index and service works
identically on both.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import ServingError

_MAGIC = b"UNINETES"
_VERSION = 1
_HEADER_BYTES = 64
_ALIGN = 64
# magic, version (u32), dim (u32), count (u64); rest of the header is
# reserved padding
_HEADER_STRUCT = struct.Struct("<8sIIQ")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _is_typed_mmap(arr, dtype) -> bool:
    return isinstance(arr, np.memmap) and arr.dtype == dtype


def _layout(count: int, dim: int) -> tuple[int, int, int, int]:
    """Section offsets ``(keys, vectors, norms, file_end)`` in bytes."""
    keys_off = _HEADER_BYTES
    vec_off = _aligned(keys_off + 8 * count)
    norm_off = _aligned(vec_off + 4 * count * dim)
    return keys_off, vec_off, norm_off, norm_off + 4 * count


class EmbeddingStore:
    """Embedding matrix + keys + precomputed norms, servable as one unit.

    Parameters
    ----------
    keys:
        int64 node ids aligned with ``vectors`` rows (plain array or
        memmap).
    vectors:
        float32 matrix ``(len(keys), dim)``.
    norms:
        float32 per-row L2 norms; computed when omitted.
    path:
        the backing file when the store is memory-mapped (``None`` for
        in-memory stores).
    """

    def __init__(self, keys, vectors, norms=None, *, path=None):
        # np.asarray would strip the np.memmap subclass; keep it so the
        # backing of an opened store stays observable
        self.keys = keys if _is_typed_mmap(keys, np.int64) else np.asarray(keys, dtype=np.int64)
        self.vectors = (
            vectors
            if _is_typed_mmap(vectors, np.float32)
            else np.asarray(vectors, dtype=np.float32)
        )
        if self.vectors.ndim != 2 or self.vectors.shape[0] != self.keys.size:
            raise ServingError("vectors must be a matrix aligned with keys")
        if norms is None:
            norms = np.linalg.norm(self.vectors, axis=1)
        self.norms = norms if _is_typed_mmap(norms, np.float32) else np.asarray(norms, dtype=np.float32)
        if self.norms.shape != (self.keys.size,):
            raise ServingError("norms must have one entry per key")
        self.path = None if path is None else Path(path)
        self._row_of: np.ndarray | None = None
        self._unit: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Embedding dimensionality."""
        return self.vectors.shape[1]

    def __len__(self) -> int:
        return self.keys.size

    def __contains__(self, key: int) -> bool:
        table = self._lookup()
        return 0 <= key < table.size and table[key] >= 0

    @property
    def nbytes(self) -> int:
        """Bytes of the three data sections (excluding the header)."""
        return self.keys.nbytes + self.vectors.nbytes + self.norms.nbytes

    # ------------------------------------------------------------------
    def _lookup(self) -> np.ndarray:
        # built lazily so open() stays O(1); the table is the only part of
        # the store that is not a view of the file
        if self._row_of is None:
            table = np.full(int(self.keys.max(initial=-1)) + 1, -1, dtype=np.int64)
            table[self.keys] = np.arange(self.keys.size)
            self._row_of = table
        return self._row_of

    def rows_for(self, keys) -> np.ndarray:
        """Store rows of ``keys`` (vectorized); unknown ids raise."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        table = self._lookup()
        if table.size == 0:
            rows = np.full(keys.shape, -1, dtype=np.int64)
        else:
            safe = np.clip(keys, 0, table.size - 1)
            rows = np.where(keys == safe, table[safe], -1)
        if np.any(rows < 0):
            bad = int(keys[np.flatnonzero(rows < 0)[0]])
            raise ServingError(f"key {bad} is not in the store")
        return rows

    def vector(self, key: int) -> np.ndarray:
        """Embedding of one node id."""
        return self.vectors[int(self.rows_for(key)[0])]

    def unit_vectors(self) -> np.ndarray:
        """L2-normalised copy of the matrix (float32), cached.

        This materialises ``count x dim`` floats in memory — the working
        set an exact index needs anyway. Indexes that must stay
        out-of-core (IVF) score against :attr:`vectors` / :attr:`norms`
        directly instead.
        """
        if self._unit is None:
            norms = np.maximum(self.norms, np.float32(1e-12))
            self._unit = np.ascontiguousarray(self.vectors / norms[:, None])
        return self._unit

    # ------------------------------------------------------------------
    # mutation (the dynamic-graph write path)
    # ------------------------------------------------------------------
    def upsert(self, keys, vectors) -> dict:
        """Write/replace embeddings in place; append rows for new keys.

        The read path of a live graph: after an incremental re-embedding
        the refreshed vectors land here without rewriting the whole
        store. Known keys have their rows (and norms) overwritten; new
        keys append. Memory-mapped *read-only* stores refuse — reopen
        with ``EmbeddingStore.open(path, mmap=False)``, upsert, then
        :meth:`save` (appending cannot grow a fixed-size mapping).

        Returns ``{"updated": ..., "inserted": ...}``. Indexes built
        over this store are stale afterwards — refresh the owning
        :class:`~repro.serving.service.QueryService`.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.shape != (keys.size, self.dimensions):
            raise ServingError(
                f"upsert vectors must be ({keys.size}, {self.dimensions}), "
                f"got {vectors.shape}"
            )
        if keys.size != np.unique(keys).size:
            raise ServingError("upsert keys must be unique")
        if isinstance(self.vectors, np.memmap) and not self.vectors.flags.writeable:
            raise ServingError(
                "cannot upsert into a read-only memory-mapped store; reopen "
                "with EmbeddingStore.open(path, mmap=False), upsert, then save()"
            )
        table = self._lookup()
        safe = np.clip(keys, 0, max(table.size - 1, 0))
        rows = np.where((keys < table.size) & (keys >= 0), table[safe] if table.size else -1, -1)
        known = rows >= 0
        norms = np.linalg.norm(vectors, axis=1).astype(np.float32)
        if known.any():
            self.vectors[rows[known]] = vectors[known]
            self.norms[rows[known]] = norms[known]
        inserted = int((~known).sum())
        if inserted:
            self.keys = np.concatenate([np.asarray(self.keys), keys[~known]])
            self.vectors = np.concatenate([np.asarray(self.vectors), vectors[~known]])
            self.norms = np.concatenate([np.asarray(self.norms), norms[~known]])
        # lookup table and unit-matrix cache are now stale
        self._row_of = None
        self._unit = None
        return {"updated": int(known.sum()), "inserted": inserted}

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_keyed_vectors(cls, kv) -> "EmbeddingStore":
        """In-memory store from a trained :class:`KeyedVectors`."""
        return cls(kv.keys, np.asarray(kv.vectors, dtype=np.float32))

    def to_keyed_vectors(self):
        """Materialise back into an in-memory :class:`KeyedVectors`."""
        from repro.embedding.keyed_vectors import KeyedVectors

        return KeyedVectors(np.asarray(self.keys).copy(), np.asarray(self.vectors, dtype=np.float64))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the store file; returns the path written."""
        path = Path(path)
        count, dim = self.vectors.shape
        keys_off, vec_off, norm_off, end = _layout(count, dim)
        header = _HEADER_STRUCT.pack(_MAGIC, _VERSION, dim, count)
        with open(path, "wb") as fh:
            fh.write(header.ljust(_HEADER_BYTES, b"\0"))
            fh.seek(keys_off)
            np.ascontiguousarray(self.keys).tofile(fh)
            fh.seek(vec_off)
            np.ascontiguousarray(self.vectors).tofile(fh)
            fh.seek(norm_off)
            np.ascontiguousarray(self.norms).tofile(fh)
            fh.truncate(end)
        return path

    @classmethod
    def open(cls, path, *, mmap: bool = True) -> "EmbeddingStore":
        """Open a store file in O(1); data pages load on demand.

        ``mmap=False`` reads the sections into plain arrays instead
        (useful when the file is about to be deleted).
        """
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header = fh.read(_HEADER_BYTES)
        except OSError as err:
            raise ServingError(f"cannot open embedding store: {err}") from None
        if len(header) < _HEADER_STRUCT.size:
            raise ServingError(f"{path} is too short to be an embedding store")
        magic, version, dim, count = _HEADER_STRUCT.unpack_from(header)
        if magic != _MAGIC:
            raise ServingError(
                f"{path} is not an embedding store (bad magic {magic!r}); "
                f"export one with 'python -m repro export-store'"
            )
        if version != _VERSION:
            raise ServingError(f"unsupported store version {version} (expected {_VERSION})")
        keys_off, vec_off, norm_off, end = _layout(count, dim)
        if path.stat().st_size < end:
            raise ServingError(f"{path} is truncated ({path.stat().st_size} < {end} bytes)")
        if mmap:
            keys = np.memmap(path, dtype=np.int64, mode="r", offset=keys_off, shape=(count,))
            vectors = np.memmap(path, dtype=np.float32, mode="r", offset=vec_off, shape=(count, dim))
            norms = np.memmap(path, dtype=np.float32, mode="r", offset=norm_off, shape=(count,))
        else:
            with open(path, "rb") as fh:
                fh.seek(keys_off)
                keys = np.fromfile(fh, dtype=np.int64, count=count)
                fh.seek(vec_off)
                vectors = np.fromfile(fh, dtype=np.float32, count=count * dim).reshape(count, dim)
                fh.seek(norm_off)
                norms = np.fromfile(fh, dtype=np.float32, count=count)
        return cls(keys, vectors, norms, path=path)

    def __repr__(self) -> str:
        backing = "mmap" if isinstance(self.vectors, np.memmap) else "memory"
        return (
            f"EmbeddingStore(count={len(self)}, dimensions={self.dimensions}, "
            f"{backing}{'' if self.path is None else f', path={str(self.path)!r}'})"
        )
